#include "src/telemetry/busstat.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "src/subject/subject.h"
#include "src/wire/wire.h"

namespace ibus::telemetry {

namespace {

constexpr uint8_t kTagCounter = 0;
constexpr uint8_t kTagGauge = 1;

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

// Zigzag so small negative gauge deltas stay one varint byte.
uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutZigZag(WireWriter* w, int64_t v) { w->PutVarint(ZigZag(v)); }

// Current (tag, name, value) view of a registry: counters then gauges, each in the
// registry's deterministic name order. Histograms travel separately.
struct ScalarEntry {
  uint8_t tag;
  const std::string* name;
  int64_t value;
};
std::vector<ScalarEntry> ScalarsOf(const MetricsRegistry& registry) {
  std::vector<ScalarEntry> out;
  out.reserve(registry.counters().size() + registry.gauges().size());
  for (const auto& [name, c] : registry.counters()) {
    out.push_back({kTagCounter, &name, static_cast<int64_t>(c->value())});
  }
  for (const auto& [name, g] : registry.gauges()) {
    out.push_back({kTagGauge, &name, g->value()});
  }
  return out;
}

void EncodeHistogramAbsolute(WireWriter* w, const std::string& name,
                             const LatencyHistogram& h) {
  w->PutString(name);
  w->PutI64(h.sum());
  w->PutI64(h.min());
  w->PutI64(h.max());
  size_t nonzero = 0;
  for (size_t b = 0; b < LatencyHistogram::kBuckets; b++) {
    if (h.bucket_count(b) != 0) {
      nonzero++;
    }
  }
  w->PutVarint(nonzero);
  for (size_t b = 0; b < LatencyHistogram::kBuckets; b++) {
    if (h.bucket_count(b) != 0) {
      w->PutVarint(b);
      w->PutVarint(h.bucket_count(b));
    }
  }
}

uint64_t FnvOf(const std::string& s) {
  uint64_t h = kFnvOffset;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

// Deterministic JSON escaping for metric/subject names (conservative: names are
// ASCII identifiers, but a hostile subject could carry anything).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<uint8_t>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendSketchJson(std::string* out, const char* key, const TopKSketch& sk) {
  out->append("\"");
  out->append(key);
  out->append("\": [");
  bool first = true;
  for (const TopKSketch::Entry& e : sk.Entries()) {
    if (!first) {
      out->append(", ");
    }
    first = false;
    out->append("{\"key\": ");
    AppendJsonString(out, e.key);
    out->append(", \"count\": " + std::to_string(e.count));
    out->append(", \"error\": " + std::to_string(e.error) + "}");
  }
  out->append("]");
}

}  // namespace

// ---------------------------------------------------------------------------
// Encoder

// wirecheck: codec(stat_series, version=181)
Bytes StatSeriesEncoder::EncodeSample(const MetricsRegistry& registry,
                                      const TopKSketch* subject_sketch,
                                      const TopKSketch* peer_sketch, int64_t at_us,
                                      uint32_t sample_period) {
  const bool keyframe = seq_ % keyframe_every_ == 0;
  WireWriter w;
  w.PutU8(kTsWireVersion);
  w.PutU8(keyframe ? kTsKindKeyframe : kTsKindDelta);
  w.PutString(node_);
  w.PutVarint(seq_);
  w.PutI64(at_us);
  w.PutVarint(sample_period);

  // Scalar section. The dictionary is append-only: registries never drop metrics,
  // so an index, once assigned, stays valid for the stream's lifetime.
  std::vector<ScalarEntry> scalars = ScalarsOf(registry);
  auto dict_index = [this](uint8_t tag, const std::string& name) -> ptrdiff_t {
    for (size_t i = 0; i < dict_.size(); i++) {
      if (dict_[i].first == tag && dict_[i].second == name) {
        return static_cast<ptrdiff_t>(i);
      }
    }
    return -1;
  };
  if (keyframe) {
    // Fold any new names in first, then emit the whole dictionary with absolutes.
    for (const ScalarEntry& e : scalars) {
      ptrdiff_t i = dict_index(e.tag, *e.name);
      if (i < 0) {
        dict_.emplace_back(e.tag, *e.name);
        last_.push_back(e.value);
      } else {
        last_[static_cast<size_t>(i)] = e.value;
      }
    }
    w.PutVarint(dict_.size());
    for (size_t i = 0; i < dict_.size(); i++) {
      w.PutU8(dict_[i].first);
      w.PutString(dict_[i].second);
      PutZigZag(&w, last_[i]);
    }
  } else {
    std::vector<ScalarEntry> fresh;
    std::vector<std::pair<uint64_t, int64_t>> changed;  // (index, delta)
    for (const ScalarEntry& e : scalars) {
      ptrdiff_t i = dict_index(e.tag, *e.name);
      if (i < 0) {
        fresh.push_back(e);
      } else if (e.value != last_[static_cast<size_t>(i)]) {
        changed.emplace_back(static_cast<uint64_t>(i),
                             e.value - last_[static_cast<size_t>(i)]);
        last_[static_cast<size_t>(i)] = e.value;
      }
    }
    w.PutVarint(fresh.size());
    for (const ScalarEntry& e : fresh) {
      w.PutU8(e.tag);
      w.PutString(*e.name);
      PutZigZag(&w, e.value);
      dict_.emplace_back(e.tag, *e.name);
      last_.push_back(e.value);
    }
    w.PutVarint(changed.size());
    for (const auto& [i, delta] : changed) {
      w.PutVarint(i);
      PutZigZag(&w, delta);
    }
  }

  // Histogram section (same dictionary discipline; bucket counts are monotone so
  // deltas are plain varints).
  const auto& hists = registry.histograms();
  auto hist_index = [this](const std::string& name) -> ptrdiff_t {
    for (size_t i = 0; i < hist_dict_.size(); i++) {
      if (hist_dict_[i] == name) {
        return static_cast<ptrdiff_t>(i);
      }
    }
    return -1;
  };
  auto buckets_of = [](const LatencyHistogram& h) {
    std::vector<uint64_t> counts(LatencyHistogram::kBuckets, 0);
    for (size_t b = 0; b < LatencyHistogram::kBuckets; b++) {
      counts[b] = h.bucket_count(b);
    }
    return counts;
  };
  if (keyframe) {
    for (const auto& [name, h] : hists) {
      ptrdiff_t i = hist_index(name);
      if (i < 0) {
        hist_dict_.push_back(name);
        hist_last_.push_back(buckets_of(*h));
      } else {
        hist_last_[static_cast<size_t>(i)] = buckets_of(*h);
      }
    }
    // Emit in dictionary order (not registry map order): decoders rebuild their
    // dictionary from record order, and later delta indices must line up.
    w.PutVarint(hist_dict_.size());
    for (const std::string& name : hist_dict_) {
      EncodeHistogramAbsolute(&w, name, *hists.at(name));
    }
  } else {
    std::vector<const std::string*> fresh;
    // (hist index, changed (bucket, dcount) pairs) for pre-existing histograms.
    struct ChangedHist {
      uint64_t index;
      const LatencyHistogram* h;
      std::vector<std::pair<uint64_t, uint64_t>> dbuckets;
    };
    std::vector<ChangedHist> changed;
    for (const auto& [name, h] : hists) {
      ptrdiff_t i = hist_index(name);
      if (i < 0) {
        fresh.push_back(&name);
        continue;
      }
      std::vector<uint64_t>& prev = hist_last_[static_cast<size_t>(i)];
      ChangedHist ch{static_cast<uint64_t>(i), h.get(), {}};
      for (size_t b = 0; b < LatencyHistogram::kBuckets; b++) {
        uint64_t now = h->bucket_count(b);
        if (now != prev[b]) {
          ch.dbuckets.emplace_back(b, now - prev[b]);
          prev[b] = now;
        }
      }
      if (!ch.dbuckets.empty()) {
        changed.push_back(std::move(ch));
      }
    }
    w.PutVarint(fresh.size());
    for (const std::string* name : fresh) {
      const LatencyHistogram& h = *hists.at(*name);
      EncodeHistogramAbsolute(&w, *name, h);
      hist_dict_.push_back(*name);
      hist_last_.push_back(buckets_of(h));
    }
    w.PutVarint(changed.size());
    for (const ChangedHist& ch : changed) {
      w.PutVarint(ch.index);
      w.PutI64(ch.h->sum());
      w.PutI64(ch.h->min());
      w.PutI64(ch.h->max());
      w.PutVarint(ch.dbuckets.size());
      for (const auto& [b, d] : ch.dbuckets) {
        w.PutVarint(b);
        w.PutVarint(d);
      }
    }
  }

  // Sketches ride whole every sample: they are O(capacity), and deltas of a
  // structure that evicts keys would be larger than the structure itself.
  w.PutBool(subject_sketch != nullptr);
  if (subject_sketch != nullptr) {
    subject_sketch->Encode(&w);
  }
  w.PutBool(peer_sketch != nullptr);
  if (peer_sketch != nullptr) {
    peer_sketch->Encode(&w);
  }

  seq_++;
  return w.Take();
}

// ---------------------------------------------------------------------------
// Decoder

// wirecheck: codec(stat_series, version=181)
Status StatSeriesDecoder::DecodeSample(const Bytes& record) {
  WireReader r(record);
  auto version = r.ReadU8();
  if (!version.ok()) {
    return DataLoss("busstat: empty record");
  }
  if (*version != kTsWireVersion) {
    return Unimplemented("busstat: foreign record version " + std::to_string(*version));
  }
  auto kind = r.ReadU8();
  auto node = r.ReadString();
  auto seq = r.ReadVarint();
  auto at_us = r.ReadI64();
  auto sample_period = r.ReadVarint();
  if (!kind.ok() || !node.ok() || !seq.ok() || !at_us.ok() || !sample_period.ok()) {
    return DataLoss("busstat: truncated header");
  }
  const bool keyframe = *kind == kTsKindKeyframe;
  if (!keyframe && *kind != kTsKindDelta) {
    return DataLoss("busstat: unknown record kind");
  }
  if (!keyframe && (!synced_ || *seq != latest_.seq + 1)) {
    // A delta we cannot anchor: drop it and wait for the next keyframe rather
    // than corrupting absolute state.
    desyncs_++;
    synced_ = false;
    return FailedPrecondition("busstat: delta without anchored keyframe");
  }

  if (keyframe) {
    // Keyframes carry everything: rebuild from scratch.
    dict_.clear();
    hist_dict_.clear();
    latest_.values.clear();
    latest_.histograms.clear();
    auto n = r.ReadVarint();
    if (!n.ok()) {
      return DataLoss("busstat: truncated scalar dict");
    }
    // Each dictionary entry costs at least three bytes; a count beyond the
    // remaining buffer is garbage, not a big dictionary.
    if (*n > r.remaining()) {
      return DataLoss("busstat: implausible scalar dict size");
    }
    for (uint64_t i = 0; i < *n; i++) {
      auto tag = r.ReadU8();
      auto name = r.ReadString();
      auto value = r.ReadVarint();
      if (!tag.ok() || !name.ok() || !value.ok()) {
        return DataLoss("busstat: truncated scalar entry");
      }
      dict_.emplace_back(*tag, *name);
      latest_.values[name.take()] = UnZigZag(*value);
    }
  } else {
    auto fresh = r.ReadVarint();
    if (!fresh.ok()) {
      return DataLoss("busstat: truncated scalar appends");
    }
    if (*fresh > r.remaining()) {
      return DataLoss("busstat: implausible scalar append count");
    }
    for (uint64_t i = 0; i < *fresh; i++) {
      auto tag = r.ReadU8();
      auto name = r.ReadString();
      auto value = r.ReadVarint();
      if (!tag.ok() || !name.ok() || !value.ok()) {
        return DataLoss("busstat: truncated scalar append");
      }
      dict_.emplace_back(*tag, *name);
      latest_.values[name.take()] = UnZigZag(*value);
    }
    auto changed = r.ReadVarint();
    if (!changed.ok()) {
      return DataLoss("busstat: truncated scalar deltas");
    }
    if (*changed > r.remaining()) {
      return DataLoss("busstat: implausible scalar delta count");
    }
    for (uint64_t i = 0; i < *changed; i++) {
      auto index = r.ReadVarint();
      auto delta = r.ReadVarint();
      if (!index.ok() || !delta.ok()) {
        return DataLoss("busstat: truncated scalar delta");
      }
      if (*index >= dict_.size()) {
        desyncs_++;
        synced_ = false;
        return FailedPrecondition("busstat: scalar index out of dictionary");
      }
      latest_.values[dict_[*index].second] += UnZigZag(*delta);
    }
  }

  // Histogram section.
  auto decode_absolute_hist = [this, &r]() -> Status {
    auto name = r.ReadString();
    auto sum = r.ReadI64();
    auto min = r.ReadI64();
    auto max = r.ReadI64();
    auto nonzero = r.ReadVarint();
    if (!name.ok() || !sum.ok() || !min.ok() || !max.ok() || !nonzero.ok()) {
      return DataLoss("busstat: truncated histogram");
    }
    if (*nonzero > r.remaining()) {
      return DataLoss("busstat: implausible histogram bucket count");
    }
    LatencyHistogram h;
    for (uint64_t b = 0; b < *nonzero; b++) {
      auto idx = r.ReadVarint();
      auto count = r.ReadVarint();
      if (!idx.ok() || !count.ok()) {
        return DataLoss("busstat: truncated histogram bucket");
      }
      h.RestoreBucket(static_cast<size_t>(*idx), *count);
    }
    h.RestoreStats(*sum, *min, *max);
    hist_dict_.push_back(*name);
    latest_.histograms[name.take()] = h;
    return OkStatus();
  };
  if (keyframe) {
    auto n = r.ReadVarint();
    if (!n.ok()) {
      return DataLoss("busstat: truncated histogram dict");
    }
    if (*n > r.remaining()) {
      return DataLoss("busstat: implausible histogram dict size");
    }
    for (uint64_t i = 0; i < *n; i++) {
      IBUS_RETURN_IF_ERROR(decode_absolute_hist());
    }
  } else {
    auto fresh = r.ReadVarint();
    if (!fresh.ok()) {
      return DataLoss("busstat: truncated histogram appends");
    }
    if (*fresh > r.remaining()) {
      return DataLoss("busstat: implausible histogram append count");
    }
    for (uint64_t i = 0; i < *fresh; i++) {
      IBUS_RETURN_IF_ERROR(decode_absolute_hist());
    }
    auto changed = r.ReadVarint();
    if (!changed.ok()) {
      return DataLoss("busstat: truncated histogram deltas");
    }
    if (*changed > r.remaining()) {
      return DataLoss("busstat: implausible histogram delta count");
    }
    for (uint64_t i = 0; i < *changed; i++) {
      auto index = r.ReadVarint();
      auto sum = r.ReadI64();
      auto min = r.ReadI64();
      auto max = r.ReadI64();
      auto nbuckets = r.ReadVarint();
      if (!index.ok() || !sum.ok() || !min.ok() || !max.ok() || !nbuckets.ok()) {
        return DataLoss("busstat: truncated histogram delta");
      }
      if (*nbuckets > r.remaining()) {
        return DataLoss("busstat: implausible delta bucket count");
      }
      if (*index >= hist_dict_.size()) {
        desyncs_++;
        synced_ = false;
        return FailedPrecondition("busstat: histogram index out of dictionary");
      }
      LatencyHistogram& h = latest_.histograms[hist_dict_[*index]];
      for (uint64_t b = 0; b < *nbuckets; b++) {
        auto idx = r.ReadVarint();
        auto dcount = r.ReadVarint();
        if (!idx.ok() || !dcount.ok()) {
          return DataLoss("busstat: truncated histogram delta bucket");
        }
        h.RestoreBucket(static_cast<size_t>(*idx), *dcount);
      }
      h.RestoreStats(*sum, *min, *max);
    }
  }

  // Sketch section.
  auto has_subject = r.ReadBool();
  if (!has_subject.ok()) {
    return DataLoss("busstat: truncated sketch flags");
  }
  if (*has_subject) {
    auto sk = TopKSketch::Decode(&r);
    if (!sk.ok()) {
      return sk.status();
    }
    latest_.subject_sketch = sk.take();
  }
  auto has_peer = r.ReadBool();
  if (!has_peer.ok()) {
    return DataLoss("busstat: truncated sketch flags");
  }
  if (*has_peer) {
    auto sk = TopKSketch::Decode(&r);
    if (!sk.ok()) {
      return sk.status();
    }
    latest_.peer_sketch = sk.take();
  }

  if (!r.AtEnd()) {
    return DataLoss("busstat: trailing bytes after sample");
  }
  latest_.node = node.take();
  latest_.seq = *seq;
  latest_.at_us = *at_us;
  latest_.sample_period = static_cast<uint32_t>(*sample_period);
  synced_ = true;
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Reporter

BusStatReporter::BusStatReporter(BusClient* bus, const std::string& node,
                                 const MetricsRegistry* registry,
                                 const TopKSketch* subject_sketch,
                                 const TopKSketch* peer_sketch,
                                 const BusStatReporterOptions& options)
    : bus_(bus),
      node_(node),
      registry_(registry),
      subject_sketch_(subject_sketch),
      peer_sketch_(peer_sketch),
      options_(options),
      encoder_(node, options.keyframe_every),
      alive_(std::make_shared<bool>(true)) {}

Result<std::unique_ptr<BusStatReporter>> BusStatReporter::Create(
    BusClient* bus, const std::string& node, const MetricsRegistry* registry,
    const TopKSketch* subject_sketch, const TopKSketch* peer_sketch,
    const BusStatReporterOptions& options) {
  if (options.interval_us <= 0) {
    return InvalidArgument("busstat reporter: interval must be positive");
  }
  if (node.empty()) {
    return InvalidArgument("busstat reporter: node name must be non-empty");
  }
  auto reporter = std::unique_ptr<BusStatReporter>(
      new BusStatReporter(bus, node, registry, subject_sketch, peer_sketch, options));
  reporter->PublishSample();
  return reporter;
}

BusStatReporter::~BusStatReporter() { *alive_ = false; }

void BusStatReporter::PublishSample() {
  Message m;
  m.subject = std::string(kReservedStatsTsPrefix) + node_;
  m.type_name = "_ibus.stats.ts";  // buslint: allow(reserved-subject)
  m.payload = encoder_.EncodeSample(*registry_, subject_sketch_, peer_sketch_,
                                    bus_->sim()->Now(), options_.sample_period);
  if (bus_->PublishInternal(std::move(m)).ok()) {
    samples_++;
  }
  bus_->sim()->ScheduleAfter(
      options_.interval_us,
      [this, alive = alive_]() {
        if (*alive) {
          PublishSample();
        }
      },
      "busstat.report");
}

// ---------------------------------------------------------------------------
// Aggregator

Result<std::unique_ptr<StatsAggregator>> StatsAggregator::Create(BusClient* bus) {
  auto agg = std::unique_ptr<StatsAggregator>(new StatsAggregator());
  agg->bus_ = bus;
  auto sub = bus->Subscribe(std::string(kReservedStatsTsPrefix) + ">",
                            [a = agg.get()](const Message& m) { a->Consume(m.payload); });
  if (!sub.ok()) {
    return sub.status();
  }
  agg->sub_ = *sub;
  return agg;
}

StatsAggregator::~StatsAggregator() {
  if (bus_ != nullptr && sub_ != 0) {
    bus_->Unsubscribe(sub_);
  }
}

void StatsAggregator::Consume(const Bytes& record) {
  // Peek the node name so each stream gets its own decoder: version, kind, node.
  WireReader r(record);
  auto version = r.ReadU8();
  if (!version.ok() || *version != kTsWireVersion) {
    return;  // foreign record (e.g. a legacy snapshot); not ours to count
  }
  auto kind = r.ReadU8();
  auto node = r.ReadString();
  if (!kind.ok() || !node.ok() || node->empty()) {
    decode_errors_++;
    return;
  }
  NodeState& state = nodes_[*node];
  Status s = state.decoder.DecodeSample(record);
  if (!s.ok()) {
    if (s.code() != StatusCode::kFailedPrecondition) {
      decode_errors_++;
    }
    return;
  }
  samples_++;
  RingEntry entry;
  entry.seq = state.decoder.latest().seq;
  entry.at_us = state.decoder.latest().at_us;
  entry.values = state.decoder.latest().values;
  if (state.ring.size() < kStatsRingDepth) {
    state.ring.push_back(std::move(entry));
  } else {
    state.ring[state.ring_next] = std::move(entry);
  }
  state.ring_next = (state.ring_next + 1) % kStatsRingDepth;
  state.ring_seen++;
}

std::vector<std::string> StatsAggregator::Nodes() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, state] : nodes_) {
    out.push_back(name);
  }
  return out;
}

const DecodedSample* StatsAggregator::Latest(const std::string& node) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.ring_seen == 0) {
    return nullptr;
  }
  return &it->second.decoder.latest();
}

std::vector<StatsAggregator::RingEntry> StatsAggregator::History(
    const std::string& node) const {
  std::vector<RingEntry> out;
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return out;
  }
  const NodeState& state = it->second;
  out.reserve(state.ring.size());
  // Oldest first: the ring wraps at ring_next once full.
  size_t start = state.ring.size() < kStatsRingDepth ? 0 : state.ring_next;
  for (size_t i = 0; i < state.ring.size(); i++) {
    out.push_back(state.ring[(start + i) % state.ring.size()]);
  }
  return out;
}

int64_t StatsAggregator::FleetValue(const std::string& metric) const {
  int64_t total = 0;
  for (const auto& [name, state] : nodes_) {
    const auto& values = state.decoder.latest().values;
    auto it = values.find(metric);
    if (it != values.end()) {
      total += it->second;
    }
  }
  return total;
}

LatencyHistogram StatsAggregator::MergedHistogram(const std::string& hist) const {
  LatencyHistogram merged;
  for (const auto& [name, state] : nodes_) {
    const auto& hists = state.decoder.latest().histograms;
    auto it = hists.find(hist);
    if (it != hists.end()) {
      merged.Merge(it->second);
    }
  }
  return merged;
}

TopKSketch StatsAggregator::MergedSubjectSketch() const {
  TopKSketch merged(TopKSketch::kDefaultCapacity);
  for (const auto& [name, state] : nodes_) {
    merged.Merge(state.decoder.latest().subject_sketch);
  }
  return merged;
}

TopKSketch StatsAggregator::MergedPeerSketch() const {
  TopKSketch merged(TopKSketch::kDefaultCapacity);
  for (const auto& [name, state] : nodes_) {
    merged.Merge(state.decoder.latest().peer_sketch);
  }
  return merged;
}

double StatsAggregator::OverheadRatio() const {
  int64_t self = FleetValue(kMetricSelfBytes);
  int64_t total = FleetValue(kMetricPublishBytes);
  if (total <= 0) {
    return 0.0;
  }
  return static_cast<double>(self) / static_cast<double>(total);
}

uint64_t StatsAggregator::desyncs() const {
  uint64_t total = 0;
  for (const auto& [name, state] : nodes_) {
    total += state.decoder.desyncs();
  }
  return total;
}

std::string StatsAggregator::RenderJson() const {
  std::string out;
  out.reserve(4096);
  out.append("{\"schema\": \"BUSSTAT_1\",\n\"nodes\": {");
  bool first_node = true;
  for (const auto& [name, state] : nodes_) {
    if (state.ring_seen == 0) {
      continue;
    }
    const DecodedSample& s = state.decoder.latest();
    if (!first_node) {
      out.append(",");
    }
    first_node = false;
    out.append("\n  ");
    AppendJsonString(&out, name);
    out.append(": {\"seq\": " + std::to_string(s.seq));
    out.append(", \"at_us\": " + std::to_string(s.at_us));
    out.append(", \"sample_period\": " + std::to_string(s.sample_period));
    out.append(", \"values\": {");
    bool first_v = true;
    for (const auto& [metric, value] : s.values) {
      if (!first_v) {
        out.append(", ");
      }
      first_v = false;
      AppendJsonString(&out, metric);
      out.append(": " + std::to_string(value));
    }
    out.append("}}");
  }
  out.append("\n},\n\"fleet\": {\n");
  // Fleet scalar roll-up: the union of metric names across nodes, summed.
  std::map<std::string, int64_t> fleet;
  for (const auto& [name, state] : nodes_) {
    for (const auto& [metric, value] : state.decoder.latest().values) {
      fleet[metric] += value;
    }
  }
  out.append("  \"values\": {");
  bool first_f = true;
  for (const auto& [metric, value] : fleet) {
    if (!first_f) {
      out.append(", ");
    }
    first_f = false;
    AppendJsonString(&out, metric);
    out.append(": " + std::to_string(value));
  }
  out.append("},\n");
  // Merged quantiles for every histogram name seen anywhere in the fleet.
  std::map<std::string, LatencyHistogram> merged_hists;
  for (const auto& [name, state] : nodes_) {
    for (const auto& [hist, h] : state.decoder.latest().histograms) {
      merged_hists[hist].Merge(h);
    }
  }
  out.append("  \"histograms\": {");
  bool first_h = true;
  for (const auto& [hist, h] : merged_hists) {
    if (!first_h) {
      out.append(", ");
    }
    first_h = false;
    AppendJsonString(&out, hist);
    out.append(": {\"count\": " + std::to_string(h.count()));
    out.append(", \"min\": " + std::to_string(h.min()));
    out.append(", \"max\": " + std::to_string(h.max()));
    out.append(", \"p50\": " + std::to_string(h.p50()));
    out.append(", \"p90\": " + std::to_string(h.p90()));
    out.append(", \"p99\": " + std::to_string(h.p99()));
    out.append("}");
  }
  out.append("},\n");
  AppendSketchJson(&out, "top_subjects", MergedSubjectSketch());
  out.append(",\n");
  AppendSketchJson(&out, "top_peers", MergedPeerSketch());
  out.append(",\n");
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.6f", OverheadRatio());
  out.append("  \"overhead_ratio\": ");
  out.append(ratio);
  out.append("\n}}\n");
  return out;
}

std::string StatsAggregator::RenderTable() const {
  std::ostringstream out;
  out << "busstat fleet view: " << nodes_.size() << " node(s), " << samples_
      << " sample(s), " << desyncs() << " desync(s)\n";
  for (const auto& [name, state] : nodes_) {
    if (state.ring_seen == 0) {
      continue;
    }
    const DecodedSample& s = state.decoder.latest();
    out << "node " << name << " seq=" << s.seq << " at=" << s.at_us << "us"
        << " sample_period=" << s.sample_period << "\n";
  }
  out << "fleet publish_bytes=" << FleetValue(kMetricPublishBytes)
      << " self_bytes=" << FleetValue(kMetricSelfBytes) << " overhead=";
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.4f", OverheadRatio());
  out << ratio << "\n";
  out << "top subjects:\n" << MergedSubjectSketch().RenderTable();
  out << "top peers:\n" << MergedPeerSketch().RenderTable();
  return out.str();
}

uint64_t StatsAggregator::Hash() const { return FnvOf(RenderJson()); }

}  // namespace ibus::telemetry
