// Bus health events. Each daemon runs a HealthEvaluator (src/services/health_monitor.h)
// that periodically — in simulated time, so deterministically — evaluates rules over
// its metrics registry and publishes typed HealthEvent transitions on the reserved
// "_ibus.health.>" namespace. Like trace spans, health events are ordinary bus
// messages: any client anywhere on the bus (busmon, tests, operator consoles) can
// subscribe to the alert feed, and routers forward it across the WAN by default.
#ifndef SRC_TELEMETRY_HEALTH_H_
#define SRC_TELEMETRY_HEALTH_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/subject/subject.h"

namespace ibus::telemetry {

// Events are published on "<kReservedHealthPrefix><kind-name>.<node>".
inline constexpr char kHealthPattern[] = "_ibus.health.>";       // buslint: allow(reserved-subject)
inline constexpr char kHealthEventType[] = "_ibus.health.event"; // buslint: allow(reserved-subject)

// What went wrong (or recovered). Values are wire format; do not renumber.
enum class HealthEventKind : uint8_t {
  kSlowConsumer = 1,        // receiver gap rate: deliveries being abandoned
  kRetransmitStorm = 2,     // sender retransmit rate: the medium is lossy/congested
  kSubscriptionChurn = 3,   // subscribe/unsubscribe rate: flapping clients
  kPartitionSuspected = 4,  // a previously seen peer's stats feed went silent
  kRecovery = 5,            // a journaled component replayed its ledger after a crash
};

enum class HealthSeverity : uint8_t {
  kClear = 0,     // transition back to healthy (the alert retires)
  kWarning = 1,   // threshold crossed
  kCritical = 2,  // well past the threshold (see HealthConfig::critical_factor)
};

std::string_view HealthEventKindName(HealthEventKind k);
std::string_view HealthSeverityName(HealthSeverity s);

// Full event subject for a kind raised by `node`, e.g.
// "_ibus.health.slow_consumer.host2".
std::string HealthSubject(HealthEventKind kind, const std::string& node);

// One alert transition. Events are edge-triggered: the evaluator publishes exactly
// one raise when a rule's value crosses its raise threshold and one kClear when it
// settles back below the clear threshold (hysteresis; no flapping while the value
// oscillates between the two).
struct HealthEvent {
  HealthEventKind kind = HealthEventKind::kSlowConsumer;
  HealthSeverity severity = HealthSeverity::kWarning;
  std::string node;     // the reporting host (daemon host name)
  std::string subject;  // rule-specific scope: peer host, subject prefix; may be empty
  int64_t value = 0;      // observed value that caused the transition
  int64_t threshold = 0;  // the threshold it was compared against
  int64_t at_us = 0;      // simulated time of the transition

  // Versioned wire format: Unmarshal rejects unknown versions with kUnimplemented.
  static constexpr uint8_t kWireVersion = 1;
  Bytes Marshal() const;
  static Result<HealthEvent> Unmarshal(const Bytes& b);

  // Stable one-line rendering, used for alert tables and determinism hashes.
  std::string ToString() const;
};

}  // namespace ibus::telemetry

#endif  // SRC_TELEMETRY_HEALTH_H_
