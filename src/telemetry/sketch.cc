#include "src/telemetry/sketch.h"

#include <algorithm>
#include <sstream>

#include "src/wire/wire.h"

namespace ibus::telemetry {

namespace {

// Ranking used by Entries(): hottest first, ties by key so output is stable.
bool RankBefore(const TopKSketch::Entry& a, const TopKSketch::Entry& b) {
  if (a.count != b.count) {
    return a.count > b.count;
  }
  return a.key < b.key;
}

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

}  // namespace

TopKSketch::TopKSketch(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  slots_.reserve(capacity_);
}

void TopKSketch::Offer(std::string_view key, uint64_t weight) {  // hotlint: hot
  offered_ += weight;
  // Linear probe: capacity is a small constant, so this beats any hash map both in
  // cycles and in allocation behavior. Track the eviction victim in the same pass.
  Entry* victim = nullptr;
  for (Entry& e : slots_) {
    if (e.key == key) {
      e.count += weight;
      return;
    }
    if (victim == nullptr || e.count < victim->count ||
        (e.count == victim->count && e.key > victim->key)) {
      victim = &e;
    }
  }
  if (slots_.size() < capacity_) {
    // Fill phase only: after `capacity_` distinct keys the vector never grows again
    // (storage was reserved up front, so not even the fill phase reallocates).
    Entry e;
    e.key.assign(key.data(), key.size());
    e.count = weight;
    slots_.push_back(std::move(e));  // hotlint: allow(hot-container-growth) -- bounded fill phase into reserved storage; steady state never grows
    return;
  }
  // Space-saving eviction: the newcomer inherits the victim's count as its error
  // bound. assign() reuses the victim's string capacity, so no allocation once
  // keys of this length have been seen.
  victim->error = victim->count;
  victim->count += weight;
  victim->key.assign(key.data(), key.size());  // hotlint: allow(hot-string) -- reuses the evicted slot's capacity; no steady-state allocation
}

void TopKSketch::Merge(const TopKSketch& other) {
  offered_ += other.offered_;
  // Union by key, summing counts and error bounds, then keep the top capacity_.
  // Merges happen on the aggregation path (periodic, not per-message), so the
  // temporary union vector is fine here.
  std::vector<Entry> merged = slots_;
  for (const Entry& oe : other.slots_) {
    bool found = false;
    for (Entry& e : merged) {
      if (e.key == oe.key) {
        e.count += oe.count;
        e.error += oe.error;
        found = true;
        break;
      }
    }
    if (!found) {
      merged.push_back(oe);
    }
  }
  std::sort(merged.begin(), merged.end(), RankBefore);
  if (merged.size() > capacity_) {
    merged.resize(capacity_);
  }
  slots_ = std::move(merged);
}

std::vector<TopKSketch::Entry> TopKSketch::Entries() const {
  std::vector<Entry> out = slots_;
  std::sort(out.begin(), out.end(), RankBefore);
  return out;
}

std::string TopKSketch::RenderTable() const {
  std::ostringstream out;
  out << "topk capacity=" << capacity_ << " tracked=" << slots_.size()
      << " offered=" << offered_ << "\n";
  for (const Entry& e : Entries()) {
    out << "  " << e.key << " " << e.count;
    if (e.error > 0) {
      out << " (±" << e.error << ")";
    }
    out << "\n";
  }
  return out.str();
}

uint64_t TopKSketch::Hash() const {
  uint64_t h = kFnvOffset;
  for (char c : RenderTable()) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

// wirecheck: codec(topk_sketch, version=0)
void TopKSketch::Encode(WireWriter* w) const {
  w->PutVarint(capacity_);
  w->PutVarint(offered_);
  std::vector<Entry> ranked = Entries();
  w->PutVarint(ranked.size());
  for (const Entry& e : ranked) {
    w->PutString(e.key);
    w->PutVarint(e.count);
    w->PutVarint(e.error);
  }
}

// wirecheck: codec(topk_sketch, version=0)
Result<TopKSketch> TopKSketch::Decode(WireReader* r, size_t max_capacity) {
  Result<uint64_t> capacity = r->ReadVarint();
  if (!capacity.ok()) {
    return capacity.status();
  }
  if (*capacity == 0 || *capacity > max_capacity) {
    return DataLoss("sketch: capacity out of range");
  }
  TopKSketch s(static_cast<size_t>(*capacity));
  Result<uint64_t> offered = r->ReadVarint();
  if (!offered.ok()) {
    return offered.status();
  }
  s.offered_ = *offered;
  Result<uint64_t> n = r->ReadVarint();
  if (!n.ok()) {
    return n.status();
  }
  if (*n > *capacity) {
    return DataLoss("sketch: entry count exceeds capacity");
  }
  for (uint64_t i = 0; i < *n; i++) {
    Result<std::string> key = r->ReadString();
    if (!key.ok()) {
      return key.status();
    }
    Result<uint64_t> count = r->ReadVarint();
    if (!count.ok()) {
      return count.status();
    }
    Result<uint64_t> error = r->ReadVarint();
    if (!error.ok()) {
      return error.status();
    }
    Entry e;
    e.key = key.take();
    e.count = *count;
    e.error = *error;
    s.slots_.push_back(std::move(e));
  }
  return s;
}

}  // namespace ibus::telemetry
