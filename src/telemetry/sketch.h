// Fixed-memory streaming sketches for the busstat plane (docs/TELEMETRY.md,
// "Sampling & sketches"). At Internet scale the bus cannot afford per-subject or
// per-peer state proportional to the number of distinct keys it has ever seen; the
// space-saving TopKSketch answers "who is hot" in O(capacity) memory no matter how
// many distinct subjects flow, with deterministic tie-breaking so replayed runs
// produce bit-identical tables and hashes. Sketches from different nodes merge into
// one fleet view (StatsAggregator), the same way LatencyHistogram::Merge combines
// per-node quantiles.
#ifndef SRC_TELEMETRY_SKETCH_H_
#define SRC_TELEMETRY_SKETCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ibus {
class WireReader;
class WireWriter;
}  // namespace ibus

namespace ibus::telemetry {

// Space-saving heavy-hitter sketch (Metwally/Agrawal/El Abbadi). Tracks at most
// `capacity` keys; when a new key arrives with all slots taken, the smallest
// tracked count is evicted and the newcomer inherits that count as its error bound
// (true count is always within [count - error, count]). Lookup is a linear scan:
// capacity is small (default 16) and the slots reuse their string storage, so the
// steady state allocates nothing — this is what lets the daemon call Offer on the
// message hot path.
//
// Determinism contract: the victim on eviction is the slot with the smallest
// count, ties broken by the lexicographically greatest key. Both the eviction rule
// and the Entries() ranking (count desc, then key asc) are pure functions of the
// offered key sequence, so replays hash bit-identically.
class TopKSketch {
 public:
  struct Entry {
    std::string key;
    uint64_t count = 0;  // upper bound on the key's true count
    uint64_t error = 0;  // max overestimate: true count >= count - error
  };

  static constexpr size_t kDefaultCapacity = 16;

  explicit TopKSketch(size_t capacity = kDefaultCapacity);

  // Counts `weight` occurrences of `key`. O(capacity) scan, no steady-state
  // allocation (slot strings are reused on eviction).
  void Offer(std::string_view key, uint64_t weight = 1);

  // Folds another sketch in: counts and error bounds of shared keys add, the union
  // is re-ranked, and only the top `capacity()` keys survive (their evicted mass is
  // NOT redistributed — merged counts stay upper bounds). Deterministic for any
  // pair of deterministic inputs.
  void Merge(const TopKSketch& other);

  size_t capacity() const { return capacity_; }
  size_t size() const { return slots_.size(); }
  // Total weight ever offered (survives evictions; merges add).
  uint64_t offered() const { return offered_; }

  // Tracked entries ranked by (count desc, key asc) — the deterministic top-k.
  std::vector<Entry> Entries() const;

  // "key count error" per line in Entries() order, prefixed by a summary line.
  std::string RenderTable() const;

  // FNV-1a over RenderTable(): the replay-check fingerprint.
  uint64_t Hash() const;

  // Wire codec for the busstat time-series records: capacity, offered, then the
  // ranked entries. Decode enforces `max_capacity` so a hostile record cannot make
  // the decoder allocate unboundedly.
  void Encode(WireWriter* w) const;
  static Result<TopKSketch> Decode(WireReader* r, size_t max_capacity = 1024);

 private:
  size_t capacity_;
  uint64_t offered_ = 0;
  std::vector<Entry> slots_;  // unordered working set, <= capacity_ entries
};

}  // namespace ibus::telemetry

#endif  // SRC_TELEMETRY_SKETCH_H_
