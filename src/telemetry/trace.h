// Message-path tracing. A publish carries a compact trace context in the wire
// envelope (trace id + hop counter); each hop along the path — client publish,
// daemon wire send, daemon dispatch, router forward, router republish, subscriber
// deliver — stamps a HopRecord and publishes it as a typed span on the reserved
// "_ibus.trace.>" namespace, over the bus itself. A TraceCollector (collector.h)
// subscribes there and reconstructs per-message timelines. Spans themselves carry
// trace id 0, so tracing never traces itself.
#ifndef SRC_TELEMETRY_TRACE_H_
#define SRC_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/subject/subject.h"
#include "src/telemetry/metrics.h"

namespace ibus::telemetry {

// Spans are published on "<kReservedTracePrefix>hop.<kind-name>".
inline constexpr char kTracePattern[] = "_ibus.trace.>";        // buslint: allow(reserved-subject)
inline constexpr char kHopRecordType[] = "_ibus.trace.hop";     // buslint: allow(reserved-subject)

// Where along the message path a span was stamped.
enum class HopKind : uint8_t {
  kPublish = 1,          // client accepted an application publish
  kWireSend = 2,         // daemon handed the message to the reliable broadcast layer
  kDispatch = 3,         // daemon matched the message against local subscriptions
  kRouterForward = 4,    // router sent the message over a WAN link
  kRouterRepublish = 5,  // router re-injected the message on the far LAN
  kDeliver = 6,          // subscribing client invoked its handler
};

std::string_view HopKindName(HopKind k);

// Full span subject for a hop kind, e.g. "_ibus.trace.hop.deliver".
std::string HopSubject(HopKind kind);

// Deterministic trace sampling (docs/TELEMETRY.md, "Sampling & sketches"). The
// publisher decides once, by hashing the candidate trace id; every downstream hop
// just checks trace_id != 0, so one decision bounds TraceCollector memory and
// "_ibus.trace.>" wire bytes fleet-wide. The hash (a SplitMix64 finalizer) is a
// pure function of the id, which is itself a pure function of (client identity,
// publish ordinal) — so a replay of the same seed samples the same messages and
// hashes bit-identically.
inline constexpr uint32_t kDefaultTraceSamplePeriod = 64;

// Avalanching mix of the candidate id; sequential ids map to spread-out values so
// "every Nth hash residue" is an unbiased 1/N of traffic, not a striped artifact.
uint64_t TraceIdHash(uint64_t candidate_id);

// period 0 = tracing off, 1 = trace everything, N = sample ~1/N of publishes.
bool ShouldSampleTrace(uint64_t candidate_id, uint32_t period);

// One stamped hop. `hop` is the envelope's trace_hop at stamping time (bumped once
// per router traversal), `at_us` is simulated time, `node` identifies the stamping
// component (client name, "daemon@host", router name).
struct HopRecord {
  uint64_t trace_id = 0;
  uint8_t hop = 0;
  HopKind kind = HopKind::kPublish;
  std::string node;
  std::string subject;  // the traced application subject, not the span subject
  int64_t at_us = 0;
  uint64_t certified_id = 0;

  Bytes Marshal() const;
  static Result<HopRecord> Unmarshal(const Bytes& b);

  // Stable one-line rendering, used for timelines and determinism hashes.
  std::string ToString() const;
};

}  // namespace ibus::telemetry

#endif  // SRC_TELEMETRY_TRACE_H_
