#include "src/telemetry/trace.h"

#include <sstream>

#include "src/wire/wire.h"

namespace ibus::telemetry {

std::string_view HopKindName(HopKind k) {
  switch (k) {
    case HopKind::kPublish:
      return "publish";
    case HopKind::kWireSend:
      return "wire_send";
    case HopKind::kDispatch:
      return "dispatch";
    case HopKind::kRouterForward:
      return "router_forward";
    case HopKind::kRouterRepublish:
      return "router_republish";
    case HopKind::kDeliver:
      return "deliver";
  }
  return "unknown";
}

std::string HopSubject(HopKind kind) {
  return std::string(kReservedTracePrefix) + "hop." + std::string(HopKindName(kind));
}

uint64_t TraceIdHash(uint64_t candidate_id) {
  // SplitMix64 finalizer: cheap, stateless, and fully avalanched.
  uint64_t z = candidate_id + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool ShouldSampleTrace(uint64_t candidate_id, uint32_t period) {
  if (period == 0) {
    return false;
  }
  if (period == 1) {
    return true;
  }
  return TraceIdHash(candidate_id) % period == 0;
}

// wirecheck: codec(hop_record, version=0)
Bytes HopRecord::Marshal() const {  // hotlint: allow(hot-by-value) -- serialization boundary: NRVO into the send buffer
  WireWriter w;
  w.PutU64(trace_id);
  w.PutU8(hop);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutString(node);
  w.PutString(subject);
  w.PutI64(at_us);
  w.PutU64(certified_id);
  return w.Take();
}

// wirecheck: codec(hop_record, version=0)
Result<HopRecord> HopRecord::Unmarshal(const Bytes& b) {
  WireReader r(b);
  auto trace_id = r.ReadU64();
  auto hop = r.ReadU8();
  auto kind = r.ReadU8();
  auto node = r.ReadString();
  auto subject = r.ReadString();
  auto at_us = r.ReadI64();
  auto certified_id = r.ReadU64();
  if (!trace_id.ok() || !hop.ok() || !kind.ok() || !node.ok() || !subject.ok() ||
      !at_us.ok() || !certified_id.ok()) {
    return DataLoss("trace: truncated hop record");
  }
  if (*kind < static_cast<uint8_t>(HopKind::kPublish) ||
      *kind > static_cast<uint8_t>(HopKind::kDeliver)) {
    return DataLoss("trace: bad hop kind");
  }
  if (!r.AtEnd()) {
    return DataLoss("trace: trailing bytes after hop record");
  }
  HopRecord rec;
  rec.trace_id = *trace_id;
  rec.hop = *hop;
  rec.kind = static_cast<HopKind>(*kind);
  rec.node = node.take();
  rec.subject = subject.take();
  rec.at_us = *at_us;
  rec.certified_id = *certified_id;
  return rec;
}

std::string HopRecord::ToString() const {  // hotlint: cold -- console/log rendering, never on the forwarding path
  std::ostringstream out;
  out << "t=" << at_us << "us trace=" << trace_id << " hop=" << static_cast<int>(hop) << " "
      << HopKindName(kind) << " node=" << node << " subject=" << subject;
  if (certified_id != 0) {
    out << " cert=" << certified_id;
  }
  return out.str();
}

}  // namespace ibus::telemetry
