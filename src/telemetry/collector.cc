#include "src/telemetry/collector.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace ibus::telemetry {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

Result<std::unique_ptr<TraceCollector>> TraceCollector::Create(
    BusClient* bus, const TraceCollectorOptions& options) {
#if IBUS_TELEMETRY
  if (options.max_traces == 0) {
    return InvalidArgument("trace collector: max_traces must be positive");
  }
  auto collector = std::unique_ptr<TraceCollector>(new TraceCollector(bus, options));
  auto sub = bus->Subscribe(kTracePattern,
                            [c = collector.get()](const Message& m) { c->HandleSpan(m); });
  if (!sub.ok()) {
    return sub.status();
  }
  collector->sub_id_ = *sub;
  return collector;
#else
  (void)bus;
  (void)options;
  return FailedPrecondition("telemetry: built with IB_TELEMETRY=OFF, no spans are emitted");
#endif
}

TraceCollector::~TraceCollector() {
  if (sub_id_ != 0) {
    bus_->Unsubscribe(sub_id_);
  }
}

void TraceCollector::HandleSpan(const Message& m) {
  if (m.type_name != kHopRecordType) {
    return;  // other record types may share the namespace later
  }
  auto rec = HopRecord::Unmarshal(m.payload);
  if (!rec.ok()) {
    return;
  }
  records_received_++;
  uint64_t trace_id = rec->trace_id;
  traces_[trace_id].push_back(rec.take());
  TouchTrace(trace_id);
}

void TraceCollector::TouchTrace(uint64_t trace_id) {
  auto pos = lru_pos_.find(trace_id);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
  }
  lru_.push_back(trace_id);
  lru_pos_[trace_id] = std::prev(lru_.end());
  while (traces_.size() > options_.max_traces) {
    uint64_t coldest = lru_.front();
    lru_.pop_front();
    lru_pos_.erase(coldest);
    traces_.erase(coldest);
    evictions_->Inc();
  }
}

std::vector<uint64_t> TraceCollector::trace_ids() const {
  std::vector<uint64_t> ids;
  ids.reserve(traces_.size());
  for (const auto& [id, hops] : traces_) {
    ids.push_back(id);
  }
  return ids;
}

std::vector<HopRecord> TraceCollector::Timeline(uint64_t trace_id) const {
  auto it = traces_.find(trace_id);
  if (it == traces_.end()) {
    return {};
  }
  std::vector<HopRecord> hops = it->second;
  std::sort(hops.begin(), hops.end(), [](const HopRecord& a, const HopRecord& b) {
    return std::tie(a.at_us, a.hop, a.kind, a.node, a.subject) <
           std::tie(b.at_us, b.hop, b.kind, b.node, b.subject);
  });
  return hops;
}

std::string TraceCollector::RenderTimeline(uint64_t trace_id) const {
  std::vector<HopRecord> hops = Timeline(trace_id);
  if (hops.empty()) {
    return "";
  }
  const int64_t start = hops.front().at_us;
  std::ostringstream out;
  out << "trace " << trace_id << " (" << hops.size() << " hops)\n";
  for (const HopRecord& h : hops) {
    out << "  +" << (h.at_us - start) << "us hop=" << static_cast<int>(h.hop) << " "
        << HopKindName(h.kind) << " node=" << h.node << " subject=" << h.subject;
    if (h.certified_id != 0) {
      out << " cert=" << h.certified_id;
    }
    out << "\n";
  }
  return out.str();
}

uint64_t TraceCollector::TimelineHash(uint64_t trace_id) const {
  uint64_t h = kFnvOffset;
  for (const HopRecord& rec : Timeline(trace_id)) {
    h = FnvMix(h, rec.ToString());
    h = FnvMix(h, "\n");
  }
  return h;
}

uint64_t TraceCollector::AllTracesHash() const {
  uint64_t h = kFnvOffset;
  for (const auto& [id, hops] : traces_) {
    h = FnvMix(h, std::to_string(id));
    h ^= TimelineHash(id);
    h *= kFnvPrime;
  }
  return h;
}

std::map<HopKind, LatencyHistogram> TraceCollector::HopLatencyHistograms() const {
  std::map<HopKind, LatencyHistogram> hists;
  for (const auto& [id, unsorted] : traces_) {
    std::vector<HopRecord> hops = Timeline(id);
    for (size_t i = 1; i < hops.size(); ++i) {
      hists[hops[i].kind].Record(hops[i].at_us - hops[i - 1].at_us);
    }
  }
  return hists;
}

}  // namespace ibus::telemetry
