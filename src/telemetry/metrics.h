// Metrics registry: named counters, gauges, and log-bucketed latency histograms for
// every layer of the bus (paper: the installations ran operations dashboards fed by
// the bus monitoring the bus). Counters and gauges are the substrate behind the
// protocol stats structs (DaemonStats, ReliableSenderStats, ...) and always compile
// to a single add. Histograms and everything trace-related are telemetry proper and
// compile to no-ops when the tree is configured with -DIB_TELEMETRY=OFF, keeping the
// hot path at seed cost (see docs/TELEMETRY.md).
#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

// Defined to 0 by CMake when configured with -DIB_TELEMETRY=OFF.
#ifndef IBUS_TELEMETRY
#define IBUS_TELEMETRY 1
#endif

namespace ibus::telemetry {

// Monotonic event count. Always functional: counters back the protocol-visible
// stats that control logic and tests consume.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_ += n; }
  uint64_t value() const { return v_; }

 private:
  uint64_t v_ = 0;
};

// Point-in-time level (subscription counts, queue depths). Always functional.
class Gauge {
 public:
  void Set(int64_t v) { v_ = v; }
  void Add(int64_t d) { v_ += d; }
  int64_t value() const { return v_; }

 private:
  int64_t v_ = 0;
};

// Log-bucketed latency histogram: bucket i holds values whose bit width is i, i.e.
// the range [2^(i-1), 2^i - 1] microseconds. 64 buckets cover the whole int64 range
// with one increment per Record and no allocation. Percentile extraction returns the
// upper bound of the bucket containing the requested rank, so reported percentiles
// are conservative (never below the true value, at most 2x above).
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  // Bucket index for a latency value (negative values clamp to bucket 0).
  static size_t BucketOf(int64_t us);
  // Largest value falling in bucket `b` (the value Percentile reports).
  static int64_t BucketUpper(size_t b);

  void Record(int64_t us) {
#if IBUS_TELEMETRY
    size_t b = BucketOf(us);
    counts_[b]++;
    total_++;
    sum_ += us < 0 ? 0 : us;
    if (total_ == 1 || us < min_) {
      min_ = us;
    }
    if (total_ == 1 || us > max_) {
      max_ = us;
    }
#else
    (void)us;
#endif
  }

  // Folds another histogram in: log buckets from different nodes line up exactly,
  // so bucket counts, totals, and sums add and min/max combine — per-node
  // histograms merge losslessly into fleet quantiles (busstat's StatsAggregator).
  // Not gated on IBUS_TELEMETRY: merging decoded wire records must work even in a
  // telemetry-off aggregator process.
  void Merge(const LatencyHistogram& other);

  // Restore path for the busstat wire codec: adds `count` observations to bucket
  // `b` (clamped) and bumps the total, without touching sum/min/max — the decoder
  // restores those separately via RestoreStats once all buckets are in.
  void RestoreBucket(size_t b, uint64_t count);
  void RestoreStats(int64_t sum, int64_t min, int64_t max);

  uint64_t count() const { return total_; }
  int64_t min() const { return total_ == 0 ? 0 : min_; }
  int64_t max() const { return total_ == 0 ? 0 : max_; }
  int64_t sum() const { return sum_; }
  double Mean() const;

  // Upper bound of the bucket holding the q-quantile (q in [0,1]); 0 when empty.
  int64_t Percentile(double q) const;
  int64_t p50() const { return Percentile(0.50); }
  int64_t p90() const { return Percentile(0.90); }
  int64_t p99() const { return Percentile(0.99); }

  uint64_t bucket_count(size_t b) const { return b < kBuckets ? counts_[b] : 0; }

 private:
  uint64_t counts_[kBuckets] = {};
  uint64_t total_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

// Queue occupancy instrument: a depth gauge paired with a monotone high-watermark.
// Components resolve it once (the paired gauges live in the registry under
// "<name>" and "<name>.hwm") and call Set at every queue mutation; Set is two
// stores and a compare, so it is safe on the hot path. Always functional, like
// Gauge: queue depths feed the stats plane, not just telemetry.
class QueueDepthGauge {
 public:
  QueueDepthGauge(Gauge* depth, Gauge* hwm) : depth_(depth), hwm_(hwm) {}

  void Set(int64_t v) {
    depth_->Set(v);
    if (v > hwm_->value()) {
      hwm_->Set(v);
    }
  }
  void Add(int64_t d) { Set(depth_->value() + d); }

  int64_t depth() const { return depth_->value(); }
  int64_t high_watermark() const { return hwm_->value(); }

 private:
  Gauge* depth_;
  Gauge* hwm_;
};

// Owns named metrics with stable pointers: components resolve their instruments once
// at construction and increment through the pointer on the hot path. Iteration order
// is the name order (std::map), so rendered output is deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  // Resolves the "<name>" / "<name>.hwm" gauge pair behind a QueueDepthGauge.
  QueueDepthGauge GetQueueDepth(const std::string& name) {
    return QueueDepthGauge(GetGauge(name), GetGauge(name + ".hwm"));
  }

  // Read-side lookups for reporters/dashboards; absent names read as zero/null.
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  const LatencyHistogram* FindHistogram(const std::string& name) const;

  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const { return gauges_; }
  const std::map<std::string, std::unique_ptr<LatencyHistogram>>& histograms() const {
    return histograms_;
  }

  // One metric per line: "name 42" / "name count=.. p50=.. p90=.. p99=..".
  std::string RenderText() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace ibus::telemetry

#endif  // SRC_TELEMETRY_METRICS_H_
