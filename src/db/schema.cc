#include "src/db/schema.h"

#include <unordered_set>

namespace ibus {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kBool:
      return "bool";
    case ColumnType::kI64:
      return "i64";
    case ColumnType::kF64:
      return "f64";
    case ColumnType::kText:
      return "text";
    case ColumnType::kBlob:
      return "blob";
  }
  return "?";
}

const Column* TableSchema::FindColumn(const std::string& column_name) const {
  for (const Column& c : columns) {
    if (c.name == column_name) {
      return &c;
    }
  }
  return nullptr;
}

int TableSchema::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status TableSchema::Validate() const {
  if (name.empty()) {
    return InvalidArgument("schema: empty table name");
  }
  if (columns.empty()) {
    return InvalidArgument("schema: table '" + name + "' has no columns");
  }
  std::unordered_set<std::string> seen;
  for (const Column& c : columns) {
    if (c.name.empty()) {
      return InvalidArgument("schema: table '" + name + "' has an unnamed column");
    }
    if (!seen.insert(c.name).second) {
      return InvalidArgument("schema: table '" + name + "' duplicates column '" + c.name + "'");
    }
  }
  if (!primary_key.empty()) {
    const Column* pk = FindColumn(primary_key);
    if (pk == nullptr) {
      return InvalidArgument("schema: table '" + name + "' names missing primary key '" +
                             primary_key + "'");
    }
    if (pk->nullable) {
      return InvalidArgument("schema: primary key '" + primary_key + "' must be NOT NULL");
    }
  }
  return OkStatus();
}

Status CheckCell(const Column& column, const Value& cell) {
  if (cell.is_null()) {
    if (!column.nullable) {
      return InvalidArgument("column '" + column.name + "' is NOT NULL");
    }
    return OkStatus();
  }
  switch (column.type) {
    case ColumnType::kBool:
      if (!cell.is_bool()) {
        return InvalidArgument("column '" + column.name + "' wants bool, got " +
                               cell.kind_name());
      }
      return OkStatus();
    case ColumnType::kI64:
      if (!cell.is_i64() && !cell.is_i32()) {
        return InvalidArgument("column '" + column.name + "' wants i64, got " +
                               cell.kind_name());
      }
      return OkStatus();
    case ColumnType::kF64:
      if (!cell.is_number()) {
        return InvalidArgument("column '" + column.name + "' wants f64, got " +
                               cell.kind_name());
      }
      return OkStatus();
    case ColumnType::kText:
      if (!cell.is_string()) {
        return InvalidArgument("column '" + column.name + "' wants text, got " +
                               cell.kind_name());
      }
      return OkStatus();
    case ColumnType::kBlob:
      if (!cell.is_bytes()) {
        return InvalidArgument("column '" + column.name + "' wants blob, got " +
                               cell.kind_name());
      }
      return OkStatus();
  }
  return Internal("unknown column type");
}

}  // namespace ibus
