// Relational schema model for the embedded database substrate. The paper's Object
// Repository sits on "a commercially available relational database system"; this
// module provides the equivalent substrate: flat tables of typed columns with dynamic
// DDL, which is exactly what the repository's object-to-relational mapping needs.
#ifndef SRC_DB_SCHEMA_H_
#define SRC_DB_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/types/value.h"

namespace ibus {

enum class ColumnType { kBool, kI64, kF64, kText, kBlob };

const char* ColumnTypeName(ColumnType t);

struct Column {
  std::string name;
  ColumnType type = ColumnType::kText;
  bool nullable = true;

  bool operator==(const Column&) const = default;
};

struct TableSchema {
  std::string name;
  std::vector<Column> columns;
  // Optional: name of the unique, indexed primary-key column ("" = none).
  std::string primary_key;

  const Column* FindColumn(const std::string& column_name) const;
  int ColumnIndex(const std::string& column_name) const;  // -1 if absent
  Status Validate() const;

  bool operator==(const TableSchema&) const = default;
};

// A row is one Value per column, in schema order. Cells are restricted to
// null/bool/i64/f64/string/bytes (i32 widens to i64 on insert).
using Row = std::vector<Value>;

// Checks a single cell against a column definition.
Status CheckCell(const Column& column, const Value& cell);

}  // namespace ibus

#endif  // SRC_DB_SCHEMA_H_
