#include "src/db/database.h"

#include <algorithm>

namespace ibus {

// ---------------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------------

std::string Table::IndexKey(const Value& v) {
  // Encoded form for hash lookups; kind prefix avoids 1 == "1" collisions.
  switch (v.kind()) {
    case ValueKind::kNull:
      return "n";
    case ValueKind::kBool:
      return v.AsBool() ? "b1" : "b0";
    case ValueKind::kI32:
      return "i" + std::to_string(v.AsI32());
    case ValueKind::kI64:
      return "i" + std::to_string(v.AsI64());
    case ValueKind::kF64:
      return "f" + std::to_string(v.AsF64());
    case ValueKind::kString:
      return "s" + v.AsString();
    case ValueKind::kBytes:
      return "y" + ToString(v.AsBytes());
    default:
      return "?";
  }
}

Status Table::CheckRow(const Row& row) const {
  if (row.size() != schema_.columns.size()) {
    return InvalidArgument("table '" + schema_.name + "': row has " +
                           std::to_string(row.size()) + " cells, schema has " +
                           std::to_string(schema_.columns.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    IBUS_RETURN_IF_ERROR(CheckCell(schema_.columns[i], row[i]));
  }
  return OkStatus();
}

Status Table::Insert(Row row) {
  IBUS_RETURN_IF_ERROR(CheckRow(row));
  std::string pk_key;
  if (!schema_.primary_key.empty()) {
    int pk_col = schema_.ColumnIndex(schema_.primary_key);
    pk_key = IndexKey(row[static_cast<size_t>(pk_col)]);
    if (pk_index_.count(pk_key) > 0) {
      return AlreadyExists("table '" + schema_.name + "': duplicate primary key");
    }
  }
  size_t pos;
  if (!free_.empty()) {
    pos = free_.back();
    free_.pop_back();
    rows_[pos] = std::move(row);
    live_[pos] = true;
  } else {
    pos = rows_.size();
    rows_.push_back(std::move(row));
    live_.push_back(true);
  }
  if (!schema_.primary_key.empty()) {
    pk_index_[pk_key] = pos;
  }
  IndexInsert(pos);
  return OkStatus();
}

void Table::IndexInsert(size_t row_pos) {
  for (auto& [column, index] : indexes_) {
    int col = schema_.ColumnIndex(column);
    index.emplace(IndexKey(rows_[row_pos][static_cast<size_t>(col)]), row_pos);
  }
}

void Table::IndexErase(size_t row_pos) {
  for (auto& [column, index] : indexes_) {
    int col = schema_.ColumnIndex(column);
    auto range = index.equal_range(IndexKey(rows_[row_pos][static_cast<size_t>(col)]));
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == row_pos) {
        index.erase(it);
        break;
      }
    }
  }
}

Status Table::UpdateByPk(const Value& pk, Row row) {
  if (schema_.primary_key.empty()) {
    return FailedPrecondition("table '" + schema_.name + "' has no primary key");
  }
  IBUS_RETURN_IF_ERROR(CheckRow(row));
  auto it = pk_index_.find(IndexKey(pk));
  if (it == pk_index_.end()) {
    return NotFound("table '" + schema_.name + "': no such primary key");
  }
  int pk_col = schema_.ColumnIndex(schema_.primary_key);
  if (IndexKey(row[static_cast<size_t>(pk_col)]) != it->first) {
    return InvalidArgument("update must not change the primary key");
  }
  IndexErase(it->second);
  rows_[it->second] = std::move(row);
  IndexInsert(it->second);
  return OkStatus();
}

Status Table::DeleteByPk(const Value& pk) {
  if (schema_.primary_key.empty()) {
    return FailedPrecondition("table '" + schema_.name + "' has no primary key");
  }
  auto it = pk_index_.find(IndexKey(pk));
  if (it == pk_index_.end()) {
    return NotFound("table '" + schema_.name + "': no such primary key");
  }
  size_t pos = it->second;
  IndexErase(pos);
  pk_index_.erase(it);
  live_[pos] = false;
  rows_[pos].clear();
  free_.push_back(pos);
  return OkStatus();
}

Result<Row> Table::GetByPk(const Value& pk) const {
  if (schema_.primary_key.empty()) {
    return FailedPrecondition("table '" + schema_.name + "' has no primary key");
  }
  auto it = pk_index_.find(IndexKey(pk));
  if (it == pk_index_.end()) {
    return NotFound("table '" + schema_.name + "': no such primary key");
  }
  return rows_[it->second];
}

int CompareCells(const Value& a, const Value& b) {
  if (a.is_number() && b.is_number()) {
    double x = a.NumberAsF64();
    double y = b.NumberAsF64();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.is_string() && b.is_string()) {
    int c = a.AsString().compare(b.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.AsBool()) - static_cast<int>(b.AsBool());
  }
  return a == b ? 0 : 2;  // incomparable kinds: only equality is meaningful
}

namespace {
// Internal alias kept for readability of the predicate code below.
int CompareValues(const Value& a, const Value& b) { return CompareCells(a, b); }
}  // namespace

bool Table::RowMatches(const Row& row, const Predicate& pred) const {
  for (const Predicate::Cond& cond : pred.conds) {
    int col = schema_.ColumnIndex(cond.column);
    if (col < 0) {
      return false;
    }
    const Value& cell = row[static_cast<size_t>(col)];
    switch (cond.op) {
      case Predicate::Op::kEq:
        if (!(cell == cond.value)) {
          // Allow numeric cross-kind equality (i32 vs i64 widening on insert).
          if (!(cell.is_number() && cond.value.is_number() &&
                CompareValues(cell, cond.value) == 0)) {
            return false;
          }
        }
        break;
      case Predicate::Op::kNe:
        if (cell == cond.value) {
          return false;
        }
        break;
      case Predicate::Op::kLt:
        if (CompareValues(cell, cond.value) >= 0 || CompareValues(cell, cond.value) == 2) {
          return false;
        }
        break;
      case Predicate::Op::kLe:
        if (CompareValues(cell, cond.value) > 0) {
          return false;
        }
        break;
      case Predicate::Op::kGt: {
        int c = CompareValues(cell, cond.value);
        if (c <= 0 || c == 2) {
          return false;
        }
        break;
      }
      case Predicate::Op::kGe: {
        int c = CompareValues(cell, cond.value);
        if (c < 0 || c == 2) {
          return false;
        }
        break;
      }
      case Predicate::Op::kPrefix:
        if (!cell.is_string() || !cond.value.is_string() ||
            cell.AsString().rfind(cond.value.AsString(), 0) != 0) {
          return false;
        }
        break;
    }
  }
  return true;
}

std::vector<Row> Table::Select(const Predicate& pred) const {
  std::vector<Row> out;
  // Use an index if some equality condition is covered by one.
  for (const Predicate::Cond& cond : pred.conds) {
    if (cond.op != Predicate::Op::kEq) {
      continue;
    }
    auto idx = indexes_.find(cond.column);
    if (idx == indexes_.end()) {
      if (cond.column == schema_.primary_key) {
        auto it = pk_index_.find(IndexKey(cond.value));
        if (it != pk_index_.end() && RowMatches(rows_[it->second], pred)) {
          out.push_back(rows_[it->second]);
        }
        return out;
      }
      continue;
    }
    auto range = idx->second.equal_range(IndexKey(cond.value));
    for (auto it = range.first; it != range.second; ++it) {
      if (live_[it->second] && RowMatches(rows_[it->second], pred)) {
        out.push_back(rows_[it->second]);
      }
    }
    return out;
  }
  // Full scan.
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (live_[i] && RowMatches(rows_[i], pred)) {
      out.push_back(rows_[i]);
    }
  }
  return out;
}

Result<std::vector<Row>> Table::Select(const Predicate& pred,
                                       const QueryOptions& options) const {
  int order_col = -1;
  if (!options.order_by.empty()) {
    order_col = schema_.ColumnIndex(options.order_by);
    if (order_col < 0) {
      return NotFound("table '" + schema_.name + "': no order-by column '" +
                      options.order_by + "'");
    }
  }
  std::vector<int> projection_cols;
  for (const std::string& name : options.projection) {
    int col = schema_.ColumnIndex(name);
    if (col < 0) {
      return NotFound("table '" + schema_.name + "': no projected column '" + name + "'");
    }
    projection_cols.push_back(col);
  }

  std::vector<Row> rows = Select(pred);
  if (order_col >= 0) {
    std::stable_sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
      // NULLs sort first ascending (last descending), as in most engines.
      const Value& x = a[static_cast<size_t>(order_col)];
      const Value& y = b[static_cast<size_t>(order_col)];
      if (x.is_null() != y.is_null()) {
        return options.descending ? y.is_null() : x.is_null();
      }
      int c = CompareCells(x, y);
      if (c == 2 || c == 0) {
        return false;
      }
      return options.descending ? c > 0 : c < 0;
    });
  }
  if (rows.size() > options.limit) {
    rows.resize(options.limit);
  }
  if (!projection_cols.empty()) {
    for (Row& row : rows) {
      Row projected;
      projected.reserve(projection_cols.size());
      for (int col : projection_cols) {
        projected.push_back(row[static_cast<size_t>(col)]);  // copy: columns may repeat
      }
      row = std::move(projected);
    }
  }
  return rows;
}

size_t Table::Count(const Predicate& pred) const { return Select(pred).size(); }

Result<Value> Table::Aggregate(const Predicate& pred, const std::string& column,
                               AggregateOp op) const {
  int col = schema_.ColumnIndex(column);
  if (col < 0) {
    return NotFound("table '" + schema_.name + "': no column '" + column + "'");
  }
  std::vector<Row> rows = Select(pred);
  int64_t count = 0;
  double sum = 0;
  const Value* best = nullptr;
  for (const Row& row : rows) {
    const Value& cell = row[static_cast<size_t>(col)];
    if (cell.is_null()) {
      continue;  // SQL semantics: NULLs don't participate
    }
    ++count;
    switch (op) {
      case AggregateOp::kCount:
        break;
      case AggregateOp::kSum:
      case AggregateOp::kAvg:
        if (!cell.is_number()) {
          return InvalidArgument("aggregate: SUM/AVG need a numeric column");
        }
        sum += cell.NumberAsF64();
        break;
      case AggregateOp::kMin:
        if (best == nullptr || CompareCells(cell, *best) == -1) {
          best = &cell;
        }
        break;
      case AggregateOp::kMax:
        if (best == nullptr || CompareCells(cell, *best) == 1) {
          best = &cell;
        }
        break;
    }
  }
  switch (op) {
    case AggregateOp::kCount:
      return Value(count);
    case AggregateOp::kSum:
      return Value(sum);
    case AggregateOp::kAvg:
      return count == 0 ? Value() : Value(sum / static_cast<double>(count));
    case AggregateOp::kMin:
    case AggregateOp::kMax:
      return best == nullptr ? Value() : *best;
  }
  return Internal("unknown aggregate");
}

Status Table::DeleteWhere(const Predicate& pred) {
  if (!schema_.primary_key.empty()) {
    int pk_col = schema_.ColumnIndex(schema_.primary_key);
    std::vector<Value> keys;
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (live_[i] && RowMatches(rows_[i], pred)) {
        keys.push_back(rows_[i][static_cast<size_t>(pk_col)]);
      }
    }
    for (const Value& k : keys) {
      IBUS_RETURN_IF_ERROR(DeleteByPk(k));
    }
    return OkStatus();
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (live_[i] && RowMatches(rows_[i], pred)) {
      IndexErase(i);
      live_[i] = false;
      rows_[i].clear();
      free_.push_back(i);
    }
  }
  return OkStatus();
}

Status Table::CreateIndex(const std::string& column) {
  if (schema_.ColumnIndex(column) < 0) {
    return NotFound("table '" + schema_.name + "': no column '" + column + "'");
  }
  if (indexes_.count(column) > 0) {
    return OkStatus();  // idempotent
  }
  auto& index = indexes_[column];
  int col = schema_.ColumnIndex(column);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (live_[i]) {
      index.emplace(IndexKey(rows_[i][static_cast<size_t>(col)]), i);
    }
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------------

Status Database::CreateTable(TableSchema schema) {
  IBUS_RETURN_IF_ERROR(schema.Validate());
  if (tables_.count(schema.name) > 0) {
    return AlreadyExists("table '" + schema.name + "' exists");
  }
  std::string name = schema.name;
  tables_[name] = std::make_unique<Table>(std::move(schema));
  return OkStatus();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return NotFound("table '" + name + "' does not exist");
  }
  return OkStatus();
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [name, table] : tables_) {
    out.push_back(name);
  }
  return out;
}

Status Database::Insert(const std::string& table, Row row) {
  Table* t = GetTable(table);
  if (t == nullptr) {
    return NotFound("table '" + table + "' does not exist");
  }
  return t->Insert(std::move(row));
}

Result<std::vector<Row>> Database::Select(const std::string& table,
                                          const Predicate& pred) const {
  const Table* t = GetTable(table);
  if (t == nullptr) {
    return NotFound("table '" + table + "' does not exist");
  }
  return t->Select(pred);
}

}  // namespace ibus
