// In-memory relational engine: dynamic DDL (the repository creates tables for new
// types on the fly), typed inserts/updates, primary-key and secondary hash indexes,
// and conjunctive predicate scans.
#ifndef SRC_DB_DATABASE_H_
#define SRC_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/db/schema.h"

namespace ibus {

// A conjunction of simple column conditions (ANDed). An empty predicate matches all.
struct Predicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kPrefix /* text starts-with */ };

  struct Cond {
    std::string column;
    Op op = Op::kEq;
    Value value;
  };

  std::vector<Cond> conds;

  Predicate() = default;
  static Predicate True() { return Predicate(); }
  static Predicate Eq(std::string column, Value value) {
    Predicate p;
    p.conds.push_back(Cond{std::move(column), Op::kEq, std::move(value)});
    return p;
  }
  Predicate& And(std::string column, Op op, Value value) {
    conds.push_back(Cond{std::move(column), op, std::move(value)});
    return *this;
  }
};

// Ordering, truncation and projection applied after predicate filtering.
struct QueryOptions {
  std::string order_by;  // column name; empty = storage order
  bool descending = false;
  size_t limit = SIZE_MAX;
  // Columns (by name, in output order); empty = all columns in schema order.
  std::vector<std::string> projection;
};

enum class AggregateOp { kCount, kSum, kMin, kMax, kAvg };

// Total order over comparable cells; used by ORDER BY and range predicates.
// Returns -1/0/+1 for comparable values and 2 for incomparable kinds.
int CompareCells(const Value& a, const Value& b);

class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  size_t row_count() const { return rows_.size() - free_.size(); }

  Status Insert(Row row);
  // Updates the row whose primary key equals `pk` (requires a primary key).
  Status UpdateByPk(const Value& pk, Row row);
  Status DeleteByPk(const Value& pk);
  Result<Row> GetByPk(const Value& pk) const;

  // Returns copies of all rows satisfying `pred`, using an index when one covers an
  // equality condition.
  std::vector<Row> Select(const Predicate& pred) const;
  // Select with ordering / limit / projection. Fails on unknown column names.
  Result<std::vector<Row>> Select(const Predicate& pred, const QueryOptions& options) const;
  size_t Count(const Predicate& pred) const;
  // COUNT/SUM/MIN/MAX/AVG over one column of the matching rows. NULL cells are
  // skipped (SQL semantics); SUM/AVG require a numeric column.
  Result<Value> Aggregate(const Predicate& pred, const std::string& column,
                          AggregateOp op) const;
  Status DeleteWhere(const Predicate& pred);

  // Builds a secondary hash index over an existing column (equality lookups).
  Status CreateIndex(const std::string& column);
  bool HasIndex(const std::string& column) const { return indexes_.count(column) > 0; }

 private:
  static std::string IndexKey(const Value& v);
  Status CheckRow(const Row& row) const;
  bool RowMatches(const Row& row, const Predicate& pred) const;
  void IndexInsert(size_t row_pos);
  void IndexErase(size_t row_pos);

  TableSchema schema_;
  std::vector<Row> rows_;       // slot list; erased slots go to free_
  std::vector<bool> live_;
  std::vector<size_t> free_;
  std::unordered_map<std::string, size_t> pk_index_;
  // column -> (encoded value -> row positions)
  std::unordered_map<std::string, std::unordered_multimap<std::string, size_t>> indexes_;
};

class Database {
 public:
  Status CreateTable(TableSchema schema);
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // Convenience forwarding helpers (error if the table is missing).
  Status Insert(const std::string& table, Row row);
  Result<std::vector<Row>> Select(const std::string& table, const Predicate& pred) const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace ibus

#endif  // SRC_DB_DATABASE_H_
