#include "src/adapters/feed_sim.h"

#include <algorithm>
#include <iterator>

namespace ibus {

namespace {

const char* const kCategories[] = {"equity", "bond", "commodity"};
const char* const kTickers[] = {"gmc", "ibm", "tsm", "amd", "f", "ge", "t10", "oil", "gold"};
const char* const kSubjectsOfNews[] = {"earnings", "merger", "strike", "upgrade",
                                       "downgrade", "yield", "fab expansion", "recall"};
const char* const kIndustries[] = {"auto", "semis", "energy", "metals", "telecom", "banking"};
const char* const kBodyWords[] = {
    "shares", "rose",   "fell",    "sharply", "after",   "the",     "company", "announced",
    "record", "quarter", "results", "analysts", "expect",  "further", "gains",   "losses",
    "amid",   "strong",  "demand",  "for",     "chips",   "vehicles", "production", "capacity"};

}  // namespace

FeedStory StoryGenerator::Next() {
  FeedStory s;
  s.serial = ++serial_;
  s.category = kCategories[rng_.NextBelow(std::size(kCategories))];
  s.ticker = kTickers[rng_.NextBelow(std::size(kTickers))];
  s.headline = std::string(kTickers[rng_.NextBelow(std::size(kTickers))]) + " " +
               kSubjectsOfNews[rng_.NextBelow(std::size(kSubjectsOfNews))];
  size_t n_ind = 1 + rng_.NextBelow(2);
  for (size_t i = 0; i < n_ind; ++i) {
    std::string ind = kIndustries[rng_.NextBelow(std::size(kIndustries))];
    if (std::find(s.industries.begin(), s.industries.end(), ind) == s.industries.end()) {
      s.industries.push_back(ind);
    }
  }
  size_t words = 20 + rng_.NextBelow(30);
  for (size_t i = 0; i < words; ++i) {
    if (i != 0) {
      s.body += ' ';
    }
    s.body += kBodyWords[rng_.NextBelow(std::size(kBodyWords))];
  }
  return s;
}

Bytes DowJonesFeed::Encode(const FeedStory& story) {
  std::string out = "DJ|" + std::to_string(story.serial) + "|" + story.category + "|" +
                    story.ticker + "|" + story.headline + "|";
  for (size_t i = 0; i < story.industries.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += story.industries[i];
  }
  out += "|" + story.body;
  return ToBytes(out);
}

Bytes DowJonesFeed::NextRaw(FeedStory* story) {
  FeedStory s = gen_.Next();
  Bytes raw = Encode(s);
  if (story != nullptr) {
    *story = std::move(s);
  }
  return raw;
}

Bytes ReutersFeed::Encode(const FeedStory& story) {
  std::string out = "ZCZC\n";
  out += "SER " + std::to_string(story.serial) + "\n";
  out += "CAT " + story.category + "\n";
  out += "TIC " + story.ticker + "\n";
  out += "HED " + story.headline + "\n";
  for (const std::string& ind : story.industries) {
    out += "IND " + ind + "\n";
  }
  out += "TXT " + story.body + "\n";
  out += "NNNN\n";
  return ToBytes(out);
}

Bytes ReutersFeed::NextRaw(FeedStory* story) {
  FeedStory s = gen_.Next();
  Bytes raw = Encode(s);
  if (story != nullptr) {
    *story = std::move(s);
  }
  return raw;
}

}  // namespace ibus
