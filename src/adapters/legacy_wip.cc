#include "src/adapters/legacy_wip.h"

#include <sstream>

namespace ibus {

// ---------------------------------------------------------------------------------
// GreenScreenWip
// ---------------------------------------------------------------------------------

GreenScreenWip::GreenScreenWip() = default;

void GreenScreenWip::SeedLot(const std::string& lot_id, const std::string& station,
                             int64_t quantity) {
  lots_[lot_id] = Lot{station, quantity};
}

void GreenScreenWip::SendKeys(const std::string& keys) {
  for (char c : keys) {
    if (c == '\n') {
      HandleEnter();
    } else {
      input_ += c;
    }
  }
}

void GreenScreenWip::HandleEnter() {
  std::string entry = input_;
  input_.clear();
  switch (screen_) {
    case Screen::kMainMenu:
      if (entry == "1") {
        screen_ = Screen::kLotStatusPrompt;
      } else if (entry == "2") {
        screen_ = Screen::kMovePromptLot;
      }
      // anything else: stay on the menu, like the real thing
      break;
    case Screen::kLotStatusPrompt: {
      auto it = lots_.find(entry);
      if (it == lots_.end()) {
        last_result_ = "LOT " + entry + " NOT ON FILE";
      } else {
        last_result_ = "LOT " + entry + " AT " + it->second.station + " QTY " +
                       std::to_string(it->second.quantity);
      }
      screen_ = Screen::kLotStatusResult;
      break;
    }
    case Screen::kLotStatusResult:
    case Screen::kMoveResult:
      screen_ = Screen::kMainMenu;  // any ENTER returns to the menu
      break;
    case Screen::kMovePromptLot:
      pending_lot_ = entry;
      screen_ = Screen::kMovePromptStation;
      break;
    case Screen::kMovePromptStation: {
      auto it = lots_.find(pending_lot_);
      if (it == lots_.end()) {
        last_result_ = "MOVE REJECTED - LOT " + pending_lot_ + " NOT ON FILE";
      } else if (entry.empty()) {
        last_result_ = "MOVE REJECTED - STATION REQUIRED";
      } else {
        it->second.station = entry;
        last_result_ = "MOVE OK - LOT " + pending_lot_ + " NOW AT " + entry;
      }
      pending_lot_.clear();
      screen_ = Screen::kMoveResult;
      break;
    }
  }
}

std::string GreenScreenWip::ReadScreen() const {
  std::string s = "+------------------------------------------+\n";
  s += "| ACME FAB  WORK-IN-PROCESS  SYSTEM  V2.3  |\n";
  s += "+------------------------------------------+\n";
  switch (screen_) {
    case Screen::kMainMenu:
      s += "  1. LOT STATUS INQUIRY\n";
      s += "  2. MOVE LOT\n";
      s += "  SELECT OPTION: " + input_ + "\n";
      break;
    case Screen::kLotStatusPrompt:
      s += "  LOT STATUS INQUIRY\n";
      s += "  ENTER LOT ID: " + input_ + "\n";
      break;
    case Screen::kLotStatusResult:
      s += "  " + last_result_ + "\n";
      s += "  PRESS ENTER TO CONTINUE\n";
      break;
    case Screen::kMovePromptLot:
      s += "  MOVE LOT\n";
      s += "  ENTER LOT ID: " + input_ + "\n";
      break;
    case Screen::kMovePromptStation:
      s += "  MOVE LOT " + pending_lot_ + "\n";
      s += "  ENTER TARGET STATION: " + input_ + "\n";
      break;
    case Screen::kMoveResult:
      s += "  " + last_result_ + "\n";
      s += "  PRESS ENTER TO CONTINUE\n";
      break;
  }
  return s;
}

// ---------------------------------------------------------------------------------
// WipAdapter
// ---------------------------------------------------------------------------------

Status RegisterWipTypes(TypeRegistry* registry) {
  TypeDescriptor move("wip_move", kRootTypeName);
  move.AddAttribute("lot", "string");
  move.AddAttribute("to_station", "string");
  IBUS_RETURN_IF_ERROR(registry->Define(move));

  TypeDescriptor status("wip_status", kRootTypeName);
  status.AddAttribute("lot", "string");
  status.AddAttribute("station", "string");
  status.AddAttribute("quantity", "i64");
  status.AddAttribute("on_file", "bool");
  return registry->Define(status);
}

Result<std::unique_ptr<WipAdapter>> WipAdapter::Create(BusClient* bus, TypeRegistry* registry,
                                                       GreenScreenWip* legacy) {
  IBUS_RETURN_IF_ERROR(RegisterWipTypes(registry));
  auto adapter = std::unique_ptr<WipAdapter>(new WipAdapter(bus, registry, legacy));

  auto sub = bus->SubscribeObjects(
      "fab.wip.move", [a = adapter.get()](const Message& m, const DataObjectPtr& move) {
        if (move != nullptr && move->type_name() == "wip_move") {
          a->HandleMove(m, move);
        }
      });
  if (!sub.ok()) {
    return sub.status();
  }
  adapter->move_sub_ = *sub;

  // RMI face: status(lot) answered by screen-scraping the terminal.
  auto service = std::make_shared<DynamicService>("wip_service");
  OperationDef status_op;
  status_op.name = "status";
  status_op.result_type = "wip_status";
  status_op.params = {ParamDef{"lot", "string"}};
  service->AddOperation(status_op,
                        [a = adapter.get()](const std::vector<Value>& args) -> Result<Value> {
                          if (args.size() != 1 || !args[0].is_string()) {
                            return InvalidArgument("status(lot)");
                          }
                          a->stats_.status_queries++;
                          auto obj = a->ScrapeStatus(args[0].AsString());
                          if (!obj.ok()) {
                            return obj.status();
                          }
                          return Value(obj.take());
                        });
  auto rmi = RmiServer::Create(bus, "svc.wip", service);
  if (!rmi.ok()) {
    return rmi.status();
  }
  adapter->rmi_ = rmi.take();
  return adapter;
}

WipAdapter::~WipAdapter() {
  if (move_sub_ != 0) {
    bus_->Unsubscribe(move_sub_);
  }
}

void WipAdapter::HandleMove(const Message& /*m*/, const DataObjectPtr& move) {
  const std::string lot = move->Get("lot").is_string() ? move->Get("lot").AsString() : "";
  const std::string to =
      move->Get("to_station").is_string() ? move->Get("to_station").AsString() : "";
  // Virtual user: menu option 2, lot id, target station.
  legacy_->SendKeys("2\n" + lot + "\n" + to + "\n");
  std::string screen = legacy_->ReadScreen();
  bool ok = screen.find("MOVE OK") != std::string::npos;
  legacy_->SendKeys("\n");  // back to the menu
  if (ok) {
    stats_.moves_executed++;
  } else {
    stats_.moves_failed++;
  }
  // Publish the post-move status so the rest of the factory reacts (event-driven).
  auto status = ScrapeStatus(lot);
  if (status.ok()) {
    bus_->PublishObject("fab.wip.status." + lot, **status);
  }
}

Result<DataObjectPtr> WipAdapter::ScrapeStatus(const std::string& lot_id) {
  legacy_->SendKeys("1\n" + lot_id + "\n");
  std::string screen = legacy_->ReadScreen();
  legacy_->SendKeys("\n");  // dismiss the result screen

  auto status = registry_->NewInstance("wip_status");
  if (!status.ok()) {
    return status.status();
  }
  (*status)->Set("lot", Value(lot_id)).ok();
  // Scrape "LOT <id> AT <station> QTY <n>" or "LOT <id> NOT ON FILE".
  std::istringstream lines(screen);
  std::string line;
  while (std::getline(lines, line)) {
    size_t at = line.find("LOT " + lot_id + " AT ");
    if (at != std::string::npos) {
      std::istringstream fields(line.substr(at));
      std::string kw_lot, id, kw_at, station, kw_qty;
      int64_t qty = 0;
      fields >> kw_lot >> id >> kw_at >> station >> kw_qty >> qty;
      (*status)->Set("station", Value(station)).ok();
      (*status)->Set("quantity", Value(qty)).ok();
      (*status)->Set("on_file", Value(true)).ok();
      return *status;
    }
    if (line.find("LOT " + lot_id + " NOT ON FILE") != std::string::npos) {
      (*status)->Set("on_file", Value(false)).ok();
      return *status;
    }
  }
  return DataLoss("wip adapter: could not scrape status screen");
}

}  // namespace ibus
