// News adapters (paper §5, Figure 3): "Two news adapters receive news stories from
// communication feeds connected to outside news services ... Each adapter parses the
// received data into an appropriate vendor-specific subtype of a common Story
// supertype, and publishes each story on the Information Bus under a subject
// describing the story's primary topic (for example, 'news.equity.gmc')."
#ifndef SRC_ADAPTERS_NEWS_ADAPTER_H_
#define SRC_ADAPTERS_NEWS_ADAPTER_H_

#include <string>

#include "src/adapters/feed_sim.h"
#include "src/bus/client.h"
#include "src/types/registry.h"

namespace ibus {

enum class NewsVendor { kDowJones, kReuters };

struct NewsAdapterStats {
  uint64_t published = 0;
  uint64_t parse_errors = 0;
};

class NewsAdapter {
 public:
  // Registers the Story type family: story (supertype), dj_story, rt_story.
  // Idempotent; every process hosting news components calls this.
  static Status RegisterStoryTypes(TypeRegistry* registry);

  NewsAdapter(BusClient* bus, TypeRegistry* registry, NewsVendor vendor)
      : bus_(bus), registry_(registry), vendor_(vendor) {}

  // Parses one raw vendor record into a typed story object (vendor-specific subtype).
  Result<DataObjectPtr> Parse(const Bytes& raw) const;

  // Parses and publishes under "news.<category>.<ticker>".
  Status Ingest(const Bytes& raw);

  static std::string SubjectFor(const DataObject& story);

  const NewsAdapterStats& stats() const { return stats_; }

 private:
  Result<DataObjectPtr> ParseDowJones(const std::string& raw) const;
  Result<DataObjectPtr> ParseReuters(const std::string& raw) const;

  BusClient* bus_;
  TypeRegistry* registry_;
  NewsVendor vendor_;
  NewsAdapterStats stats_;
};

}  // namespace ibus

#endif  // SRC_ADAPTERS_NEWS_ADAPTER_H_
