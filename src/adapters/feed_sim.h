// Synthetic news-feed generators standing in for the paper's Dow Jones and Reuters
// communication feeds (substitution documented in DESIGN.md). Each vendor emits a
// distinct raw wire format; the adapters must parse both into typed Story subtypes.
// Output is deterministic given the seed.
#ifndef SRC_ADAPTERS_FEED_SIM_H_
#define SRC_ADAPTERS_FEED_SIM_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"

namespace ibus {

// The logical content of a generated story (used by tests to check parsing).
struct FeedStory {
  uint64_t serial = 0;
  std::string category;  // "equity", "bond", "commodity"
  std::string ticker;    // "gmc", "ibm", ...
  std::string headline;
  std::vector<std::string> industries;
  std::string body;
};

// Common synthetic story generator.
class StoryGenerator {
 public:
  explicit StoryGenerator(uint64_t seed) : rng_(seed) {}
  FeedStory Next();

 private:
  Rng rng_;
  uint64_t serial_ = 0;
};

// "DJ" vendor: single-line pipe-delimited records:
//   DJ|<serial>|<category>|<ticker>|<headline>|<ind1,ind2>|<body>
class DowJonesFeed {
 public:
  explicit DowJonesFeed(uint64_t seed) : gen_(seed) {}
  // Returns the raw record and (via out-param) the story it encodes.
  Bytes NextRaw(FeedStory* story = nullptr);
  // Decoding lives in NewsAdapter::ParseDowJones: vendor feeds are one-way sources,
  // so the encode/decode pair intentionally spans two modules.
  static Bytes Encode(const FeedStory& story);  // buslint: allow(decode-pair)

 private:
  StoryGenerator gen_;
};

// "RT" vendor: multi-line tagged records:
//   ZCZC\nSER <serial>\nCAT <category>\nTIC <ticker>\nHED <headline>\n
//   IND <ind1>\nIND <ind2>\nTXT <body>\nNNNN\n
class ReutersFeed {
 public:
  explicit ReutersFeed(uint64_t seed) : gen_(seed) {}
  Bytes NextRaw(FeedStory* story = nullptr);
  // Decoded by NewsAdapter::ParseReuters (see above).
  static Bytes Encode(const FeedStory& story);  // buslint: allow(decode-pair)

 private:
  StoryGenerator gen_;
};

}  // namespace ibus

#endif  // SRC_ADAPTERS_FEED_SIM_H_
