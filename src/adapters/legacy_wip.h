// The legacy Work-In-Process system and its adapter (paper §4): "the existing WIP
// software is written in Cobol, and there is only a primitive terminal interface. The
// adapter must act as a virtual user to the terminal interface."
//
// GreenScreenWip simulates that legacy application: the ONLY interface is keystrokes
// in and a 24-line screen out — no API, no data access. WipAdapter drives it like a
// human operator: navigating menus, filling forms, and screen-scraping results, while
// presenting modern bus semantics (typed objects, subjects, RMI) to the rest of the
// system.
#ifndef SRC_ADAPTERS_LEGACY_WIP_H_
#define SRC_ADAPTERS_LEGACY_WIP_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/client.h"
#include "src/rmi/server.h"
#include "src/types/registry.h"

namespace ibus {

// The untouchable legacy system. 1970s discipline: fixed screens, numbered menus.
class GreenScreenWip {
 public:
  GreenScreenWip();

  // Terminal-only interface.
  void SendKeys(const std::string& keys);  // '\n' is ENTER
  std::string ReadScreen() const;          // the full current screen text

  // Factory-floor backdoor used only by tests/examples to seed inventory (stands in
  // for decades of production data).
  void SeedLot(const std::string& lot_id, const std::string& station, int64_t quantity);
  size_t lot_count() const { return lots_.size(); }

 private:
  enum class Screen { kMainMenu, kLotStatusPrompt, kLotStatusResult, kMovePromptLot,
                      kMovePromptStation, kMoveResult };

  struct Lot {
    std::string station;
    int64_t quantity = 0;
  };

  void HandleEnter();

  Screen screen_ = Screen::kMainMenu;
  std::string input_;          // keys typed since the last ENTER
  std::string pending_lot_;    // lot id captured on multi-step forms
  std::string last_result_;    // message shown on result screens
  std::map<std::string, Lot> lots_;
};

// Bus-facing object types published/consumed by the adapter.
Status RegisterWipTypes(TypeRegistry* registry);

struct WipAdapterStats {
  uint64_t moves_executed = 0;
  uint64_t moves_failed = 0;
  uint64_t status_queries = 0;
};

class WipAdapter {
 public:
  // Subscribes to "fab.wip.move" (wip_move objects) and serves "svc.wip" over RMI
  // with operation status(lot) -> wip_status.
  static Result<std::unique_ptr<WipAdapter>> Create(BusClient* bus, TypeRegistry* registry,
                                                    GreenScreenWip* legacy);
  ~WipAdapter();
  WipAdapter(const WipAdapter&) = delete;
  WipAdapter& operator=(const WipAdapter&) = delete;

  const WipAdapterStats& stats() const { return stats_; }

 private:
  WipAdapter(BusClient* bus, TypeRegistry* registry, GreenScreenWip* legacy)
      : bus_(bus), registry_(registry), legacy_(legacy) {}

  void HandleMove(const Message& m, const DataObjectPtr& move);
  // Drives the terminal to answer "where is this lot?"; returns a wip_status object.
  Result<DataObjectPtr> ScrapeStatus(const std::string& lot_id);

  BusClient* bus_;
  TypeRegistry* registry_;
  GreenScreenWip* legacy_;
  uint64_t move_sub_ = 0;
  std::unique_ptr<RmiServer> rmi_;
  WipAdapterStats stats_;
};

}  // namespace ibus

#endif  // SRC_ADAPTERS_LEGACY_WIP_H_
