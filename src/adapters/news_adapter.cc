#include "src/adapters/news_adapter.h"

#include <sstream>

namespace ibus {

Status NewsAdapter::RegisterStoryTypes(TypeRegistry* registry) {
  TypeDescriptor story("story", kRootTypeName);
  story.AddAttribute("serial", "i64");
  story.AddAttribute("category", "string");
  story.AddAttribute("ticker", "string");
  story.AddAttribute("headline", "string");
  story.AddAttribute("industries", "list");
  story.AddAttribute("body", "string");
  IBUS_RETURN_IF_ERROR(registry->Define(story));

  TypeDescriptor dj("dj_story", "story");
  dj.AddAttribute("dj_wire_code", "string");
  IBUS_RETURN_IF_ERROR(registry->Define(dj));

  TypeDescriptor rt("rt_story", "story");
  rt.AddAttribute("rt_service_level", "string");
  return registry->Define(rt);
}

std::string NewsAdapter::SubjectFor(const DataObject& story) {
  return "news." + story.Get("category").AsString() + "." + story.Get("ticker").AsString();
}

Result<DataObjectPtr> NewsAdapter::Parse(const Bytes& raw) const {
  std::string text = ToString(raw);
  return vendor_ == NewsVendor::kDowJones ? ParseDowJones(text) : ParseReuters(text);
}

Result<DataObjectPtr> NewsAdapter::ParseDowJones(const std::string& raw) const {
  // DJ|serial|category|ticker|headline|ind1,ind2|body
  std::vector<std::string> fields;
  size_t start = 0;
  while (fields.size() < 6) {
    size_t bar = raw.find('|', start);
    if (bar == std::string::npos) {
      return DataLoss("dj: short record");
    }
    fields.push_back(raw.substr(start, bar - start));
    start = bar + 1;
  }
  fields.push_back(raw.substr(start));  // body (may contain anything but '|')
  if (fields[0] != "DJ") {
    return DataLoss("dj: bad magic '" + fields[0] + "'");
  }
  auto obj = registry_->NewInstance("dj_story");
  if (!obj.ok()) {
    return obj.status();
  }
  char* end = nullptr;
  long long serial = std::strtoll(fields[1].c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return DataLoss("dj: bad serial");
  }
  (*obj)->Set("serial", Value(static_cast<int64_t>(serial))).ok();
  (*obj)->Set("category", Value(fields[2])).ok();
  (*obj)->Set("ticker", Value(fields[3])).ok();
  (*obj)->Set("headline", Value(fields[4])).ok();
  Value::List industries;
  std::stringstream inds(fields[5]);
  std::string ind;
  while (std::getline(inds, ind, ',')) {
    if (!ind.empty()) {
      industries.push_back(Value(ind));
    }
  }
  (*obj)->Set("industries", Value(std::move(industries))).ok();
  (*obj)->Set("body", Value(fields[6])).ok();
  (*obj)->Set("dj_wire_code", Value("DJ-" + fields[1])).ok();
  return *obj;
}

Result<DataObjectPtr> NewsAdapter::ParseReuters(const std::string& raw) const {
  std::stringstream in(raw);
  std::string line;
  if (!std::getline(in, line) || line != "ZCZC") {
    return DataLoss("rt: missing start-of-message");
  }
  auto obj = registry_->NewInstance("rt_story");
  if (!obj.ok()) {
    return obj.status();
  }
  Value::List industries;
  bool terminated = false;
  while (std::getline(in, line)) {
    if (line == "NNNN") {
      terminated = true;
      break;
    }
    if (line.size() < 4) {
      return DataLoss("rt: malformed line '" + line + "'");
    }
    std::string tag = line.substr(0, 3);
    std::string value = line.substr(4);
    if (tag == "SER") {
      char* end = nullptr;
      long long serial = std::strtoll(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return DataLoss("rt: bad serial");
      }
      (*obj)->Set("serial", Value(static_cast<int64_t>(serial))).ok();
    } else if (tag == "CAT") {
      (*obj)->Set("category", Value(value)).ok();
    } else if (tag == "TIC") {
      (*obj)->Set("ticker", Value(value)).ok();
    } else if (tag == "HED") {
      (*obj)->Set("headline", Value(value)).ok();
    } else if (tag == "IND") {
      industries.push_back(Value(value));
    } else if (tag == "TXT") {
      (*obj)->Set("body", Value(value)).ok();
    }  // unknown tags are skipped: feeds add fields over time (R2 in the small)
  }
  if (!terminated) {
    return DataLoss("rt: missing end-of-message");
  }
  (*obj)->Set("industries", Value(std::move(industries))).ok();
  (*obj)->Set("rt_service_level", Value(std::string("standard"))).ok();
  return *obj;
}

Status NewsAdapter::Ingest(const Bytes& raw) {
  auto story = Parse(raw);
  if (!story.ok()) {
    stats_.parse_errors++;
    return story.status();
  }
  if ((*story)->Get("category").is_null() || (*story)->Get("ticker").is_null()) {
    stats_.parse_errors++;
    return DataLoss("news adapter: story missing routing fields");
  }
  Status s = bus_->PublishObject(SubjectFor(**story), **story);
  if (s.ok()) {
    stats_.published++;
  }
  return s;
}

}  // namespace ibus
