// Subject-Based Addressing (paper §3, P4). Subjects are hierarchical dot-separated
// strings ("fab5.cc.litho8.thick", "news.equity.gmc"). Consumers may subscribe with
// patterns: '*' matches exactly one element, '>' matches one or more trailing
// elements. The bus core attaches no meaning to subjects beyond matching (P1).
#ifndef SRC_SUBJECT_SUBJECT_H_
#define SRC_SUBJECT_SUBJECT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ibus {

// Splits "a.b.c" into {"a","b","c"}. No validation.
std::vector<std::string> SplitSubject(std::string_view subject);

// A concrete subject must have 1+ non-empty elements without wildcards or whitespace.
// Elements starting with '_' are reserved for bus-internal protocols but valid.
Status ValidateSubject(std::string_view subject);

// A pattern additionally allows '*' elements anywhere and '>' as the final element.
Status ValidatePattern(std::string_view pattern);

// True when `pattern` matches the concrete `subject`.
bool SubjectMatches(std::string_view pattern, std::string_view subject);

// True when the set of subjects matched by `narrow` is a subset of those matched by
// `wide` (used by routers to decide whether a remote subscription is already covered).
bool PatternCovers(std::string_view wide, std::string_view narrow);

constexpr char kSubjectSeparator = '.';
constexpr char kWildcardOne = '*';
constexpr char kWildcardRest = '>';

}  // namespace ibus

#endif  // SRC_SUBJECT_SUBJECT_H_
