// Subject-Based Addressing (paper §3, P4). Subjects are hierarchical dot-separated
// strings ("fab5.cc.litho8.thick", "news.equity.gmc"). Consumers may subscribe with
// patterns: '*' matches exactly one element, '>' matches one or more trailing
// elements. The bus core attaches no meaning to subjects beyond matching (P1).
#ifndef SRC_SUBJECT_SUBJECT_H_
#define SRC_SUBJECT_SUBJECT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ibus {

// Splits "a.b.c" into {"a","b","c"}. No validation.
std::vector<std::string> SplitSubject(std::string_view subject);

// The "_ibus" root element is reserved for bus-internal protocols (tracing spans,
// certified-delivery acks, stats snapshots, elections, subscription gossip). This
// header is the single home for the reserved literals; everything else must refer to
// these constants (enforced by the buslint `reserved-subject` rule).
inline constexpr std::string_view kReservedElement = "_ibus";  // buslint: allow(reserved-subject)
inline constexpr char kReservedPrefix[] = "_ibus.";            // buslint: allow(reserved-subject)
inline constexpr char kReservedTracePrefix[] = "_ibus.trace.";  // buslint: allow(reserved-subject)
inline constexpr char kReservedCertPrefix[] = "_ibus.cert.";    // buslint: allow(reserved-subject)
inline constexpr char kReservedElectPrefix[] = "_ibus.elect.";  // buslint: allow(reserved-subject)
inline constexpr char kReservedStatsPrefix[] = "_ibus.stats.";  // buslint: allow(reserved-subject)
// Per-node busstat time-series records ("_ibus.stats.ts.<node>"); a sub-namespace of
// the stats prefix so legacy "_ibus.stats.>" subscribers see (and version-skip) them.
inline constexpr char kReservedStatsTsPrefix[] = "_ibus.stats.ts.";  // buslint: allow(reserved-subject)
inline constexpr char kReservedHealthPrefix[] = "_ibus.health.";  // buslint: allow(reserved-subject)
inline constexpr char kReservedSubPrefix[] = "_ibus.sub.";      // buslint: allow(reserved-subject)

// True when the subject or pattern lives in the reserved namespace (its first
// element is exactly "_ibus"). "_ibusx.foo" is NOT reserved.
bool IsReservedSubject(std::string_view subject_or_pattern);

// True when the subject belongs to the observability plane itself (trace spans,
// stats snapshots, health beacons). The daemon classifies every byte it injects
// with this predicate to maintain the telemetry self-overhead counters — the
// plane measures its own cost (see docs/TELEMETRY.md, "Sampling & sketches").
bool IsObservabilitySubject(std::string_view subject);

// Who is publishing: application code goes through the default kApplication scope
// and is rejected from the reserved "_ibus." namespace; bus-internal components
// (BusClient::PublishInternal) opt in with kInternal.
enum class SubjectScope { kApplication, kInternal };

// A concrete subject must have 1+ non-empty elements without wildcards or whitespace.
// Under kApplication (the default) subjects in the reserved "_ibus." namespace are
// rejected; other '_'-prefixed elements stay valid for application use.
Status ValidateSubject(std::string_view subject,
                       SubjectScope scope = SubjectScope::kApplication);

// A pattern additionally allows '*' elements anywhere and '>' as the final element.
Status ValidatePattern(std::string_view pattern);

// True when `pattern` matches the concrete `subject`.
bool SubjectMatches(std::string_view pattern, std::string_view subject);

// True when the set of subjects matched by `narrow` is a subset of those matched by
// `wide` (used by routers to decide whether a remote subscription is already covered).
bool PatternCovers(std::string_view wide, std::string_view narrow);

constexpr char kSubjectSeparator = '.';
constexpr char kWildcardOne = '*';
constexpr char kWildcardRest = '>';

}  // namespace ibus

#endif  // SRC_SUBJECT_SUBJECT_H_
