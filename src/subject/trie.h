// Subscription trie: maps subject patterns to subscriber ids and answers
// "which subscriptions match this subject?" in time proportional to the subject's
// depth rather than the number of subscriptions. This is what makes throughput
// insensitive to the number of subjects (paper Appendix, Figure 8) and what backs the
// §6 claim that subject-based addressing scales better than attribute qualification.
#ifndef SRC_SUBJECT_TRIE_H_
#define SRC_SUBJECT_TRIE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/subject/subject.h"

namespace ibus {

class SubjectTrie {
 public:
  SubjectTrie() : root_(std::make_unique<Node>()) {}

  // Registers `id` under `pattern` (validated). The same id may appear under several
  // patterns; each (pattern, id) pair is tracked separately.
  Status Insert(std::string_view pattern, uint64_t id);

  // Removes one (pattern, id) registration. Returns true if it existed.
  bool Remove(std::string_view pattern, uint64_t id);

  // Appends the ids of all registrations whose pattern matches `subject`.
  void Match(std::string_view subject, std::vector<uint64_t>* out) const;
  std::vector<uint64_t> Match(std::string_view subject) const {
    std::vector<uint64_t> out;
    Match(subject, &out);
    return out;
  }

  // True if any registration matches `subject` (early-exit form).
  bool MatchesAny(std::string_view subject) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::map<std::string, std::unique_ptr<Node>, std::less<>> children;
    std::unique_ptr<Node> star;          // '*' branch
    std::vector<uint64_t> terminal_ids;  // patterns ending exactly here
    std::vector<uint64_t> rest_ids;      // patterns ending in '>' at this depth

    bool Unused() const {
      return children.empty() && star == nullptr && terminal_ids.empty() && rest_ids.empty();
    }
  };

  static void MatchWalk(const Node* node, const std::vector<std::string>& elems, size_t depth,
                        std::vector<uint64_t>* out);
  static bool AnyWalk(const Node* node, const std::vector<std::string>& elems, size_t depth);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace ibus

#endif  // SRC_SUBJECT_TRIE_H_
