#include "src/subject/subject.h"

namespace ibus {

std::vector<std::string> SplitSubject(std::string_view subject) {  // hotlint: allow(hot-by-value) -- split result: NRVO, caller owns the elements
  std::vector<std::string> parts;
  size_t seps = 0;
  for (char c : subject) {
    seps += (c == kSubjectSeparator) ? 1 : 0;
  }
  parts.reserve(seps + 1);
  size_t start = 0;
  while (true) {
    size_t dot = subject.find(kSubjectSeparator, start);
    if (dot == std::string_view::npos) {
      parts.emplace_back(subject.substr(start));
      break;
    }
    parts.emplace_back(subject.substr(start, dot - start));
    start = dot + 1;
  }
  return parts;
}

namespace {

bool ElementHasBadChar(std::string_view e) {
  for (char c : e) {
    if (c == ' ' || c == '\t' || c == '\n' || c == kSubjectSeparator) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool IsReservedSubject(std::string_view subject_or_pattern) {
  if (subject_or_pattern == kReservedElement) {
    return true;
  }
  return subject_or_pattern.substr(0, sizeof(kReservedPrefix) - 1) == kReservedPrefix;
}

bool IsObservabilitySubject(std::string_view subject) {
  // Prefix compares only — this runs at the daemon's publish choke points.
  return subject.substr(0, sizeof(kReservedTracePrefix) - 1) == kReservedTracePrefix ||
         subject.substr(0, sizeof(kReservedStatsPrefix) - 1) == kReservedStatsPrefix ||
         subject.substr(0, sizeof(kReservedHealthPrefix) - 1) == kReservedHealthPrefix;
}

Status ValidateSubject(std::string_view subject, SubjectScope scope) {
  if (subject.empty()) {
    return InvalidArgument("subject: empty");
  }
  if (scope == SubjectScope::kApplication && IsReservedSubject(subject)) {
    return InvalidArgument("subject: '" + std::string(subject) +  // hotlint: allow(hot-string) -- invalid-subject error path
                           "' is in the reserved bus-internal namespace");
  }
  for (const std::string& e : SplitSubject(subject)) {
    if (e.empty()) {
      return InvalidArgument("subject: empty element in '" + std::string(subject) + "'");  // hotlint: allow(hot-string) -- invalid-subject error path
    }
    if (e.find(kWildcardOne) != std::string::npos || e.find(kWildcardRest) != std::string::npos) {
      return InvalidArgument("subject: wildcard in concrete subject '" + std::string(subject) +  // hotlint: allow(hot-string) -- invalid-subject error path
                             "'");
    }
    if (ElementHasBadChar(e)) {
      return InvalidArgument("subject: illegal character in '" + std::string(subject) + "'");  // hotlint: allow(hot-string) -- invalid-subject error path
    }
  }
  return OkStatus();
}

Status ValidatePattern(std::string_view pattern) {
  if (pattern.empty()) {
    return InvalidArgument("pattern: empty");
  }
  std::vector<std::string> parts = SplitSubject(pattern);
  for (size_t i = 0; i < parts.size(); ++i) {
    const std::string& e = parts[i];
    if (e.empty()) {
      return InvalidArgument("pattern: empty element in '" + std::string(pattern) + "'");  // hotlint: allow(hot-string) -- invalid-pattern error path
    }
    if (ElementHasBadChar(e)) {
      return InvalidArgument("pattern: illegal character in '" + std::string(pattern) + "'");  // hotlint: allow(hot-string) -- invalid-pattern error path
    }
    if (e == std::string(1, kWildcardRest)) {  // hotlint: allow(hot-string) -- invalid-pattern error path
      if (i + 1 != parts.size()) {
        return InvalidArgument("pattern: '>' must be the final element in '" +  // hotlint: allow(hot-string) -- invalid-pattern error path
                               std::string(pattern) + "'");  // hotlint: allow(hot-string) -- invalid-pattern error path
      }
      continue;
    }
    if (e.size() > 1 &&
        (e.find(kWildcardOne) != std::string::npos || e.find(kWildcardRest) != std::string::npos)) {
      return InvalidArgument("pattern: wildcard must be a whole element in '" +  // hotlint: allow(hot-string) -- invalid-pattern error path
                             std::string(pattern) + "'");  // hotlint: allow(hot-string) -- invalid-pattern error path
    }
  }
  return OkStatus();
}

bool SubjectMatches(std::string_view pattern, std::string_view subject) {
  std::vector<std::string> p = SplitSubject(pattern);
  std::vector<std::string> s = SplitSubject(subject);
  size_t i = 0;
  for (; i < p.size(); ++i) {
    if (p[i].size() == 1 && p[i][0] == kWildcardRest) {
      return i < s.size();  // '>' needs at least one remaining element
    }
    if (i >= s.size()) {
      return false;
    }
    if (p[i].size() == 1 && p[i][0] == kWildcardOne) {
      continue;
    }
    if (p[i] != s[i]) {
      return false;
    }
  }
  return i == s.size();
}

bool PatternCovers(std::string_view wide, std::string_view narrow) {
  std::vector<std::string> w = SplitSubject(wide);
  std::vector<std::string> n = SplitSubject(narrow);
  size_t i = 0;
  for (; i < w.size(); ++i) {
    if (w[i].size() == 1 && w[i][0] == kWildcardRest) {
      // '>' covers any non-empty remainder, including a remainder that itself ends
      // in '>' or contains '*'.
      return i < n.size();
    }
    if (i >= n.size()) {
      return false;
    }
    bool n_rest = n[i].size() == 1 && n[i][0] == kWildcardRest;
    if (n_rest) {
      return false;  // narrow matches unboundedly many tails, wide is bounded here
    }
    if (w[i].size() == 1 && w[i][0] == kWildcardOne) {
      continue;  // '*' covers any single element, including '*'
    }
    bool n_one = n[i].size() == 1 && n[i][0] == kWildcardOne;
    if (n_one || w[i] != n[i]) {
      return false;
    }
  }
  return i == n.size();
}

}  // namespace ibus
