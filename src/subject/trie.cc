#include "src/subject/trie.h"

#include <algorithm>

namespace ibus {

Status SubjectTrie::Insert(std::string_view pattern, uint64_t id) {  // hotlint: cold -- subscription-table mutation: runs per subscribe, not per message
  IBUS_RETURN_IF_ERROR(ValidatePattern(pattern));
  std::vector<std::string> elems = SplitSubject(pattern);
  Node* node = root_.get();
  for (size_t i = 0; i < elems.size(); ++i) {
    const std::string& e = elems[i];
    if (e.size() == 1 && e[0] == kWildcardRest) {
      node->rest_ids.push_back(id);
      ++size_;
      return OkStatus();
    }
    if (e.size() == 1 && e[0] == kWildcardOne) {
      if (node->star == nullptr) {
        node->star = std::make_unique<Node>();
      }
      node = node->star.get();
      continue;
    }
    auto it = node->children.find(e);
    if (it == node->children.end()) {
      it = node->children.emplace(e, std::make_unique<Node>()).first;
    }
    node = it->second.get();
  }
  node->terminal_ids.push_back(id);
  ++size_;
  return OkStatus();
}

bool SubjectTrie::Remove(std::string_view pattern, uint64_t id) {  // hotlint: cold -- subscription-table mutation: runs per unsubscribe, not per message
  if (!ValidatePattern(pattern).ok()) {
    return false;
  }
  std::vector<std::string> elems = SplitSubject(pattern);
  // Walk down, remembering the path so empty nodes can be pruned on the way back.
  std::vector<std::pair<Node*, std::string>> path;  // (parent, edge taken)
  Node* node = root_.get();
  std::vector<uint64_t>* bucket = nullptr;
  for (size_t i = 0; i < elems.size(); ++i) {
    const std::string& e = elems[i];
    if (e.size() == 1 && e[0] == kWildcardRest) {
      bucket = &node->rest_ids;
      break;
    }
    if (e.size() == 1 && e[0] == kWildcardOne) {
      if (node->star == nullptr) {
        return false;
      }
      path.emplace_back(node, "*");
      node = node->star.get();
      continue;
    }
    auto it = node->children.find(e);
    if (it == node->children.end()) {
      return false;
    }
    path.emplace_back(node, e);
    node = it->second.get();
  }
  if (bucket == nullptr) {
    bucket = &node->terminal_ids;
  }
  auto it = std::find(bucket->begin(), bucket->end(), id);
  if (it == bucket->end()) {
    return false;
  }
  bucket->erase(it);
  --size_;
  // Prune now-empty nodes bottom-up.
  while (!path.empty() && node->Unused()) {
    auto [parent, edge] = path.back();
    path.pop_back();
    if (edge == "*") {
      parent->star.reset();
    } else {
      parent->children.erase(edge);
    }
    node = parent;
  }
  return true;
}

void SubjectTrie::MatchWalk(const Node* node, const std::vector<std::string>& elems, size_t depth,  // hotlint: allow(hot-recursion) -- descends one trie level per subject element: bounded by subject depth
                            std::vector<uint64_t>* out) {
  // '>' at this node matches if at least one element remains.
  if (depth < elems.size()) {
    out->insert(out->end(), node->rest_ids.begin(), node->rest_ids.end());  // hotlint: allow(hot-container-growth) -- match-set append, bounded by registered subscriptions
  }
  if (depth == elems.size()) {
    out->insert(out->end(), node->terminal_ids.begin(), node->terminal_ids.end());  // hotlint: allow(hot-container-growth) -- match-set append, bounded by registered subscriptions
    return;
  }
  auto it = node->children.find(elems[depth]);
  if (it != node->children.end()) {
    MatchWalk(it->second.get(), elems, depth + 1, out);
  }
  if (node->star != nullptr) {
    MatchWalk(node->star.get(), elems, depth + 1, out);
  }
}

void SubjectTrie::Match(std::string_view subject, std::vector<uint64_t>* out) const {
  std::vector<std::string> elems = SplitSubject(subject);
  MatchWalk(root_.get(), elems, 0, out);
}

bool SubjectTrie::AnyWalk(const Node* node, const std::vector<std::string>& elems, size_t depth) {
  if (depth < elems.size() && !node->rest_ids.empty()) {
    return true;
  }
  if (depth == elems.size()) {
    return !node->terminal_ids.empty();
  }
  auto it = node->children.find(elems[depth]);
  if (it != node->children.end() && AnyWalk(it->second.get(), elems, depth + 1)) {
    return true;
  }
  return node->star != nullptr && AnyWalk(node->star.get(), elems, depth + 1);
}

bool SubjectTrie::MatchesAny(std::string_view subject) const {
  std::vector<std::string> elems = SplitSubject(subject);
  return AnyWalk(root_.get(), elems, 0);
}

}  // namespace ibus
