#include "src/baseline/attribute_matcher.h"

#include <algorithm>

namespace ibus {

bool AttributeQuery::Matches(const DataObject& obj) const {
  for (const Cond& cond : conds) {
    const Value& v = obj.Get(cond.attribute);
    switch (cond.op) {
      case Op::kEq:
        if (!(v == cond.value)) {
          return false;
        }
        break;
      case Op::kNe:
        if (v == cond.value) {
          return false;
        }
        break;
      case Op::kLt:
        if (!(v.is_number() && cond.value.is_number() &&
              v.NumberAsF64() < cond.value.NumberAsF64())) {
          return false;
        }
        break;
      case Op::kGt:
        if (!(v.is_number() && cond.value.is_number() &&
              v.NumberAsF64() > cond.value.NumberAsF64())) {
          return false;
        }
        break;
      case Op::kContains:
        if (!v.is_string() || !cond.value.is_string() ||
            v.AsString().find(cond.value.AsString()) == std::string::npos) {
          return false;
        }
        break;
    }
  }
  return true;
}

bool AttributeMatcher::Remove(uint64_t id) {
  auto it = std::find_if(queries_.begin(), queries_.end(),
                         [id](const auto& entry) { return entry.first == id; });
  if (it == queries_.end()) {
    return false;
  }
  queries_.erase(it);
  return true;
}

std::vector<uint64_t> AttributeMatcher::Match(const DataObject& obj) const {
  std::vector<uint64_t> out;
  for (const auto& [id, query] : queries_) {
    if (query.Matches(obj)) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace ibus
