#include "src/baseline/central_broker.h"

#include "src/wire/wire.h"

namespace ibus {

namespace {
constexpr uint8_t kBrokerSubscribe = 60;
constexpr uint8_t kBrokerPublish = 61;
constexpr uint8_t kBrokerDeliver = 62;
}  // namespace

Result<std::unique_ptr<CentralBroker>> CentralBroker::Start(Network* net, HostId host,
                                                            Port port) {
  auto broker = std::unique_ptr<CentralBroker>(new CentralBroker(net));
  auto socket = net->OpenSocket(
      host, port, [b = broker.get()](const Datagram& d) { b->HandleDatagram(d); });
  if (!socket.ok()) {
    return socket.status();
  }
  broker->socket_ = socket.take();
  return broker;
}

void CentralBroker::HandleDatagram(const Datagram& d) {
  auto frame = ParseFrame(d.payload);
  if (!frame.ok()) {
    return;
  }
  WireReader r(frame->payload);
  if (frame->frame_type == kBrokerSubscribe) {
    auto pattern = r.ReadString();
    if (!pattern.ok()) {
      return;
    }
    uint64_t id = next_sub_++;
    subscribers_[id] = Subscriber{d.src_host, d.src_port};
    trie_.Insert(*pattern, id);
    return;
  }
  if (frame->frame_type == kBrokerPublish) {
    auto subject = r.ReadString();
    auto payload = r.ReadBytes();
    if (!subject.ok() || !payload.ok()) {
      return;
    }
    stats_.publishes++;
    WireWriter out;
    out.PutString(*subject);
    out.PutBytes(*payload);
    Bytes deliver = FrameMessage(kBrokerDeliver, out.Take());
    // One unicast per matching subscriber: the fan-out cost lives on the broker's
    // uplink (this is the whole point of the comparison).
    for (uint64_t id : trie_.Match(*subject)) {
      auto it = subscribers_.find(id);
      if (it != subscribers_.end()) {
        socket_->SendTo(it->second.host, it->second.port, deliver);
        stats_.deliveries++;
      }
    }
  }
}

Result<std::unique_ptr<BrokerClient>> BrokerClient::Connect(Network* net, HostId host,
                                                            HostId broker_host,
                                                            Port broker_port) {
  auto client =
      std::unique_ptr<BrokerClient>(new BrokerClient(net, broker_host, broker_port));
  auto socket = net->OpenSocket(
      host, 0, [c = client.get()](const Datagram& d) { c->HandleDatagram(d); });
  if (!socket.ok()) {
    return socket.status();
  }
  client->socket_ = socket.take();
  return client;
}

Status BrokerClient::Subscribe(const std::string& pattern) {
  WireWriter w;
  w.PutString(pattern);
  return socket_->SendTo(broker_host_, broker_port_, FrameMessage(kBrokerSubscribe, w.Take()));
}

Status BrokerClient::Publish(const std::string& subject, const Bytes& payload) {
  WireWriter w;
  w.PutString(subject);
  w.PutBytes(payload);
  return socket_->SendTo(broker_host_, broker_port_, FrameMessage(kBrokerPublish, w.Take()));
}

void BrokerClient::HandleDatagram(const Datagram& d) {
  auto frame = ParseFrame(d.payload);
  if (!frame.ok() || frame->frame_type != kBrokerDeliver) {
    return;
  }
  WireReader r(frame->payload);
  auto subject = r.ReadString();
  auto payload = r.ReadBytes();
  if (!subject.ok() || !payload.ok()) {
    return;
  }
  received_++;
  if (handler_) {
    handler_(*subject, *payload);
  }
}

}  // namespace ibus
