// Centralized-broker baseline (paper §6, the Zephyr comparison): a single location
// server holds the subscription table; publishers unicast each message to the broker,
// which unicasts a copy to every matching subscriber ("subscription multicasting").
// Contrast with the Information Bus: two unicast hops and per-subscriber copies on
// the wire versus one hardware broadcast — "this mechanism is inefficient if the
// number of interested clients is very large". The ablate_broker bench quantifies it.
//
// Built directly on simulator sockets (it bypasses the bus daemons entirely).
#ifndef SRC_BASELINE_CENTRAL_BROKER_H_
#define SRC_BASELINE_CENTRAL_BROKER_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/sim/network.h"
#include "src/subject/trie.h"

namespace ibus {

struct BrokerStats {
  uint64_t publishes = 0;
  uint64_t deliveries = 0;
};

class CentralBroker {
 public:
  static Result<std::unique_ptr<CentralBroker>> Start(Network* net, HostId host, Port port);

  HostId host() const { return socket_->host(); }
  Port port() const { return socket_->port(); }
  const BrokerStats& stats() const { return stats_; }

 private:
  explicit CentralBroker(Network* net) : net_(net) {}
  void HandleDatagram(const Datagram& d);

  Network* net_;
  std::unique_ptr<UdpSocket> socket_;
  struct Subscriber {
    HostId host;
    Port port;
  };
  uint64_t next_sub_ = 1;
  std::unordered_map<uint64_t, Subscriber> subscribers_;
  SubjectTrie trie_;
  BrokerStats stats_;
};

class BrokerClient {
 public:
  using Handler = std::function<void(const std::string& subject, const Bytes& payload)>;

  static Result<std::unique_ptr<BrokerClient>> Connect(Network* net, HostId host,
                                                       HostId broker_host, Port broker_port);

  Status Subscribe(const std::string& pattern);
  Status Publish(const std::string& subject, const Bytes& payload);
  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  uint64_t received() const { return received_; }

 private:
  BrokerClient(Network* net, HostId broker_host, Port broker_port)
      : net_(net), broker_host_(broker_host), broker_port_(broker_port) {}
  void HandleDatagram(const Datagram& d);

  Network* net_;
  HostId broker_host_;
  Port broker_port_;
  std::unique_ptr<UdpSocket> socket_;
  Handler handler_;
  uint64_t received_ = 0;
};

}  // namespace ibus

#endif  // SRC_BASELINE_CENTRAL_BROKER_H_
