// Linda-style attribute qualification baseline (paper §6): "Linda accesses data based
// on attribute qualification, just as relational databases do. Though this access
// mechanism is more powerful than subject-based addressing, we believe that it is more
// general than most applications require ... subject-based addressing scales more
// easily, and has better performance."
//
// Each subscription is a conjunction of attribute predicates; matching a published
// object means evaluating every registered query against its attributes — O(queries)
// per message versus the subject trie's O(subject depth). The ablate_matching bench
// measures the gap.
#ifndef SRC_BASELINE_ATTRIBUTE_MATCHER_H_
#define SRC_BASELINE_ATTRIBUTE_MATCHER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/types/data_object.h"
#include "src/types/value.h"

namespace ibus {

struct AttributeQuery {
  enum class Op { kEq, kNe, kLt, kGt, kContains /* substring on strings */ };

  struct Cond {
    std::string attribute;
    Op op = Op::kEq;
    Value value;
  };

  std::vector<Cond> conds;  // ANDed; empty matches everything

  AttributeQuery& Where(std::string attribute, Op op, Value value) {
    conds.push_back(Cond{std::move(attribute), op, std::move(value)});
    return *this;
  }

  bool Matches(const DataObject& obj) const;
};

class AttributeMatcher {
 public:
  void Insert(uint64_t id, AttributeQuery query) {
    queries_.emplace_back(id, std::move(query));
  }
  bool Remove(uint64_t id);

  // Evaluates every registered query against the object (the inherent cost of
  // attribute qualification).
  std::vector<uint64_t> Match(const DataObject& obj) const;

  size_t size() const { return queries_.size(); }

 private:
  std::vector<std::pair<uint64_t, AttributeQuery>> queries_;
};

}  // namespace ibus

#endif  // SRC_BASELINE_ATTRIBUTE_MATCHER_H_
