#include "src/repo/repository.h"

#include <algorithm>
#include <cstdlib>

#include "src/types/codec.h"
#include "src/wire/wire.h"

namespace ibus {

namespace {
// WAL record kinds for the repository ledger. Values are on-ledger format.
constexpr uint8_t kWalStore = 1;
constexpr uint8_t kWalDelete = 2;
constexpr char kOidPrefix[] = "oid-";
}  // namespace

Repository::Repository(TypeRegistry* registry, Database* db, journal::Journal* wal)
    : registry_(registry), db_(db), mapper_(registry, db), wal_(wal) {
  // Eager schema generation whenever a new type is defined anywhere in the process
  // (e.g. a TDL defclass or a descriptor learned off the bus).
  registry_->AddDefineObserver([this](const TypeDescriptor& desc) {
    mapper_.EnsureSchema(desc.name());
  });
}

Bytes Repository::WalRecordStore(const DataObject& obj, const std::string& id) const {
  WireWriter w;
  w.PutU8(kWalStore);
  w.PutString(obj.type_name());
  w.PutString(id);
  MarshalObject(obj, &w);
  return w.Take();
}

Bytes Repository::WalRecordDelete(const std::string& type_name, const std::string& id) const {
  WireWriter w;
  w.PutU8(kWalDelete);
  w.PutString(type_name);
  w.PutString(id);
  return w.Take();
}

Result<std::string> Repository::Store(const DataObject& obj) {
  // Derive the type from the instance's self-describing payload if unknown (P2): the
  // repository accepts types it has never seen a descriptor for.
  IBUS_RETURN_IF_ERROR(DeriveTypeFromInstance(registry_, obj));
  IBUS_RETURN_IF_ERROR(mapper_.EnsureSchema(obj.type_name()));
  std::string id = kOidPrefix + std::to_string(++next_id_);
  IBUS_RETURN_IF_ERROR(mapper_.StoreObject(obj, id));
  if (wal_ != nullptr) {
    auto logged = wal_->Append(WalRecordStore(obj, id));
    if (!logged.ok()) {
      return logged.status();
    }
  }
  ++stored_;
  return id;
}

Result<DataObjectPtr> Repository::Load(const std::string& type_name, const std::string& id) {
  return mapper_.LoadObject(type_name, id);
}

Status Repository::Delete(const std::string& type_name, const std::string& id) {
  IBUS_RETURN_IF_ERROR(mapper_.DeleteObject(type_name, id));
  if (wal_ != nullptr) {
    auto logged = wal_->Append(WalRecordDelete(type_name, id));
    if (!logged.ok()) {
      return logged.status();
    }
  }
  return OkStatus();
}

// hotlint: cold -- restart-only ledger replay into the in-memory database
Result<size_t> Repository::Recover() {
  if (wal_ == nullptr) {
    return static_cast<size_t>(0);
  }
  size_t applied = 0;
  uint64_t max_oid = next_id_;
  for (const journal::Record& rec : wal_->Records()) {
    WireReader r(rec.payload);
    auto kind = r.ReadU8();
    auto type_name = r.ReadString();
    auto id = r.ReadString();
    if (!kind.ok() || !type_name.ok() || !id.ok()) {
      return DataLoss("repository: malformed WAL record at lsn " + std::to_string(rec.lsn));
    }
    if (*kind == kWalStore) {
      auto obj = UnmarshalObject(&r);
      if (!obj.ok()) {
        return obj.status();
      }
      // Replay goes through the mapper directly — Store() would re-journal and
      // mint a fresh id; recovery must land objects under their original ids.
      IBUS_RETURN_IF_ERROR(DeriveTypeFromInstance(registry_, **obj));
      IBUS_RETURN_IF_ERROR(mapper_.EnsureSchema((*obj)->type_name()));
      IBUS_RETURN_IF_ERROR(mapper_.StoreObject(**obj, *id));
      ++stored_;
    } else if (*kind == kWalDelete) {
      Status s = mapper_.DeleteObject(*type_name, *id);
      if (!s.ok() && s.code() != StatusCode::kNotFound) {
        return s;
      }
    } else {
      return DataLoss("repository: unknown WAL record kind " + std::to_string(*kind));
    }
    // Restore the id horizon from replayed "oid-N" ids so new stores never reuse one.
    if (id->rfind(kOidPrefix, 0) == 0) {
      max_oid = std::max<uint64_t>(max_oid, std::strtoull(id->c_str() + 4, nullptr, 10));
    }
    ++applied;
  }
  next_id_ = max_oid;
  return applied;
}

Result<std::vector<DataObjectPtr>> Repository::Query(const RepoQuery& query) {
  if (!registry_->Has(query.type_name)) {
    return NotFound("repository: unknown type '" + query.type_name + "'");
  }
  std::vector<std::string> types =
      query.include_subtypes ? registry_->SubtypeClosure(query.type_name)
                             : std::vector<std::string>{query.type_name};
  std::vector<DataObjectPtr> out;
  for (const std::string& type : types) {
    const Table* table = db_->GetTable(ObjectMapper::MainTableName(type));
    if (table == nullptr) {
      continue;  // type registered but nothing ever stored
    }
    // Conditions on attributes this type lacks can never match.
    bool applicable = true;
    for (const Predicate::Cond& cond : query.predicate.conds) {
      if (table->schema().ColumnIndex(cond.column) < 0) {
        applicable = false;
        break;
      }
    }
    if (!applicable) {
      continue;
    }
    int id_col = table->schema().ColumnIndex("_id");
    for (const Row& row : table->Select(query.predicate)) {
      auto obj = mapper_.LoadObject(type, row[static_cast<size_t>(id_col)].AsString());
      if (!obj.ok()) {
        return obj.status();
      }
      out.push_back(obj.take());
    }
  }
  return out;
}

Result<size_t> Repository::Count(const std::string& type_name, bool include_subtypes) {
  RepoQuery q;
  q.type_name = type_name;
  q.include_subtypes = include_subtypes;
  auto r = Query(q);
  if (!r.ok()) {
    return r.status();
  }
  return r->size();
}

// ---------------------------------------------------------------------------------
// CaptureServer
// ---------------------------------------------------------------------------------

Result<std::unique_ptr<CaptureServer>> CaptureServer::Create(
    BusClient* bus, Repository* repo, const std::vector<std::string>& patterns) {
  auto server = std::unique_ptr<CaptureServer>(new CaptureServer(bus, repo));
  for (const std::string& pattern : patterns) {
    auto sub = bus->SubscribeObjects(
        pattern, [s = server.get()](const Message& /*m*/, const DataObjectPtr& obj) {
          if (obj == nullptr) {
            return;  // not a data object (control traffic, raw bytes)
          }
          if (s->repo_->Store(*obj).ok()) {
            s->captured_++;
          } else {
            s->failed_++;
          }
        });
    if (!sub.ok()) {
      return sub.status();
    }
    server->subs_.push_back(*sub);
  }
  return server;
}

CaptureServer::~CaptureServer() {
  for (uint64_t sub : subs_) {
    bus_->Unsubscribe(sub);
  }
}

// ---------------------------------------------------------------------------------
// QueryServer
// ---------------------------------------------------------------------------------

namespace {

Result<Predicate::Op> ParseOp(const std::string& op) {
  if (op == "==" || op == "eq") {
    return Predicate::Op::kEq;
  }
  if (op == "!=" || op == "ne") {
    return Predicate::Op::kNe;
  }
  if (op == "<") {
    return Predicate::Op::kLt;
  }
  if (op == "<=") {
    return Predicate::Op::kLe;
  }
  if (op == ">") {
    return Predicate::Op::kGt;
  }
  if (op == ">=") {
    return Predicate::Op::kGe;
  }
  if (op == "prefix") {
    return Predicate::Op::kPrefix;
  }
  return InvalidArgument("query server: unknown operator '" + op + "'");
}

}  // namespace

Result<std::unique_ptr<QueryServer>> QueryServer::Create(BusClient* bus, Repository* repo,
                                                         const std::string& subject) {
  auto service = std::make_shared<DynamicService>("object_repository");

  OperationDef count_op;
  count_op.name = "count";
  count_op.result_type = "i64";
  count_op.params = {ParamDef{"type", "string"}};
  service->AddOperation(count_op, [repo](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1 || !args[0].is_string()) {
      return InvalidArgument("count(type)");
    }
    auto n = repo->Count(args[0].AsString());
    if (!n.ok()) {
      return n.status();
    }
    return Value(static_cast<int64_t>(*n));
  });

  OperationDef query_op;
  query_op.name = "query";
  query_op.result_type = "list";
  query_op.params = {ParamDef{"type", "string"}, ParamDef{"attr", "string"},
                     ParamDef{"op", "string"}, ParamDef{"value", "any"}};
  service->AddOperation(query_op, [repo](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 4 || !args[0].is_string() || !args[1].is_string() ||
        !args[2].is_string()) {
      return InvalidArgument("query(type, attr, op, value)");
    }
    RepoQuery q;
    q.type_name = args[0].AsString();
    if (!args[1].AsString().empty()) {
      auto op = ParseOp(args[2].AsString());
      if (!op.ok()) {
        return op.status();
      }
      q.predicate.And(args[1].AsString(), *op, args[3]);
    }
    auto objs = repo->Query(q);
    if (!objs.ok()) {
      return objs.status();
    }
    Value::List out;
    for (const DataObjectPtr& obj : *objs) {
      out.push_back(Value(obj));
    }
    return Value(std::move(out));
  });

  OperationDef store_op;
  store_op.name = "store";
  store_op.result_type = "string";
  store_op.params = {ParamDef{"object", "object"}};
  service->AddOperation(store_op, [repo](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1 || !args[0].is_object() || args[0].AsObject() == nullptr) {
      return InvalidArgument("store(object)");
    }
    auto id = repo->Store(*args[0].AsObject());
    if (!id.ok()) {
      return id.status();
    }
    return Value(*id);
  });

  auto rmi = RmiServer::Create(bus, subject, service);
  if (!rmi.ok()) {
    return rmi.status();
  }
  auto qs = std::unique_ptr<QueryServer>(new QueryServer());
  qs->server_ = rmi.take();
  return qs;
}

}  // namespace ibus
