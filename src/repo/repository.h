// The Object Repository (paper §4): a sophisticated adapter integrating a relational
// database into the Information Bus. Objects are decomposed into relations purely from
// metadata (P2); previously unknown types get tables generated on first contact (P3 +
// R2); queries respect the type hierarchy, so "all stories matching X" also returns
// instances of story subtypes — including subtypes introduced after the query was
// written.
//
// The repository "may be configured in any number of ways": CaptureServer subscribes
// to subjects and inserts everything it hears; QueryServer exposes the store over RMI.
#ifndef SRC_REPO_REPOSITORY_H_
#define SRC_REPO_REPOSITORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/bus/client.h"
#include "src/db/database.h"
#include "src/journal/journal.h"
#include "src/repo/mapper.h"
#include "src/rmi/server.h"
#include "src/types/registry.h"

namespace ibus {

// A hierarchy-aware attribute query. Only scalar (inline-column) attributes are
// queryable; conditions on attributes a subtype does not have simply never match.
struct RepoQuery {
  std::string type_name;
  bool include_subtypes = true;
  Predicate predicate;  // column names = attribute names
};

class Repository {
 public:
  // With a write-ahead ledger attached, every Store/Delete is journaled and
  // Recover() can rebuild the (in-memory) database after a crash.
  Repository(TypeRegistry* registry, Database* db, journal::Journal* wal = nullptr);

  // Stores a (possibly deep) object; returns its generated repository id. If the
  // object's type is unknown, a descriptor is derived from the instance itself and
  // registered — the paper's "capable of generating one or more new database tables
  // to represent the new type".
  Result<std::string> Store(const DataObject& obj);

  Result<DataObjectPtr> Load(const std::string& type_name, const std::string& id);
  Status Delete(const std::string& type_name, const std::string& id);

  // Returns all matching objects of the type and (optionally) its subtypes.
  Result<std::vector<DataObjectPtr>> Query(const RepoQuery& query);
  Result<size_t> Count(const std::string& type_name, bool include_subtypes = true);

  // Replays the attached ledger into the database after a restart: store records
  // re-derive their type (self-describing payloads) and land under their original
  // repository ids; delete records remove them. Restores the id horizon so new
  // stores never reuse an id. Returns the number of records applied; a no-op
  // without a ledger.
  Result<size_t> Recover();

  TypeRegistry* registry() { return registry_; }
  Database* db() { return db_; }
  ObjectMapper* mapper() { return &mapper_; }

  uint64_t stored_count() const { return stored_; }

 private:
  Bytes WalRecordStore(const DataObject& obj, const std::string& id) const;
  Bytes WalRecordDelete(const std::string& type_name, const std::string& id) const;

  TypeRegistry* registry_;
  Database* db_;
  ObjectMapper mapper_;
  journal::Journal* wal_;
  uint64_t next_id_ = 0;
  uint64_t stored_ = 0;
};

// Capture configuration: subscribe and persist every data object heard.
class CaptureServer {
 public:
  static Result<std::unique_ptr<CaptureServer>> Create(BusClient* bus, Repository* repo,
                                                       const std::vector<std::string>& patterns);
  ~CaptureServer();
  CaptureServer(const CaptureServer&) = delete;
  CaptureServer& operator=(const CaptureServer&) = delete;

  uint64_t captured() const { return captured_; }
  uint64_t failed() const { return failed_; }

 private:
  CaptureServer(BusClient* bus, Repository* repo) : bus_(bus), repo_(repo) {}

  BusClient* bus_;
  Repository* repo_;
  std::vector<uint64_t> subs_;
  uint64_t captured_ = 0;
  uint64_t failed_ = 0;
};

// Query configuration: an RMI service answering attribute queries over the store.
// Operations: count(type), query(type, attr, op, value) -> list of objects,
//             store(object) -> id.
class QueryServer {
 public:
  static Result<std::unique_ptr<QueryServer>> Create(BusClient* bus, Repository* repo,
                                                     const std::string& subject);

  RmiServer* server() { return server_.get(); }

 private:
  QueryServer() = default;
  std::unique_ptr<RmiServer> server_;
};

}  // namespace ibus

#endif  // SRC_REPO_REPOSITORY_H_
