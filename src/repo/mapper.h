// Metadata-driven object-to-relational mapping (paper §4): "our conversion algorithm
// decomposes a complex object into one or more database tables and reconstructs a
// complex object from one or more database tables ... only the type information is
// necessary to do the transformation."
//
// Mapping rules, driven entirely by the TypeDescriptor:
//  - type T -> main table "obj_<T>" with a generated text primary key "_id", one typed
//    column per fundamental scalar attribute, and a "_props" blob holding marshalled
//    dynamic properties;
//  - each list / nested-object / "any" attribute -> child table "obj_<T>__<attr>" with
//    a generic (parent_id, ordinal, kind, scalar columns, child_type, child_id) schema;
//    nested objects are stored recursively in their own type's tables and referenced
//    by (child_type, child_id). ordinal -1 marks a single (non-list) value.
#ifndef SRC_REPO_MAPPER_H_
#define SRC_REPO_MAPPER_H_

#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/types/data_object.h"
#include "src/types/registry.h"

namespace ibus {

class ObjectMapper {
 public:
  ObjectMapper(TypeRegistry* registry, Database* db) : registry_(registry), db_(db) {}

  static std::string MainTableName(const std::string& type_name) { return "obj_" + type_name; }
  static std::string ChildTableName(const std::string& type_name, const std::string& attr) {
    return "obj_" + type_name + "__" + attr;
  }

  // True when the declared attribute type maps to an inline scalar column.
  static bool IsScalarAttribute(const std::string& attr_type);
  static ColumnType ScalarColumnType(const std::string& attr_type);

  // Creates (or migrates) the tables for `type_name`. Called lazily by Store and
  // eagerly by the repository's registry observer (dynamic schema evolution, R2).
  Status EnsureSchema(const std::string& type_name);

  // Decomposes `obj` into rows under the given id. The type's schema must exist.
  Status StoreObject(const DataObject& obj, const std::string& id);

  // Recomposes the object stored under (type_name, id).
  Result<DataObjectPtr> LoadObject(const std::string& type_name, const std::string& id);

  // Removes all rows belonging to (type_name, id), including child rows. Nested
  // objects are removed recursively.
  Status DeleteObject(const std::string& type_name, const std::string& id);

  uint64_t next_child_id() const { return next_child_id_; }

 private:
  TableSchema BuildMainSchema(const std::string& type_name,
                              const std::vector<AttributeDef>& attrs) const;
  static TableSchema BuildChildSchema(const std::string& table_name);

  Status StoreChildValue(const std::string& table, const std::string& parent_id,
                         int64_t ordinal, const Value& v);
  Result<Value> LoadChildValue(const Row& row);
  std::string NewChildId() { return "c" + std::to_string(++next_child_id_); }

  TypeRegistry* registry_;
  Database* db_;
  uint64_t next_child_id_ = 0;
};

}  // namespace ibus

#endif  // SRC_REPO_MAPPER_H_
