#include "src/repo/mapper.h"

#include <algorithm>

#include "src/types/codec.h"
#include "src/wire/wire.h"

namespace ibus {

namespace {

constexpr char kIdColumn[] = "_id";
constexpr char kPropsColumn[] = "_props";

// wirecheck: codec(repo_props, version=0)
Bytes MarshalProps(const DataObject& obj) {
  WireWriter w;
  w.PutVarint(obj.properties().size());
  for (const auto& [name, value] : obj.properties()) {
    w.PutString(name);
    MarshalValue(value, &w);
  }
  return w.Take();
}

// wirecheck: codec(repo_props, version=0)
Status UnmarshalProps(const Bytes& b, DataObject* obj) {
  WireReader r(b);
  auto count = r.ReadVarint();
  if (!count.ok()) {
    return count.status();
  }
  // Each property costs at least two bytes on the wire; clamp before looping.
  if (*count > r.remaining()) {
    return DataLoss("repo props: implausible property count");
  }
  for (uint64_t i = 0; i < *count; ++i) {
    auto name = r.ReadString();
    if (!name.ok()) {
      return name.status();
    }
    auto value = UnmarshalValue(&r);
    if (!value.ok()) {
      return value.status();
    }
    obj->SetProperty(*name, value.take());
  }
  if (!r.AtEnd()) {
    return DataLoss("repo props: trailing bytes");
  }
  return OkStatus();
}

}  // namespace

bool ObjectMapper::IsScalarAttribute(const std::string& attr_type) {
  return attr_type == "bool" || attr_type == "i32" || attr_type == "i64" ||
         attr_type == "f64" || attr_type == "string" || attr_type == "bytes";
}

ColumnType ObjectMapper::ScalarColumnType(const std::string& attr_type) {
  if (attr_type == "bool") {
    return ColumnType::kBool;
  }
  if (attr_type == "i32" || attr_type == "i64") {
    return ColumnType::kI64;
  }
  if (attr_type == "f64") {
    return ColumnType::kF64;
  }
  if (attr_type == "bytes") {
    return ColumnType::kBlob;
  }
  return ColumnType::kText;
}

TableSchema ObjectMapper::BuildMainSchema(const std::string& type_name,
                                          const std::vector<AttributeDef>& attrs) const {
  TableSchema schema;
  schema.name = MainTableName(type_name);
  schema.primary_key = kIdColumn;
  schema.columns.push_back(Column{kIdColumn, ColumnType::kText, /*nullable=*/false});
  for (const AttributeDef& a : attrs) {
    if (IsScalarAttribute(a.type_name)) {
      schema.columns.push_back(Column{a.name, ScalarColumnType(a.type_name), true});
    }
  }
  schema.columns.push_back(Column{kPropsColumn, ColumnType::kBlob, true});
  return schema;
}

TableSchema ObjectMapper::BuildChildSchema(const std::string& table_name) {
  TableSchema schema;
  schema.name = table_name;
  schema.columns = {
      Column{"parent_id", ColumnType::kText, false}, Column{"ordinal", ColumnType::kI64, false},
      Column{"kind", ColumnType::kText, false},      Column{"v_bool", ColumnType::kBool, true},
      Column{"v_i64", ColumnType::kI64, true},       Column{"v_f64", ColumnType::kF64, true},
      Column{"v_text", ColumnType::kText, true},     Column{"v_blob", ColumnType::kBlob, true},
      Column{"child_type", ColumnType::kText, true}, Column{"child_id", ColumnType::kText, true},
  };
  return schema;
}

Status ObjectMapper::EnsureSchema(const std::string& type_name) {
  auto attrs = registry_->AllAttributes(type_name);
  if (!attrs.ok()) {
    return attrs.status();
  }
  TableSchema desired = BuildMainSchema(type_name, *attrs);
  Table* existing = db_->GetTable(desired.name);
  if (existing == nullptr) {
    IBUS_RETURN_IF_ERROR(db_->CreateTable(desired));
  } else if (!(existing->schema() == desired)) {
    // Dynamic schema evolution (R2): rebuild the main table, carrying rows over by
    // column name; attributes new to the type become NULL.
    const TableSchema old_schema = existing->schema();
    std::vector<Row> old_rows = existing->Select(Predicate::True());
    IBUS_RETURN_IF_ERROR(db_->DropTable(desired.name));
    IBUS_RETURN_IF_ERROR(db_->CreateTable(desired));
    Table* rebuilt = db_->GetTable(desired.name);
    for (const Row& old_row : old_rows) {
      Row row(desired.columns.size());
      for (size_t i = 0; i < desired.columns.size(); ++i) {
        int old_idx = old_schema.ColumnIndex(desired.columns[i].name);
        if (old_idx >= 0) {
          row[i] = old_row[static_cast<size_t>(old_idx)];
        }
      }
      IBUS_RETURN_IF_ERROR(rebuilt->Insert(std::move(row)));
    }
  }
  // Child tables for every non-scalar attribute.
  for (const AttributeDef& a : *attrs) {
    if (IsScalarAttribute(a.type_name)) {
      continue;
    }
    std::string child_name = ChildTableName(type_name, a.name);
    if (db_->GetTable(child_name) == nullptr) {
      IBUS_RETURN_IF_ERROR(db_->CreateTable(BuildChildSchema(child_name)));
      IBUS_RETURN_IF_ERROR(db_->GetTable(child_name)->CreateIndex("parent_id"));
    }
  }
  return OkStatus();
}

Status ObjectMapper::StoreChildValue(const std::string& table, const std::string& parent_id,
                                     int64_t ordinal, const Value& v) {
  Row row(10);
  row[0] = Value(parent_id);
  row[1] = Value(ordinal);
  switch (v.kind()) {
    case ValueKind::kNull:
      row[2] = Value(std::string("null"));
      break;
    case ValueKind::kBool:
      row[2] = Value(std::string("bool"));
      row[3] = v;
      break;
    case ValueKind::kI32:
      row[2] = Value(std::string("i32"));  // kind tag preserves the width round trip
      row[4] = Value(static_cast<int64_t>(v.AsI32()));
      break;
    case ValueKind::kI64:
      row[2] = Value(std::string("i64"));
      row[4] = v;
      break;
    case ValueKind::kF64:
      row[2] = Value(std::string("f64"));
      row[5] = v;
      break;
    case ValueKind::kString:
      row[2] = Value(std::string("string"));
      row[6] = v;
      break;
    case ValueKind::kBytes:
      row[2] = Value(std::string("bytes"));
      row[7] = v;
      break;
    case ValueKind::kList: {
      // A nested list inside a child value keeps its full structure as a blob.
      row[2] = Value(std::string("nested"));
      WireWriter w;
      MarshalValue(v, &w);
      row[7] = Value(w.Take());
      break;
    }
    case ValueKind::kObject: {
      if (v.AsObject() == nullptr) {
        row[2] = Value(std::string("null"));
        break;
      }
      const DataObject& child = *v.AsObject();
      std::string child_id = NewChildId();
      // Nested objects of never-seen types are derivable from the instance (P2).
      IBUS_RETURN_IF_ERROR(DeriveTypeFromInstance(registry_, child));
      IBUS_RETURN_IF_ERROR(EnsureSchema(child.type_name()));
      IBUS_RETURN_IF_ERROR(StoreObject(child, child_id));
      row[2] = Value(std::string("object"));
      row[8] = Value(child.type_name());
      row[9] = Value(child_id);
      break;
    }
  }
  return db_->Insert(table, std::move(row));
}

Result<Value> ObjectMapper::LoadChildValue(const Row& row) {
  const std::string& kind = row[2].AsString();
  if (kind == "null") {
    return Value();
  }
  if (kind == "bool") {
    return row[3];
  }
  if (kind == "i32") {
    return Value(static_cast<int32_t>(row[4].AsI64()));
  }
  if (kind == "i64") {
    return row[4];
  }
  if (kind == "f64") {
    return row[5];
  }
  if (kind == "string") {
    return row[6];
  }
  if (kind == "bytes") {
    return row[7];
  }
  if (kind == "nested") {
    WireReader r(row[7].AsBytes());
    return UnmarshalValue(&r);
  }
  if (kind == "object") {
    auto obj = LoadObject(row[8].AsString(), row[9].AsString());
    if (!obj.ok()) {
      return obj.status();
    }
    return Value(obj.take());
  }
  return DataLoss("mapper: unknown child kind '" + kind + "'");
}

Status ObjectMapper::StoreObject(const DataObject& obj, const std::string& id) {
  auto attrs = registry_->AllAttributes(obj.type_name());
  if (!attrs.ok()) {
    return attrs.status();
  }
  Table* main = db_->GetTable(MainTableName(obj.type_name()));
  if (main == nullptr) {
    return FailedPrecondition("mapper: no schema for type '" + obj.type_name() + "'");
  }
  const TableSchema& schema = main->schema();
  Row row(schema.columns.size());
  row[0] = Value(id);
  for (const AttributeDef& a : *attrs) {
    const Value& v = obj.Get(a.name);
    if (IsScalarAttribute(a.type_name)) {
      int col = schema.ColumnIndex(a.name);
      if (col < 0) {
        return Internal("mapper: schema out of date for '" + obj.type_name() + "'");
      }
      row[static_cast<size_t>(col)] =
          v.is_i32() ? Value(static_cast<int64_t>(v.AsI32())) : v;
    } else {
      const std::string table = ChildTableName(obj.type_name(), a.name);
      if (v.is_list()) {
        int64_t ordinal = 0;
        for (const Value& element : v.AsList()) {
          IBUS_RETURN_IF_ERROR(StoreChildValue(table, id, ordinal++, element));
        }
      } else if (!v.is_null()) {
        IBUS_RETURN_IF_ERROR(StoreChildValue(table, id, -1, v));
      }
    }
  }
  if (!obj.properties().empty()) {
    int props_col = schema.ColumnIndex(kPropsColumn);
    row[static_cast<size_t>(props_col)] = Value(MarshalProps(obj));
  }
  return main->Insert(std::move(row));
}

Result<DataObjectPtr> ObjectMapper::LoadObject(const std::string& type_name,
                                               const std::string& id) {
  auto attrs = registry_->AllAttributes(type_name);
  if (!attrs.ok()) {
    return attrs.status();
  }
  Table* main = db_->GetTable(MainTableName(type_name));
  if (main == nullptr) {
    return NotFound("mapper: no table for type '" + type_name + "'");
  }
  auto row = main->GetByPk(Value(id));
  if (!row.ok()) {
    return row.status();
  }
  const TableSchema& schema = main->schema();
  auto obj = std::make_shared<DataObject>(type_name);
  for (const AttributeDef& a : *attrs) {
    if (IsScalarAttribute(a.type_name)) {
      int col = schema.ColumnIndex(a.name);
      Value cell = col >= 0 ? (*row)[static_cast<size_t>(col)] : Value();
      if (a.type_name == "i32" && cell.is_i64()) {
        cell = Value(static_cast<int32_t>(cell.AsI64()));
      }
      obj->AddAttribute(a.name, std::move(cell));
      continue;
    }
    Table* child = db_->GetTable(ChildTableName(type_name, a.name));
    if (child == nullptr) {
      obj->AddAttribute(a.name);
      continue;
    }
    std::vector<Row> rows = child->Select(Predicate::Eq("parent_id", Value(id)));
    std::sort(rows.begin(), rows.end(),
              [](const Row& x, const Row& y) { return x[1].AsI64() < y[1].AsI64(); });
    if (rows.empty()) {
      // No rows: an "any"/object attribute was null, or a list attribute was empty.
      obj->AddAttribute(a.name, a.type_name == "list" ? Value(Value::List{}) : Value());
    } else if (rows.size() == 1 && rows[0][1].AsI64() == -1) {
      auto v = LoadChildValue(rows[0]);
      if (!v.ok()) {
        return v.status();
      }
      obj->AddAttribute(a.name, v.take());
    } else {
      Value::List list;
      for (const Row& r : rows) {
        auto v = LoadChildValue(r);
        if (!v.ok()) {
          return v.status();
        }
        list.push_back(v.take());
      }
      obj->AddAttribute(a.name, Value(std::move(list)));
    }
  }
  int props_col = schema.ColumnIndex(kPropsColumn);
  if (props_col >= 0 && (*row)[static_cast<size_t>(props_col)].is_bytes()) {
    IBUS_RETURN_IF_ERROR(
        UnmarshalProps((*row)[static_cast<size_t>(props_col)].AsBytes(), obj.get()));
  }
  return obj;
}

Status ObjectMapper::DeleteObject(const std::string& type_name, const std::string& id) {
  auto attrs = registry_->AllAttributes(type_name);
  if (!attrs.ok()) {
    return attrs.status();
  }
  Table* main = db_->GetTable(MainTableName(type_name));
  if (main == nullptr) {
    return NotFound("mapper: no table for type '" + type_name + "'");
  }
  for (const AttributeDef& a : *attrs) {
    if (IsScalarAttribute(a.type_name)) {
      continue;
    }
    Table* child = db_->GetTable(ChildTableName(type_name, a.name));
    if (child == nullptr) {
      continue;
    }
    // Recursively delete nested objects referenced from child rows.
    for (const Row& row : child->Select(Predicate::Eq("parent_id", Value(id)))) {
      if (row[2].is_string() && row[2].AsString() == "object") {
        IBUS_RETURN_IF_ERROR(DeleteObject(row[8].AsString(), row[9].AsString()));
      }
    }
    IBUS_RETURN_IF_ERROR(child->DeleteWhere(Predicate::Eq("parent_id", Value(id))));
  }
  return main->DeleteByPk(Value(id));
}

}  // namespace ibus
