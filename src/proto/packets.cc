#include "src/proto/packets.h"

namespace ibus {

Bytes DataPacket::Marshal() const {  // hotlint: allow(hot-by-value) -- serialization boundary: NRVO into the send buffer
  WireWriter w;
  w.PutU64(stream_id);
  w.PutU64(seq);
  w.PutU16(frag_index);
  w.PutU16(frag_count);
  w.PutRaw(chunk);
  return w.Take();
}

Result<DataPacket> DataPacket::Unmarshal(const Bytes& payload) {
  WireReader r(payload);
  DataPacket p;
  auto stream = r.ReadU64();
  auto seq = r.ReadU64();
  auto idx = r.ReadU16();
  auto cnt = r.ReadU16();
  if (!stream.ok() || !seq.ok() || !idx.ok() || !cnt.ok()) {
    return DataLoss("data packet: truncated header");
  }
  p.stream_id = *stream;
  p.seq = *seq;
  p.frag_index = *idx;
  p.frag_count = *cnt;
  if (p.frag_count == 0 || p.frag_index >= p.frag_count) {
    return DataLoss("data packet: bad fragment indices");
  }
  p.chunk = Bytes(payload.begin() + static_cast<ptrdiff_t>(r.position()), payload.end());
  return p;
}

Bytes BatchPacket::Marshal() const {  // hotlint: allow(hot-by-value) -- serialization boundary: NRVO into the send buffer
  WireWriter w;
  w.PutU64(stream_id);
  w.PutU64(first_seq);
  w.PutVarint(messages.size());
  for (const Bytes& m : messages) {
    w.PutBytes(m);
  }
  return w.Take();
}

Result<BatchPacket> BatchPacket::Unmarshal(const Bytes& payload) {
  WireReader r(payload);
  BatchPacket p;
  auto stream = r.ReadU64();
  auto first = r.ReadU64();
  auto count = r.ReadVarint();
  if (!stream.ok() || !first.ok() || !count.ok()) {
    return DataLoss("batch packet: truncated header");
  }
  p.stream_id = *stream;
  p.first_seq = *first;
  if (*count > r.remaining()) {
    return DataLoss("batch packet: implausible count");
  }
  p.messages.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto m = r.ReadBytes();
    if (!m.ok()) {
      return m.status();
    }
    p.messages.push_back(m.take());
  }
  return p;
}

Bytes HeartbeatPacket::Marshal() const {  // hotlint: allow(hot-by-value) -- serialization boundary: NRVO into the send buffer
  WireWriter w;
  w.PutU64(stream_id);
  w.PutU64(highest_seq);
  w.PutU64(lowest_retained);
  return w.Take();
}

Result<HeartbeatPacket> HeartbeatPacket::Unmarshal(const Bytes& payload) {
  WireReader r(payload);
  HeartbeatPacket p;
  auto stream = r.ReadU64();
  auto high = r.ReadU64();
  auto low = r.ReadU64();
  if (!stream.ok() || !high.ok() || !low.ok()) {
    return DataLoss("heartbeat packet: truncated");
  }
  p.stream_id = *stream;
  p.highest_seq = *high;
  p.lowest_retained = *low;
  return p;
}

Bytes NakPacket::Marshal() const {  // hotlint: allow(hot-by-value) -- serialization boundary: NRVO into the send buffer
  WireWriter w;
  w.PutU64(stream_id);
  w.PutVarint(missing.size());
  for (uint64_t s : missing) {
    w.PutU64(s);
  }
  return w.Take();
}

Result<NakPacket> NakPacket::Unmarshal(const Bytes& payload) {
  WireReader r(payload);
  NakPacket p;
  auto stream = r.ReadU64();
  auto count = r.ReadVarint();
  if (!stream.ok() || !count.ok()) {
    return DataLoss("nak packet: truncated");
  }
  p.stream_id = *stream;
  if (*count > r.remaining()) {
    return DataLoss("nak packet: implausible count");
  }
  p.missing.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto s = r.ReadU64();
    if (!s.ok()) {
      return s.status();
    }
    p.missing.push_back(*s);
  }
  return p;
}

}  // namespace ibus
