#include "src/proto/packets.h"

namespace ibus {

// wirecheck: codec(data_packet, version=0)
Bytes DataPacket::Marshal() const {  // hotlint: allow(hot-by-value) -- serialization boundary: NRVO into the send buffer
  WireWriter w;
  w.PutU64(stream_id);
  w.PutU64(seq);
  w.PutU16(frag_index);
  w.PutU16(frag_count);
  w.PutRaw(chunk);
  return w.Take();
}

// wirecheck: codec(data_packet, version=0)
Result<DataPacket> DataPacket::Unmarshal(const Bytes& payload) {
  WireReader r(payload);
  DataPacket p;
  auto stream = r.ReadU64();
  auto seq = r.ReadU64();
  auto idx = r.ReadU16();
  auto cnt = r.ReadU16();
  if (!stream.ok() || !seq.ok() || !idx.ok() || !cnt.ok()) {
    return DataLoss("data packet: truncated header");
  }
  p.stream_id = *stream;
  p.seq = *seq;
  p.frag_index = *idx;
  p.frag_count = *cnt;
  if (p.frag_count == 0 || p.frag_index >= p.frag_count) {
    return DataLoss("data packet: bad fragment indices");
  }
  // wirecheck: op(raw) -- the fragment chunk is the unread tail of the packet, sliced without a length prefix
  p.chunk = Bytes(payload.begin() + static_cast<ptrdiff_t>(r.position()), payload.end());
  return p;
}

// wirecheck: codec(batch_packet, version=0)
Bytes BatchPacket::Marshal() const {  // hotlint: allow(hot-by-value) -- serialization boundary: NRVO into the send buffer
  WireWriter w;
  w.PutU64(stream_id);
  w.PutU64(first_seq);
  w.PutVarint(messages.size());
  for (const Bytes& m : messages) {
    w.PutBytes(m);
  }
  return w.Take();
}

// wirecheck: codec(batch_packet, version=0)
Result<BatchPacket> BatchPacket::Unmarshal(const Bytes& payload) {
  WireReader r(payload);
  BatchPacket p;
  auto stream = r.ReadU64();
  auto first = r.ReadU64();
  auto count = r.ReadVarint();
  if (!stream.ok() || !first.ok() || !count.ok()) {
    return DataLoss("batch packet: truncated header");
  }
  p.stream_id = *stream;
  p.first_seq = *first;
  if (*count > r.remaining()) {
    return DataLoss("batch packet: implausible count");
  }
  p.messages.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto m = r.ReadBytes();
    if (!m.ok()) {
      return m.status();
    }
    p.messages.push_back(m.take());
  }
  if (!r.AtEnd()) {
    return DataLoss("batch packet: trailing bytes");
  }
  return p;
}

// wirecheck: codec(heartbeat_packet, version=0)
Bytes HeartbeatPacket::Marshal() const {  // hotlint: allow(hot-by-value) -- serialization boundary: NRVO into the send buffer
  WireWriter w;
  w.PutU64(stream_id);
  w.PutU64(highest_seq);
  w.PutU64(lowest_retained);
  return w.Take();
}

// wirecheck: codec(heartbeat_packet, version=0)
Result<HeartbeatPacket> HeartbeatPacket::Unmarshal(const Bytes& payload) {
  WireReader r(payload);
  HeartbeatPacket p;
  auto stream = r.ReadU64();
  auto high = r.ReadU64();
  auto low = r.ReadU64();
  if (!stream.ok() || !high.ok() || !low.ok()) {
    return DataLoss("heartbeat packet: truncated");
  }
  if (!r.AtEnd()) {
    return DataLoss("heartbeat packet: trailing bytes");
  }
  p.stream_id = *stream;
  p.highest_seq = *high;
  p.lowest_retained = *low;
  return p;
}

// wirecheck: codec(nak_packet, version=0)
Bytes NakPacket::Marshal() const {  // hotlint: allow(hot-by-value) -- serialization boundary: NRVO into the send buffer
  WireWriter w;
  w.PutU64(stream_id);
  w.PutVarint(missing.size());
  for (uint64_t s : missing) {
    w.PutU64(s);
  }
  return w.Take();
}

// wirecheck: codec(nak_packet, version=0)
Result<NakPacket> NakPacket::Unmarshal(const Bytes& payload) {
  WireReader r(payload);
  NakPacket p;
  auto stream = r.ReadU64();
  auto count = r.ReadVarint();
  if (!stream.ok() || !count.ok()) {
    return DataLoss("nak packet: truncated");
  }
  p.stream_id = *stream;
  if (*count > r.remaining()) {
    return DataLoss("nak packet: implausible count");
  }
  p.missing.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto s = r.ReadU64();
    if (!s.ok()) {
      return s.status();
    }
    p.missing.push_back(*s);
  }
  if (!r.AtEnd()) {
    return DataLoss("nak packet: trailing bytes");
  }
  return p;
}

}  // namespace ibus
