// Packet schemas for the bus transport protocols. Every datagram on the bus port is a
// framed message (src/wire framing); the frame type selects the schema below.
#ifndef SRC_PROTO_PACKETS_H_
#define SRC_PROTO_PACKETS_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/wire/wire.h"

namespace ibus {

// Frame types used on bus ports.
enum PacketType : uint8_t {
  kPktData = 1,       // one (possibly fragmented) application message
  kPktBatch = 2,      // several small messages packed into one frame
  kPktHeartbeat = 3,  // sender liveness + tail-loss detection
  kPktNak = 4,        // receiver requests retransmission of missing sequences
  // Bus/daemon control plane (defined in src/bus but allocated here to keep the
  // numbering space in one place).
  kPktClientRegister = 16,
  kPktClientMessage = 17,
  kPktSubscribe = 18,
  kPktUnsubscribe = 19,
  kPktClientDeliver = 20,
  kPktCertifiedAck = 21,
  kPktClientUnregister = 22,
};

struct DataPacket {
  uint64_t stream_id = 0;
  uint64_t seq = 0;
  uint16_t frag_index = 0;
  uint16_t frag_count = 1;
  Bytes chunk;

  Bytes Marshal() const;
  static Result<DataPacket> Unmarshal(const Bytes& payload);
};

struct BatchPacket {
  uint64_t stream_id = 0;
  uint64_t first_seq = 0;
  std::vector<Bytes> messages;

  Bytes Marshal() const;
  static Result<BatchPacket> Unmarshal(const Bytes& payload);
};

struct HeartbeatPacket {
  uint64_t stream_id = 0;
  uint64_t highest_seq = 0;     // last sequence published (0 = none yet)
  uint64_t lowest_retained = 0; // oldest sequence still retransmittable

  Bytes Marshal() const;
  static Result<HeartbeatPacket> Unmarshal(const Bytes& payload);
};

struct NakPacket {
  uint64_t stream_id = 0;
  std::vector<uint64_t> missing;

  Bytes Marshal() const;
  static Result<NakPacket> Unmarshal(const Bytes& payload);
};

}  // namespace ibus

#endif  // SRC_PROTO_PACKETS_H_
