#include "src/proto/reliable.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/wire/wire.h"

namespace ibus {

// ---------------------------------------------------------------------------------
// ReliableSender
// ---------------------------------------------------------------------------------

ReliableSender::ReliableSender(Simulator* sim, UdpSocket* socket, Port dst_port,
                               uint64_t stream_id, const ReliableConfig& config,
                               telemetry::MetricsRegistry* metrics,
                               telemetry::FlightRecorder* recorder)
    : sim_(sim),
      socket_(socket),
      dst_port_(dst_port),
      stream_id_(stream_id),
      config_(config),
      recorder_(recorder),
      alive_(std::make_shared<bool>(true)) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<telemetry::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  published_ = metrics->GetCounter(kMetricSenderPublished);
  packets_sent_ = metrics->GetCounter(kMetricSenderPacketsSent);
  batches_sent_ = metrics->GetCounter(kMetricSenderBatchesSent);
  retransmits_ = metrics->GetCounter(kMetricSenderRetransmits);
  naks_received_ = metrics->GetCounter(kMetricSenderNaksReceived);
  heartbeats_sent_ = metrics->GetCounter(kMetricSenderHeartbeats);
  retained_depth_ = metrics->GetQueueDepth(kMetricSenderRetainedDepth);
  batch_depth_ = metrics->GetQueueDepth(kMetricSenderBatchDepth);
}

ReliableSender::~ReliableSender() { *alive_ = false; }

ReliableSenderStats ReliableSender::stats() const {
  ReliableSenderStats s;
  s.published = published_->value();
  s.packets_sent = packets_sent_->value();
  s.batches_sent = batches_sent_->value();
  s.retransmits = retransmits_->value();
  s.naks_received = naks_received_->value();
  s.heartbeats_sent = heartbeats_sent_->value();
  return s;
}

Status ReliableSender::Publish(Bytes message) {
  uint64_t seq = next_seq_++;
  Retain(seq, message);
  last_activity_ = sim_->Now();
  published_->Inc();

  Status result;
  if (config_.batching_enabled && message.size() <= config_.chunk_size) {
    // Pack small messages together; flush when full or when the delay timer fires.
    const size_t packed = message.size() + 4;  // length prefix overhead
    if (!batch_.empty() && batch_bytes_ + packed > config_.batch_max_bytes) {
      Flush();
    }
    if (batch_.empty()) {
      batch_first_seq_ = seq;
      ScheduleBatchFlush();
    }
    batch_bytes_ += packed;
    batch_.push_back(std::move(message));  // hotlint: allow(hot-container-growth) -- batch buffer: amortized growth, flushed every batch window
    batch_depth_.Set(static_cast<int64_t>(batch_.size()));
    if (batch_bytes_ >= config_.batch_max_bytes) {
      Flush();
    }
  } else {
    // Large (or unbatched) message: preserve sequence order by flushing first.
    Flush();
    result = SendMessageAsPackets(seq, message);
  }
  ScheduleHeartbeat();
  return result;
}

void ReliableSender::Flush() {
  if (batch_.empty()) {
    return;
  }
  if (batch_timer_ != 0) {
    sim_->Cancel(batch_timer_);
    batch_timer_ = 0;
  }
  if (batch_.size() == 1) {
    // No point paying batch framing for a single message.
    SendMessageAsPackets(batch_first_seq_, batch_[0]);
  } else {
    BatchPacket pkt;
    pkt.stream_id = stream_id_;
    pkt.first_seq = batch_first_seq_;
    pkt.messages = std::move(batch_);
    socket_->Broadcast(dst_port_, FrameMessage(kPktBatch, pkt.Marshal()));
    packets_sent_->Inc();
    batches_sent_->Inc();
  }
  batch_.clear();
  batch_bytes_ = 0;
  batch_first_seq_ = 0;
  batch_depth_.Set(0);
}

void ReliableSender::ScheduleBatchFlush() {
  if (batch_timer_ != 0) {
    return;
  }
  batch_timer_ = sim_->ScheduleAfter(
      config_.batch_delay_us,
      [this, alive = alive_]() {
        if (!*alive) {
          return;
        }
        batch_timer_ = 0;
        Flush();
      },
      "proto.batch_flush");
}

Status ReliableSender::SendMessageAsPackets(uint64_t seq, const Bytes& message) {
  const size_t chunk_size = config_.chunk_size;
  const size_t frag_count = message.empty() ? 1 : (message.size() + chunk_size - 1) / chunk_size;
  if (frag_count > 0xFFFF) {
    return InvalidArgument("message too large to fragment");
  }
  Status last;
  for (size_t i = 0; i < frag_count; ++i) {
    DataPacket pkt;
    pkt.stream_id = stream_id_;
    pkt.seq = seq;
    pkt.frag_index = static_cast<uint16_t>(i);
    pkt.frag_count = static_cast<uint16_t>(frag_count);
    size_t begin = i * chunk_size;
    size_t end = std::min(message.size(), begin + chunk_size);
    pkt.chunk = Bytes(message.begin() + static_cast<ptrdiff_t>(begin),
                      message.begin() + static_cast<ptrdiff_t>(end));
    Status s = socket_->Broadcast(dst_port_, FrameMessage(kPktData, pkt.Marshal()));
    packets_sent_->Inc();
    if (!s.ok()) {
      last = s;
    }
  }
  return last;
}

void ReliableSender::Retain(uint64_t seq, Bytes message) {
  retained_.emplace_back(seq, std::move(message));  // hotlint: allow(hot-container-growth) -- retransmit retention window, trimmed as peers acknowledge
  while (retained_.size() > config_.retain_messages) {
    last_retransmit_.erase(retained_.front().first);
    retained_.pop_front();
  }
  retained_depth_.Set(static_cast<int64_t>(retained_.size()));
}

void ReliableSender::HandleNak(const NakPacket& nak, HostId /*from_host*/,
                               Port /*from_port*/) {
  naks_received_->Inc();
  if (retained_.empty()) {
    SendHeartbeat();  // tells the receiver what is (not) retransmittable
    return;
  }
  const uint64_t lowest = retained_.front().first;
  bool aged_out = false;
  for (uint64_t seq : nak.missing) {
    if (seq < lowest || seq >= lowest + retained_.size()) {
      aged_out = aged_out || seq < lowest;
      continue;  // aged out of the retransmit buffer; receiver will declare a gap
    }
    auto it = last_retransmit_.find(seq);
    if (it != last_retransmit_.end() &&
        sim_->Now() - it->second < config_.retransmit_min_gap_us) {
      continue;  // another receiver just triggered this retransmit
    }
    last_retransmit_[seq] = sim_->Now();
    const Bytes& message = retained_[seq - lowest].second;
    // Rebroadcast so every receiver missing it recovers from one retransmission.
    SendMessageAsPackets(seq, message);
    retransmits_->Inc();
    if (recorder_ != nullptr) {
      recorder_->Record(sim_->Now(), telemetry::FlightEventKind::kRetransmit, "",
                        "stream=" + std::to_string(stream_id_) +  // hotlint: allow(hot-string) -- loss-recovery telemetry detail: NAKs are the exception path
                            " seq=" + std::to_string(seq));  // hotlint: allow(hot-string) -- loss-recovery telemetry detail: NAKs are the exception path
    }
  }
  if (aged_out) {
    // The receiver asked for history we no longer hold: a heartbeat carries
    // lowest_retained so it can declare the gap immediately instead of timing out.
    SendHeartbeat();
  }
}

void ReliableSender::ScheduleHeartbeat() {  // hotlint: allow(hot-recursion) -- self-reschedules via a simulator timer: one frame per tick, not unbounded
  if (heartbeat_scheduled_) {
    return;
  }
  heartbeat_scheduled_ = true;
  sim_->ScheduleAfter(
      config_.heartbeat_interval_us,
      [this, alive = alive_]() {
        if (!*alive) {
          return;
        }
        heartbeat_scheduled_ = false;
        SendHeartbeat();
        if (sim_->Now() - last_activity_ < config_.heartbeat_idle_cutoff_us) {
          ScheduleHeartbeat();
        }
      },
      "proto.heartbeat");
}

void ReliableSender::SendHeartbeat() {
  HeartbeatPacket pkt;
  pkt.stream_id = stream_id_;
  pkt.highest_seq = next_seq_ - 1;
  pkt.lowest_retained = retained_.empty() ? next_seq_ : retained_.front().first;
  socket_->Broadcast(dst_port_, FrameMessage(kPktHeartbeat, pkt.Marshal()));
  heartbeats_sent_->Inc();
}

// ---------------------------------------------------------------------------------
// ReliableReceiver
// ---------------------------------------------------------------------------------

ReliableReceiver::ReliableReceiver(Simulator* sim, UdpSocket* socket,
                                   const ReliableConfig& config, DeliverFn deliver,
                                   GapFn on_gap, telemetry::MetricsRegistry* metrics,
                                   telemetry::FlightRecorder* recorder)
    : sim_(sim),
      socket_(socket),
      config_(config),
      deliver_(std::move(deliver)),
      on_gap_(std::move(on_gap)),
      recorder_(recorder),
      alive_(std::make_shared<bool>(true)) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<telemetry::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  delivered_ = metrics->GetCounter(kMetricReceiverDelivered);
  duplicates_dropped_ = metrics->GetCounter(kMetricReceiverDuplicates);
  naks_sent_ = metrics->GetCounter(kMetricReceiverNaksSent);
  gaps_ = metrics->GetCounter(kMetricReceiverGaps);
  ready_depth_ = metrics->GetQueueDepth(kMetricReceiverReadyDepth);
  partials_depth_ = metrics->GetQueueDepth(kMetricReceiverPartialsDepth);
}

ReliableReceiver::~ReliableReceiver() { *alive_ = false; }

ReliableReceiverStats ReliableReceiver::stats() const {
  ReliableReceiverStats s;
  s.delivered = delivered_->value();
  s.duplicates_dropped = duplicates_dropped_->value();
  s.naks_sent = naks_sent_->value();
  s.gaps = gaps_->value();
  return s;
}

void ReliableReceiver::NoteSender(Stream& s, HostId host, Port port) {
  s.sender_host = host;
  s.sender_port = port;
  s.last_packet_at = sim_->Now();
}

ReliableReceiver::Stream& ReliableReceiver::EnsureStarted(uint64_t stream_id) {
  Stream& s = streams_[stream_id];
  if (!s.started) {
    s.started = true;
    s.syncing = true;
    sim_->ScheduleAfter(
        config_.sync_hold_us,
        [this, stream_id, alive = alive_]() {
          if (!*alive) {
            return;
          }
          auto it = streams_.find(stream_id);
          if (it != streams_.end() && it->second.syncing) {
            FinishSync(stream_id, it->second);
          }
        },
        "proto.sync_hold");
  }
  return s;
}

void ReliableReceiver::HandleData(const DataPacket& pkt, HostId from_host, Port from_port) {
  Stream& s = EnsureStarted(pkt.stream_id);
  NoteSender(s, from_host, from_port);
  if ((!s.syncing && pkt.seq < s.expected) || s.ready.count(pkt.seq) > 0) {
    duplicates_dropped_->Inc();
    return;
  }
  if (pkt.frag_count == 1) {
    Ingest(pkt.stream_id, pkt.seq, pkt.chunk, from_host, from_port);
    return;
  }
  Partial& partial = s.partials[pkt.seq];
  if (partial.chunks.empty()) {
    partial.chunks.resize(pkt.frag_count);  // hotlint: allow(hot-container-growth) -- this resize IS the one-shot preallocation of the reassembly buffer
    partials_depth_.Set(++partials_total_);
  }
  if (pkt.frag_count != partial.chunks.size()) {
    return;  // inconsistent retransmit; ignore
  }
  if (!partial.chunks[pkt.frag_index].empty()) {
    duplicates_dropped_->Inc();
    return;
  }
  partial.chunks[pkt.frag_index] = pkt.chunk;
  partial.received++;
  partial.last_update = sim_->Now();
  if (pkt.frag_index + 1u == pkt.frag_count && pkt.chunk.empty()) {
    // Guard: empty final chunk still counts as received (set above); nothing special.
  }
  s.highest_seen = std::max(s.highest_seen, pkt.seq);
  if (partial.received == partial.chunks.size()) {
    Bytes whole;
    for (Bytes& c : partial.chunks) {
      whole.insert(whole.end(), c.begin(), c.end());  // hotlint: allow(hot-container-growth) -- reassembly concatenation into the rebuilt message
    }
    s.partials.erase(pkt.seq);
    partials_depth_.Set(--partials_total_);
    Ingest(pkt.stream_id, pkt.seq, std::move(whole), from_host, from_port);
  } else {
    // A fragmented message implies in-flight sequences; watch for loss.
    if (!s.syncing) {
      MaybeScheduleNak(pkt.stream_id);
    }
  }
}

void ReliableReceiver::HandleBatch(const BatchPacket& pkt, HostId from_host, Port from_port) {
  uint64_t seq = pkt.first_seq;
  for (const Bytes& m : pkt.messages) {
    Stream& s = EnsureStarted(pkt.stream_id);
    NoteSender(s, from_host, from_port);
    if ((!s.syncing && seq < s.expected) || s.ready.count(seq) > 0) {
      duplicates_dropped_->Inc();
    } else {
      Ingest(pkt.stream_id, seq, m, from_host, from_port);
    }
    ++seq;
  }
}

void ReliableReceiver::HandleHeartbeat(const HeartbeatPacket& pkt, HostId from_host,
                                       Port from_port) {
  Stream& s = streams_[pkt.stream_id];
  NoteSender(s, from_host, from_port);
  if (!s.started) {
    // A late joiner starts fresh from the next message; no history fetch (new
    // subscribers receive "new objects being published", paper §3.1).
    s.started = true;
    s.expected = pkt.highest_seq + 1;
    s.highest_seen = pkt.highest_seq;
    return;
  }
  if (s.syncing) {
    // A heartbeat ends the initial hold window authoritatively.
    FinishSync(pkt.stream_id, s);
  }
  s.highest_seen = std::max(s.highest_seen, pkt.highest_seq);
  if (s.expected < pkt.lowest_retained) {
    // The sender can no longer retransmit what we are missing: unrecoverable gap.
    uint64_t first = s.expected;
    uint64_t last = pkt.lowest_retained - 1;
    gaps_->Inc(last - first + 1);
    if (recorder_ != nullptr) {
      recorder_->Record(sim_->Now(), telemetry::FlightEventKind::kGap, "",
                        "stream=" + std::to_string(pkt.stream_id) +  // hotlint: allow(hot-string) -- loss-detection telemetry detail: exception path
                            " first=" + std::to_string(first) +  // hotlint: allow(hot-string) -- loss-detection telemetry detail: exception path
                            " last=" + std::to_string(last));  // hotlint: allow(hot-string) -- loss-detection telemetry detail: exception path
    }
    if (on_gap_) {
      on_gap_(pkt.stream_id, first, last);
    }
    s.expected = pkt.lowest_retained;
    // Drop stale partial state below the new horizon.
    while (!s.partials.empty() && s.partials.begin()->first < s.expected) {
      s.partials.erase(s.partials.begin());
      partials_depth_.Set(--partials_total_);
    }
    DrainReady(pkt.stream_id, s);
  }
  if (s.expected <= s.highest_seen) {
    MaybeScheduleNak(pkt.stream_id);
  }
}

void ReliableReceiver::Ingest(uint64_t stream_id, uint64_t seq, Bytes message,
                              HostId /*from_host*/, Port /*from_port*/) {
  Stream& s = EnsureStarted(stream_id);
  if ((!s.syncing && seq < s.expected) || s.ready.count(seq) > 0) {
    duplicates_dropped_->Inc();
    return;
  }
  s.highest_seen = std::max(s.highest_seen, seq);
  s.ready.emplace(seq, std::move(message));  // hotlint: allow(hot-container-growth) -- out-of-order staging map, bounded by the receive window
  ready_depth_.Set(++ready_total_);
  if (s.syncing) {
    return;  // delivery deferred until the hold window closes
  }
  DrainReady(stream_id, s);
  if (s.expected <= s.highest_seen &&
      (s.ready.empty() ? true : s.ready.begin()->first != s.expected)) {
    MaybeScheduleNak(stream_id);
  }
}

void ReliableReceiver::FinishSync(uint64_t stream_id, Stream& s) {
  s.syncing = false;
  if (!s.ready.empty() && !s.partials.empty()) {
    s.expected = std::min(s.ready.begin()->first, s.partials.begin()->first);
  } else if (!s.ready.empty()) {
    s.expected = s.ready.begin()->first;
  } else if (!s.partials.empty()) {
    s.expected = s.partials.begin()->first;
  } else {
    s.expected = s.highest_seen + 1;
  }
  DrainReady(stream_id, s);
  if (s.expected <= s.highest_seen) {
    MaybeScheduleNak(stream_id);
  }
}

void ReliableReceiver::DrainReady(uint64_t stream_id, Stream& s) {
  // A declared gap can move `expected` past out-of-order messages already buffered in
  // `ready`. Purge those (their window was abandoned) as we drain: a single stale
  // entry at the front would otherwise block delivery on this stream forever.
  while (!s.ready.empty() && s.ready.begin()->first <= s.expected) {
    if (s.ready.begin()->first < s.expected) {
      s.ready.erase(s.ready.begin());
      ready_depth_.Set(--ready_total_);
      continue;
    }
    Bytes message = std::move(s.ready.begin()->second);
    s.ready.erase(s.ready.begin());
    ready_depth_.Set(--ready_total_);
    s.expected++;
    delivered_->Inc();
    deliver_(stream_id, message);
  }
  while (!s.partials.empty() && s.partials.begin()->first < s.expected) {
    s.partials.erase(s.partials.begin());
    partials_depth_.Set(--partials_total_);
  }
}

void ReliableReceiver::MaybeScheduleNak(uint64_t stream_id) {
  Stream& s = streams_[stream_id];
  if (s.nak_scheduled) {
    return;
  }
  s.nak_scheduled = true;
  sim_->ScheduleAfter(
      config_.nak_delay_us,
      [this, stream_id, alive = alive_]() {
        if (!*alive) {
          return;
        }
        NakScan(stream_id);
      },
      "proto.nak_scan");
}

void ReliableReceiver::NakScan(uint64_t stream_id) {  // hotlint: allow(hot-recursion) -- self-reschedules via a simulator timer: one frame per scan interval
  auto sit = streams_.find(stream_id);
  if (sit == streams_.end()) {
    return;
  }
  Stream& s = sit->second;
  if (s.syncing) {
    s.nak_scheduled = false;
    return;
  }
  // Determine the missing head-of-line sequences.
  std::vector<uint64_t> missing;
  uint64_t horizon = s.highest_seen;
  if (!s.partials.empty()) {
    horizon = std::max(horizon, s.partials.rbegin()->first);
  }
  for (uint64_t seq = s.expected; seq <= horizon && missing.size() < 64; ++seq) {
    if (s.ready.count(seq) > 0) {
      continue;
    }
    auto pit = s.partials.find(seq);
    if (pit != s.partials.end() &&
        sim_->Now() - pit->second.last_update < config_.partial_stall_us) {
      continue;  // reassembly in progress; don't request a full resend yet
    }
    missing.push_back(seq);  // hotlint: allow(hot-container-growth) -- NAK gap list, bounded by the receive window
  }
  if (missing.empty()) {
    if (!s.partials.empty()) {
      // Nothing to request yet, but reassemblies are pending: keep watching so a
      // stalled partial (lost final fragment) eventually gets NAKed.
      sim_->ScheduleAfter(
          config_.nak_retry_us,
          [this, stream_id, alive = alive_]() {
            if (*alive) {
              NakScan(stream_id);
            }
          },
          "proto.nak_scan");
      return;
    }
    s.nak_scheduled = false;
    s.cur_nak_retry = 0;
    return;
  }
  // Give up only when the sender has gone silent (crash or partition): as long as
  // packets keep arriving, the gap stays recoverable and we keep asking.
  if (sim_->Now() - s.last_packet_at > config_.sender_silence_give_up_us) {
    uint64_t first = s.expected;
    uint64_t last = s.ready.empty() ? horizon : s.ready.begin()->first - 1;
    gaps_->Inc(last - first + 1);
    if (recorder_ != nullptr) {
      recorder_->Record(sim_->Now(), telemetry::FlightEventKind::kGap, "",
                        "stream=" + std::to_string(stream_id) +  // hotlint: allow(hot-string) -- gap-repair telemetry detail: exception path
                            " first=" + std::to_string(first) +  // hotlint: allow(hot-string) -- gap-repair telemetry detail: exception path
                            " last=" + std::to_string(last));  // hotlint: allow(hot-string) -- gap-repair telemetry detail: exception path
    }
    if (on_gap_) {
      on_gap_(stream_id, first, last);
    }
    s.expected = last + 1;
    s.cur_nak_retry = 0;
    DrainReady(stream_id, s);
    if (s.expected > s.highest_seen) {
      s.nak_scheduled = false;
      return;
    }
  } else if (s.sender_host != kNoHost) {
    NakPacket nak;
    nak.stream_id = stream_id;
    nak.missing = missing;
    socket_->SendTo(s.sender_host, s.sender_port, FrameMessage(kPktNak, nak.Marshal()));
    naks_sent_->Inc();
    s.last_nak_at = sim_->Now();
  }
  // Exponential backoff while the same head sequence resists recovery (retransmits
  // of large messages may be queued behind a congested medium); reset on progress.
  if (missing.front() == s.gap_head_seq && s.cur_nak_retry > 0) {
    s.cur_nak_retry = std::min(2 * s.cur_nak_retry, config_.nak_retry_max_us);
  } else {
    s.gap_head_seq = missing.front();
    s.cur_nak_retry = config_.nak_retry_us;
  }
  sim_->ScheduleAfter(
      s.cur_nak_retry,
      [this, stream_id, alive = alive_]() {
        if (!*alive) {
          return;
        }
        NakScan(stream_id);
      },
      "proto.nak_scan");
}

}  // namespace ibus
