// Reliable publish/subscribe transport (paper §3.1): UDP broadcast plus a
// NAK/retransmission protocol. Under normal operation messages are delivered exactly
// once, in the order sent by each sender; messages from different senders are not
// ordered. After crash or long partition, delivery degrades to at-most-once (gaps are
// surfaced to the layer above rather than blocking forever).
//
// The sender also implements the paper's "batch parameter": small messages may be
// delayed briefly and gathered into one packet, trading latency for throughput
// (Appendix, Figures 5-7).
#ifndef SRC_PROTO_RELIABLE_H_
#define SRC_PROTO_RELIABLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/proto/packets.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"

namespace ibus {

struct ReliableConfig {
  // Largest chunk of application payload per datagram; derived from the segment MTU
  // with headroom for frame + packet headers.
  size_t chunk_size = 1380;

  // Batching (sender side).
  bool batching_enabled = false;
  size_t batch_max_bytes = 1380;   // flush when the packed batch would exceed this
  SimTime batch_delay_us = 2000;   // flush at most this long after the first message

  // Retransmission machinery.
  size_t retain_messages = 4096;          // sender-side retransmit buffer depth
  SimTime nak_delay_us = 2000;            // wait before NAKing (absorbs reordering)
  // Hold window when a stream is first heard: delivery is deferred this long so the
  // reordered first packets can settle before `expected` is pinned. Must exceed the
  // worst-case reorder skew for a loss-free start.
  SimTime sync_hold_us = 5000;
  // A message with some fragments received counts as missing (NAK-eligible) only
  // after its reassembly has stalled this long — fragments of a large message take
  // several frame times to arrive and must not trigger spurious retransmission.
  SimTime partial_stall_us = 30 * 1000;
  SimTime nak_retry_us = 25 * 1000;       // re-NAK period while still missing
  SimTime nak_retry_max_us = 200 * 1000;  // backoff ceiling for re-NAKs (congestion)
  SimTime heartbeat_interval_us = 100 * 1000;
  SimTime heartbeat_idle_cutoff_us = 1000 * 1000;  // stop heartbeating when idle
  SimTime retransmit_min_gap_us = 5000;   // per-seq retransmit rate limit
  // A receiver abandons a gap (at-most-once degradation) only when the sender has
  // been silent this long — as long as packets keep arriving, recovery keeps trying.
  SimTime sender_silence_give_up_us = 500 * 1000;
};

// Snapshot of the sender's registry counters (see the kMetricSender* names below).
struct ReliableSenderStats {
  uint64_t published = 0;
  uint64_t packets_sent = 0;
  uint64_t batches_sent = 0;
  uint64_t retransmits = 0;
  uint64_t naks_received = 0;
  uint64_t heartbeats_sent = 0;
};

// Registry names for the reliable-transport metrics. When the owner passes its
// registry to the constructors these show up next to the daemon's "bus." counters.
inline constexpr char kMetricSenderPublished[] = "proto.sender.published";
inline constexpr char kMetricSenderPacketsSent[] = "proto.sender.packets_sent";
inline constexpr char kMetricSenderBatchesSent[] = "proto.sender.batches_sent";
inline constexpr char kMetricSenderRetransmits[] = "proto.sender.retransmits";
inline constexpr char kMetricSenderNaksReceived[] = "proto.sender.naks_received";
inline constexpr char kMetricSenderHeartbeats[] = "proto.sender.heartbeats_sent";
inline constexpr char kMetricReceiverDelivered[] = "proto.receiver.delivered";
inline constexpr char kMetricReceiverDuplicates[] = "proto.receiver.duplicates_dropped";
inline constexpr char kMetricReceiverNaksSent[] = "proto.receiver.naks_sent";
inline constexpr char kMetricReceiverGaps[] = "proto.receiver.gaps";
// Queue-occupancy gauges (each name also has a monotone "<name>.hwm" twin; see
// telemetry::QueueDepthGauge). These are what busprof's queue plane reads.
inline constexpr char kMetricSenderRetainedDepth[] = "proto.sender.retained_depth";
inline constexpr char kMetricSenderBatchDepth[] = "proto.sender.batch_depth";
inline constexpr char kMetricReceiverReadyDepth[] = "proto.receiver.ready_depth";
inline constexpr char kMetricReceiverPartialsDepth[] = "proto.receiver.partials_depth";

// One broadcast stream. The daemon owns exactly one sender; `stream_id` must be unique
// across the bus (host id works). `metrics` (optional) is the registry the counters
// live in; without one the sender keeps a private registry.
class ReliableSender {
 public:
  // `recorder` (optional) is the owner's flight recorder; retransmits are logged there.
  ReliableSender(Simulator* sim, UdpSocket* socket, Port dst_port, uint64_t stream_id,
                 const ReliableConfig& config, telemetry::MetricsRegistry* metrics = nullptr,
                 telemetry::FlightRecorder* recorder = nullptr);
  ~ReliableSender();
  ReliableSender(const ReliableSender&) = delete;
  ReliableSender& operator=(const ReliableSender&) = delete;

  // Enqueues one application message for broadcast. With batching enabled, small
  // messages may be delayed up to batch_delay_us.
  Status Publish(Bytes message);

  // Flushes any pending batch immediately.
  void Flush();

  // Handles a NAK addressed to this stream (daemon routes by packet type).
  void HandleNak(const NakPacket& nak, HostId from_host, Port from_port);

  uint64_t stream_id() const { return stream_id_; }
  uint64_t next_seq() const { return next_seq_; }
  ReliableSenderStats stats() const;

 private:
  Status SendMessageAsPackets(uint64_t seq, const Bytes& message);
  void Retain(uint64_t seq, Bytes message);
  void ScheduleHeartbeat();
  void SendHeartbeat();
  void ScheduleBatchFlush();

  Simulator* sim_;
  UdpSocket* socket_;
  Port dst_port_;
  uint64_t stream_id_;
  ReliableConfig config_;

  uint64_t next_seq_ = 1;  // seq 0 means "nothing sent"
  std::deque<std::pair<uint64_t, Bytes>> retained_;
  std::unordered_map<uint64_t, SimTime> last_retransmit_;

  // Batch accumulation.
  std::vector<Bytes> batch_;
  size_t batch_bytes_ = 0;
  uint64_t batch_first_seq_ = 0;
  EventId batch_timer_ = 0;

  bool heartbeat_scheduled_ = false;
  SimTime last_activity_ = 0;

  std::unique_ptr<telemetry::MetricsRegistry> owned_metrics_;  // when none was passed
  telemetry::Counter* published_;
  telemetry::Counter* packets_sent_;
  telemetry::Counter* batches_sent_;
  telemetry::Counter* retransmits_;
  telemetry::Counter* naks_received_;
  telemetry::Counter* heartbeats_sent_;
  telemetry::QueueDepthGauge retained_depth_{nullptr, nullptr};
  telemetry::QueueDepthGauge batch_depth_{nullptr, nullptr};
  telemetry::FlightRecorder* recorder_;
  std::shared_ptr<bool> alive_;
};

// Snapshot of the receiver's registry counters (see the kMetricReceiver* names above).
struct ReliableReceiverStats {
  uint64_t delivered = 0;
  uint64_t duplicates_dropped = 0;
  uint64_t naks_sent = 0;
  uint64_t gaps = 0;  // messages given up on (at-most-once degradation)
};

// Tracks every stream heard on the bus port, reassembles fragments, restores
// per-stream order, dedups, and requests retransmission of missing sequences.
class ReliableReceiver {
 public:
  // `deliver` receives (stream_id, message) in per-stream order.
  // `on_gap` (optional) is informed when sequences are abandoned.
  using DeliverFn = std::function<void(uint64_t stream_id, const Bytes& message)>;
  using GapFn = std::function<void(uint64_t stream_id, uint64_t first, uint64_t last)>;

  // `recorder` (optional) is the owner's flight recorder; abandoned gaps are logged.
  ReliableReceiver(Simulator* sim, UdpSocket* socket, const ReliableConfig& config,
                   DeliverFn deliver, GapFn on_gap = nullptr,
                   telemetry::MetricsRegistry* metrics = nullptr,
                   telemetry::FlightRecorder* recorder = nullptr);
  ~ReliableReceiver();
  ReliableReceiver(const ReliableReceiver&) = delete;
  ReliableReceiver& operator=(const ReliableReceiver&) = delete;

  // Entry points, called by the owning daemon's socket handler.
  void HandleData(const DataPacket& pkt, HostId from_host, Port from_port);
  void HandleBatch(const BatchPacket& pkt, HostId from_host, Port from_port);
  void HandleHeartbeat(const HeartbeatPacket& pkt, HostId from_host, Port from_port);

  ReliableReceiverStats stats() const;

 private:
  struct Partial {
    std::vector<Bytes> chunks;
    size_t received = 0;
    SimTime last_update = 0;  // when the latest fragment arrived
  };
  struct Stream {
    bool started = false;
    // True during the initial hold window: the first packets of a newly heard stream
    // may arrive reordered, so delivery is deferred briefly and `expected` is pinned
    // to the lowest sequence seen in the window.
    bool syncing = false;
    uint64_t expected = 0;                    // next seq to deliver
    std::map<uint64_t, Bytes> ready;          // complete but out-of-order messages
    std::map<uint64_t, Partial> partials;     // fragment reassembly
    uint64_t highest_seen = 0;
    HostId sender_host = kNoHost;
    Port sender_port = 0;
    SimTime last_packet_at = 0;               // liveness: when we last heard the sender
    uint64_t gap_head_seq = 0;                // lowest missing seq last observed
    SimTime cur_nak_retry = 0;                // backed-off re-NAK interval
    SimTime last_nak_at = 0;
    bool nak_scheduled = false;
  };

  Stream& EnsureStarted(uint64_t stream_id);
  void FinishSync(uint64_t stream_id, Stream& s);
  void Ingest(uint64_t stream_id, uint64_t seq, Bytes message, HostId from_host,
              Port from_port);
  void DrainReady(uint64_t stream_id, Stream& s);
  void NoteSender(Stream& s, HostId host, Port port);
  void MaybeScheduleNak(uint64_t stream_id);
  void NakScan(uint64_t stream_id);

  Simulator* sim_;
  UdpSocket* socket_;
  ReliableConfig config_;
  DeliverFn deliver_;
  GapFn on_gap_;
  std::unordered_map<uint64_t, Stream> streams_;
  std::unique_ptr<telemetry::MetricsRegistry> owned_metrics_;  // when none was passed
  telemetry::Counter* delivered_;
  telemetry::Counter* duplicates_dropped_;
  telemetry::Counter* naks_sent_;
  telemetry::Counter* gaps_;
  // Aggregate staging occupancy across all streams (the per-site deltas keep the
  // gauge updates allocation-free).
  int64_t ready_total_ = 0;
  int64_t partials_total_ = 0;
  telemetry::QueueDepthGauge ready_depth_{nullptr, nullptr};
  telemetry::QueueDepthGauge partials_depth_{nullptr, nullptr};
  telemetry::FlightRecorder* recorder_;
  std::shared_ptr<bool> alive_;
};

}  // namespace ibus

#endif  // SRC_PROTO_RELIABLE_H_
