#include "src/wire/wire.h"

#include <cstring>

namespace ibus {

void WireWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void WireWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void WireWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void WireWriter::PutF64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void WireWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  PutRaw(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

void WireWriter::PutBytes(const Bytes& b) {
  PutVarint(b.size());
  PutRaw(b);
}

Result<uint8_t> WireReader::ReadU8() {
  IBUS_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> WireReader::ReadU16() {
  IBUS_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> WireReader::ReadU32() {
  IBUS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::ReadU64() {
  IBUS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 8;
  return v;
}

Result<int64_t> WireReader::ReadI64() {
  auto r = ReadU64();
  if (!r.ok()) {
    return r.status();
  }
  return static_cast<int64_t>(*r);
}

Result<double> WireReader::ReadF64() {
  auto r = ReadU64();
  if (!r.ok()) {
    return r.status();
  }
  double v = 0;
  uint64_t bits = *r;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<bool> WireReader::ReadBool() {
  auto r = ReadU8();
  if (!r.ok()) {
    return r.status();
  }
  return *r != 0;
}

Result<uint64_t> WireReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    IBUS_RETURN_IF_ERROR(Need(1));
    uint8_t byte = data_[pos_++];
    if (shift >= 64) {
      return DataLoss("wire: varint overflow");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  return v;
}

Result<std::string> WireReader::ReadString() {  // hotlint: allow(hot-by-value) -- decode boundary: builds the owning copy the caller asked for; peeks use ReadStringView
  auto len = ReadVarint();
  if (!len.ok()) {
    return len.status();
  }
  IBUS_RETURN_IF_ERROR(Need(*len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), *len);
  pos_ += *len;
  return s;
}

Result<std::string_view> WireReader::ReadStringView() {
  auto len = ReadVarint();
  if (!len.ok()) {
    return len.status();
  }
  IBUS_RETURN_IF_ERROR(Need(*len));
  std::string_view s(reinterpret_cast<const char*>(data_ + pos_), *len);
  pos_ += *len;
  return s;
}

Result<Bytes> WireReader::ReadBytes() {  // hotlint: allow(hot-by-value) -- decode boundary: the payload copy is the product
  auto len = ReadVarint();
  if (!len.ok()) {
    return len.status();
  }
  IBUS_RETURN_IF_ERROR(Need(*len));
  Bytes b(data_ + pos_, data_ + pos_ + *len);
  pos_ += *len;
  return b;
}

Result<Bytes> WireReader::ReadRaw(size_t n) {  // hotlint: allow(hot-by-value) -- decode boundary: the payload copy is the product
  IBUS_RETURN_IF_ERROR(Need(n));
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

// wirecheck: codec(frame, version=1)
// hotlint: hot
Bytes FrameMessage(uint8_t frame_type, const Bytes& payload) {  // hotlint: allow(hot-by-value) -- frame assembly: NRVO of the send buffer
  WireWriter w;
  w.PutU16(kFrameMagic);
  w.PutU8(kWireVersion);
  w.PutU8(frame_type);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload));
  w.PutRaw(payload);
  return w.Take();
}

// wirecheck: codec(frame, version=1)
Result<ParsedFrame> ParseFrame(const Bytes& frame) {  // hotlint: hot
  if (frame.size() < kFrameHeaderSize) {
    return DataLoss("frame: too short");
  }
  WireReader r(frame);
  auto magic = r.ReadU16();
  if (!magic.ok() || *magic != kFrameMagic) {
    return DataLoss("frame: bad magic");
  }
  auto version = r.ReadU8();
  if (!version.ok() || *version != kWireVersion) {
    return DataLoss("frame: version mismatch");
  }
  auto type = r.ReadU8();
  auto len = r.ReadU32();
  auto crc = r.ReadU32();
  if (!type.ok() || !len.ok() || !crc.ok()) {
    return DataLoss("frame: truncated header");
  }
  if (r.remaining() != *len) {
    return DataLoss("frame: length mismatch");
  }
  ParsedFrame out;
  out.frame_type = *type;
  // wirecheck: op(raw) -- the payload tail is sliced straight from the frame buffer, not read via the reader API
  out.payload = Bytes(frame.begin() + static_cast<ptrdiff_t>(kFrameHeaderSize), frame.end());
  if (Crc32(out.payload) != *crc) {
    return DataLoss("frame: checksum failure");
  }
  return out;
}

}  // namespace ibus
