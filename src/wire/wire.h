// Self-delimiting binary wire format used for everything that crosses the simulated
// network: bus frames, protocol control messages, marshalled data objects, RMI
// requests. Integers are little-endian; variable-length values carry explicit sizes;
// Reader is fully bounds-checked and never reads past the buffer.
#ifndef SRC_WIRE_WIRE_H_
#define SRC_WIRE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace ibus {

class WireWriter {
 public:
  WireWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }  // hotlint: allow(hot-container-growth) -- amortized encode-buffer growth: callers cannot know the final size
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  // LEB128-style unsigned varint.
  void PutVarint(uint64_t v);

  // Length-prefixed (varint) byte string.
  void PutString(std::string_view s);
  void PutBytes(const Bytes& b);

  // Raw append without a length prefix (caller manages framing).
  void PutRaw(const uint8_t* data, size_t len) { buf_.insert(buf_.end(), data, data + len); }  // hotlint: allow(hot-container-growth) -- amortized encode-buffer growth: callers cannot know the final size
  void PutRaw(const Bytes& b) { PutRaw(b.data(), b.size()); }

  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }  // hotlint: allow(hot-by-value) -- moves the buffer out: no copy
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class WireReader {
 public:
  explicit WireReader(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  Result<bool> ReadBool();
  Result<uint64_t> ReadVarint();
  Result<std::string> ReadString();
  // Zero-copy variant: the view aliases the reader's buffer and is valid only
  // while that buffer lives. The hot-path choice when the caller just inspects.
  Result<std::string_view> ReadStringView();
  Result<Bytes> ReadBytes();
  // Raw slice without a length prefix (caller manages framing).
  Result<Bytes> ReadRaw(size_t n);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n) const {
    if (size_ - pos_ < n) {
      return DataLoss("wire: truncated buffer");
    }
    return OkStatus();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Framing for datagrams and connection messages:
//   u16 magic 'IB' | u8 version | u8 frame_type | u32 payload_len | u32 crc | payload
// Detects corruption and version skew before any payload parsing happens.
constexpr uint16_t kFrameMagic = 0x4942;  // "IB"
constexpr uint8_t kWireVersion = 1;
constexpr size_t kFrameHeaderSize = 12;

Bytes FrameMessage(uint8_t frame_type, const Bytes& payload);

struct ParsedFrame {
  uint8_t frame_type = 0;
  Bytes payload;
};
Result<ParsedFrame> ParseFrame(const Bytes& frame);

}  // namespace ibus

#endif  // SRC_WIRE_WIRE_H_
