// News Monitor (paper §5): "subscribes to and displays all stories of interest to its
// user. Incoming stories are first displayed in a 'headline summary list.' This list
// format is defined by a 'view' that specifies a set of named attributes from incoming
// objects and formatting information. When the user selects a story in the summary
// list, the entire story is displayed" — via the object's metadata (P2). Property
// objects arriving on the same subjects are associated with the stories they
// reference and displayed alongside the attributes (§5.2).
//
// Headless by design: rendering produces text, which tests assert against and the
// examples print.
#ifndef SRC_SERVICES_NEWS_MONITOR_H_
#define SRC_SERVICES_NEWS_MONITOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/client.h"
#include "src/types/registry.h"

namespace ibus {

// "This list format is defined by a 'view' that specifies a set of named attributes
// from incoming objects and formatting information."
struct ViewDef {
  std::string name;
  std::vector<std::string> columns;  // attribute names to show in the summary list
  size_t column_width = 24;
};

class NewsMonitor {
 public:
  static Result<std::unique_ptr<NewsMonitor>> Create(BusClient* bus, TypeRegistry* registry,
                                                     const std::vector<std::string>& patterns,
                                                     ViewDef view);
  ~NewsMonitor();
  NewsMonitor(const NewsMonitor&) = delete;
  NewsMonitor& operator=(const NewsMonitor&) = delete;

  // The headline summary list: one row per story, columns per the view.
  std::string RenderSummary() const;

  // Full display of one story (by ref, e.g. "story:17"): every attribute plus any
  // associated properties, via the metadata-driven printer.
  Result<std::string> RenderStory(const std::string& ref) const;

  size_t story_count() const { return order_.size(); }
  // Number of stories that have at least one associated property.
  size_t annotated_count() const;
  DataObjectPtr story(const std::string& ref) const;

 private:
  NewsMonitor(BusClient* bus, TypeRegistry* registry, ViewDef view)
      : bus_(bus), registry_(registry), view_(std::move(view)) {}

  void HandleObject(const Message& m, const DataObjectPtr& obj);

  BusClient* bus_;
  TypeRegistry* registry_;
  ViewDef view_;
  std::vector<uint64_t> subs_;
  std::map<std::string, DataObjectPtr> stories_;  // ref -> story
  std::vector<std::string> order_;                // arrival order of refs
  // Properties that arrived before their story (associated on arrival).
  std::multimap<std::string, DataObjectPtr> orphan_properties_;
};

}  // namespace ibus

#endif  // SRC_SERVICES_NEWS_MONITOR_H_
