// TypeGossip: the meta-object protocol over the wire. Data objects travel
// self-describing at the structural level (attribute names + kind tags), but the full
// TypeDescriptor — supertype links and operation signatures — lives in each process's
// TypeRegistry. TypeGossip keeps registries converging across the bus:
//
//  * every new local definition is announced on "_ibus.types.announce" and learned by
//    every other gossip instance (P3 propagates without coordination);
//  * Resolve(name) fetches a descriptor on demand via the standard discovery exchange
//    on "_ibus.types.query" (P4: whoever knows the type answers).
//
// This is what lets a receiver that got an instance of a brand-new subtype also learn
// its place in the hierarchy and its operations — e.g. the News Monitor popping up
// menus for a service type it has never seen (paper §5.2).
#ifndef SRC_SERVICES_TYPE_GOSSIP_H_
#define SRC_SERVICES_TYPE_GOSSIP_H_

#include <functional>
#include <memory>
#include <string>

#include "src/bus/client.h"
#include "src/bus/discovery.h"
#include "src/types/registry.h"

namespace ibus {

inline constexpr char kTypeAnnounceSubject[] = "_ibus.types.announce";
inline constexpr char kTypeQuerySubject[] = "_ibus.types.query";

struct TypeGossipStats {
  uint64_t announced = 0;
  uint64_t learned = 0;
  uint64_t answered = 0;
};

class TypeGossip {
 public:
  static Result<std::unique_ptr<TypeGossip>> Create(BusClient* bus, TypeRegistry* registry);
  ~TypeGossip();
  TypeGossip(const TypeGossip&) = delete;
  TypeGossip& operator=(const TypeGossip&) = delete;

  // Announces every currently registered (non-builtin) type; future definitions are
  // announced automatically via the registry observer.
  Status AnnounceAll();

  // Ensures `type_name` is registered locally, asking the bus if necessary. The
  // callback receives OK once the type (and, transitively, its supertypes) is known.
  void Resolve(const std::string& type_name, SimTime timeout_us,
               std::function<void(Status)> done);

  const TypeGossipStats& stats() const { return stats_; }

 private:
  TypeGossip(BusClient* bus, TypeRegistry* registry)
      : bus_(bus), registry_(registry), alive_(std::make_shared<bool>(true)) {}

  void Announce(const TypeDescriptor& desc);
  Status LearnChain(const Bytes& payload);

  BusClient* bus_;
  TypeRegistry* registry_;
  uint64_t announce_sub_ = 0;
  std::unique_ptr<DiscoveryResponder> query_responder_;
  bool announcing_ = false;  // guards against re-announcing what we just learned
  TypeGossipStats stats_;
  std::shared_ptr<bool> alive_;
};

}  // namespace ibus

#endif  // SRC_SERVICES_TYPE_GOSSIP_H_
