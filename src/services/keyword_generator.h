// Keyword Generator (paper §5.2, Figure 4): "subscribes to stories on major subjects
// and searches the text of each story for 'keywords' that have been designated under
// several major 'categories'. For each Story object, a list of keywords is
// constructed as a named Property object of the Story object and published under the
// same subject. It also supports an interactive interface that allows clients to
// browse categories and associated keywords."
//
// Because the Property objects appear on the very subjects consumers already watch,
// every existing subscriber (e.g. the News Monitor) starts receiving the enrichment
// the moment this service comes on-line — no reconfiguration anywhere (P4).
#ifndef SRC_SERVICES_KEYWORD_GENERATOR_H_
#define SRC_SERVICES_KEYWORD_GENERATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/client.h"
#include "src/rmi/server.h"
#include "src/types/registry.h"

namespace ibus {

// Stable reference to a story used in Property object_refs: "story:<serial>".
std::string StoryRef(const DataObject& story);

struct KeywordGeneratorStats {
  uint64_t stories_scanned = 0;
  uint64_t properties_published = 0;
};

class KeywordGenerator {
 public:
  // `categories` maps a category name to the keywords designated under it.
  static Result<std::unique_ptr<KeywordGenerator>> Create(
      BusClient* bus, TypeRegistry* registry, const std::string& pattern,
      std::map<std::string, std::vector<std::string>> categories);
  ~KeywordGenerator();
  KeywordGenerator(const KeywordGenerator&) = delete;
  KeywordGenerator& operator=(const KeywordGenerator&) = delete;

  // Pure matching logic (exposed for tests): keywords found in the story text,
  // grouped in designation order.
  std::vector<std::string> ExtractKeywords(const DataObject& story) const;

  const KeywordGeneratorStats& stats() const { return stats_; }

 private:
  KeywordGenerator(BusClient* bus, TypeRegistry* registry,
                   std::map<std::string, std::vector<std::string>> categories)
      : bus_(bus), registry_(registry), categories_(std::move(categories)) {}

  void HandleStory(const Message& m, const DataObjectPtr& story);

  BusClient* bus_;
  TypeRegistry* registry_;
  std::map<std::string, std::vector<std::string>> categories_;
  uint64_t sub_ = 0;
  std::unique_ptr<RmiServer> rmi_;  // the interactive browse interface
  KeywordGeneratorStats stats_;
};

}  // namespace ibus

#endif  // SRC_SERVICES_KEYWORD_GENERATOR_H_
