#include "src/services/bus_monitor.h"

#include <cstdio>

#include "src/wire/wire.h"

namespace ibus {

namespace {
constexpr const char* kStatsPrefix = kReservedStatsPrefix;  // see src/subject/subject.h
}  // namespace

// wirecheck: codec(stats_snapshot, version=3)
Bytes DaemonStatsSnapshot::Marshal() const {
  WireWriter w;
  w.PutU8(kWireVersion);
  w.PutString(host_name);
  w.PutI64(reported_at);
  w.PutU64(publishes);
  w.PutU64(dispatched);
  w.PutU64(deliveries);
  w.PutU64(subscriptions);
  w.PutU64(wire_packets_sent);
  w.PutU64(retransmits);
  w.PutU64(receiver_gaps);
  w.PutU64(sub_churn);
  w.PutU64(sender_retained_depth);
  w.PutU64(sender_retained_hwm);
  w.PutU64(sender_batch_depth);
  w.PutU64(sender_batch_hwm);
  w.PutU64(receiver_ready_depth);
  w.PutU64(receiver_ready_hwm);
  w.PutU64(receiver_partials_depth);
  w.PutU64(receiver_partials_hwm);
  w.PutVarint(flows.size());
  for (const SubjectFlowEntry& f : flows) {
    w.PutString(f.prefix);
    w.PutU64(f.publishes);
    w.PutU64(f.deliveries);
    w.PutU64(f.bytes_in);
    w.PutU64(f.bytes_out);
  }
  return w.Take();
}

// wirecheck: codec(stats_snapshot, version=3)
Result<DaemonStatsSnapshot> DaemonStatsSnapshot::Unmarshal(const Bytes& b) {
  WireReader r(b);
  auto version = r.ReadU8();
  if (!version.ok()) {
    return DataLoss("stats snapshot: truncated");
  }
  if (*version != kWireVersion) {
    return Unimplemented("stats snapshot: unknown version " + std::to_string(*version));
  }
  DaemonStatsSnapshot s;
  auto host = r.ReadString();
  auto at = r.ReadI64();
  auto pubs = r.ReadU64();
  auto dispatched = r.ReadU64();
  auto deliveries = r.ReadU64();
  auto subs = r.ReadU64();
  auto packets = r.ReadU64();
  auto retrans = r.ReadU64();
  auto gaps = r.ReadU64();
  auto churn = r.ReadU64();
  // v3 queue-occupancy plane: depth/hwm pairs in declaration order.
  Result<uint64_t> queue_fields[8] = {r.ReadU64(), r.ReadU64(), r.ReadU64(), r.ReadU64(),
                                      r.ReadU64(), r.ReadU64(), r.ReadU64(), r.ReadU64()};
  auto flow_count = r.ReadVarint();
  if (!host.ok() || !at.ok() || !pubs.ok() || !dispatched.ok() || !deliveries.ok() ||
      !subs.ok() || !packets.ok() || !retrans.ok() || !gaps.ok() || !churn.ok() ||
      !flow_count.ok()) {
    return DataLoss("stats snapshot: truncated");
  }
  for (const auto& f : queue_fields) {
    if (!f.ok()) {
      return DataLoss("stats snapshot: truncated");
    }
  }
  s.host_name = host.take();
  s.reported_at = *at;
  s.publishes = *pubs;
  s.dispatched = *dispatched;
  s.deliveries = *deliveries;
  s.subscriptions = *subs;
  s.wire_packets_sent = *packets;
  s.retransmits = *retrans;
  s.receiver_gaps = *gaps;
  s.sub_churn = *churn;
  s.sender_retained_depth = *queue_fields[0];  // wirecheck: allow(truncation-unsafe) -- the range-for above ok-checks every element before any deref
  s.sender_retained_hwm = *queue_fields[1];
  s.sender_batch_depth = *queue_fields[2];
  s.sender_batch_hwm = *queue_fields[3];
  s.receiver_ready_depth = *queue_fields[4];
  s.receiver_ready_hwm = *queue_fields[5];
  s.receiver_partials_depth = *queue_fields[6];
  s.receiver_partials_hwm = *queue_fields[7];
  // Each flow entry costs at least five bytes on the wire; a count beyond the
  // remaining buffer is garbage and must not size the allocation below.
  if (*flow_count > r.remaining()) {
    return DataLoss("stats snapshot: implausible flow count");
  }
  s.flows.reserve(*flow_count);
  for (uint64_t i = 0; i < *flow_count; ++i) {
    SubjectFlowEntry f;
    auto prefix = r.ReadString();
    auto fpubs = r.ReadU64();
    auto fdeliv = r.ReadU64();
    auto fbin = r.ReadU64();
    auto fbout = r.ReadU64();
    if (!prefix.ok() || !fpubs.ok() || !fdeliv.ok() || !fbin.ok() || !fbout.ok()) {
      return DataLoss("stats snapshot: truncated flow entry");
    }
    f.prefix = prefix.take();
    f.publishes = *fpubs;
    f.deliveries = *fdeliv;
    f.bytes_in = *fbin;
    f.bytes_out = *fbout;
    s.flows.push_back(std::move(f));
  }
  if (!r.AtEnd()) {
    return DataLoss("stats snapshot: trailing bytes");
  }
  return s;
}

Result<std::unique_ptr<StatsReporter>> StatsReporter::Create(BusClient* bus,
                                                             const BusDaemon* daemon,
                                                             SimTime interval_us) {
  if (interval_us <= 0) {
    return InvalidArgument("stats reporter: interval must be positive");
  }
  auto reporter =
      std::unique_ptr<StatsReporter>(new StatsReporter(bus, daemon, interval_us));
  reporter->PublishSnapshot();
  return reporter;
}

StatsReporter::~StatsReporter() { *alive_ = false; }

void StatsReporter::PublishSnapshot() {
  // Every field reads straight out of the host's metrics registry: the daemon and
  // its reliable sender/receiver all count there (no duplicated counting paths).
  const telemetry::MetricsRegistry& metrics = daemon_->metrics();
  DaemonStatsSnapshot s;
  s.host_name = bus_->network()->HostName(bus_->host());
  s.reported_at = bus_->sim()->Now();
  s.publishes = metrics.CounterValue(kMetricPublishes);
  s.dispatched = metrics.CounterValue(kMetricDispatched);
  s.deliveries = metrics.CounterValue(kMetricDeliveries);
  s.subscriptions = static_cast<uint64_t>(metrics.GaugeValue(kMetricSubscriptions));
  s.wire_packets_sent = metrics.CounterValue(kMetricSenderPacketsSent);
  s.retransmits = metrics.CounterValue(kMetricSenderRetransmits);
  s.receiver_gaps = metrics.CounterValue(kMetricReceiverGaps);
  s.sub_churn = metrics.CounterValue(kMetricSubChurn);
  auto depth = [&metrics](const char* name) {
    return static_cast<uint64_t>(metrics.GaugeValue(name));
  };
  auto hwm = [&metrics](const char* name) {
    return static_cast<uint64_t>(metrics.GaugeValue(std::string(name) + ".hwm"));
  };
  s.sender_retained_depth = depth(kMetricSenderRetainedDepth);
  s.sender_retained_hwm = hwm(kMetricSenderRetainedDepth);
  s.sender_batch_depth = depth(kMetricSenderBatchDepth);
  s.sender_batch_hwm = hwm(kMetricSenderBatchDepth);
  s.receiver_ready_depth = depth(kMetricReceiverReadyDepth);
  s.receiver_ready_hwm = hwm(kMetricReceiverReadyDepth);
  s.receiver_partials_depth = depth(kMetricReceiverPartialsDepth);
  s.receiver_partials_hwm = hwm(kMetricReceiverPartialsDepth);
  for (const auto& [prefix, flow] : daemon_->subject_flows()) {
    SubjectFlowEntry f;
    f.prefix = prefix;
    f.publishes = flow.publishes;
    f.deliveries = flow.deliveries;
    f.bytes_in = flow.bytes_in;
    f.bytes_out = flow.bytes_out;
    s.flows.push_back(std::move(f));
  }
  Message m;
  m.subject = kStatsPrefix + s.host_name;
  m.type_name = "_ibus.stats";
  m.payload = s.Marshal();
  if (bus_->PublishInternal(std::move(m)).ok()) {
    reports_++;
  }
  bus_->sim()->ScheduleAfter(
      interval_us_,
      [this, alive = alive_]() {
        if (*alive) {
          PublishSnapshot();
        }
      },
      "stats.report");
}

Result<std::unique_ptr<StatsCollector>> StatsCollector::Create(BusClient* bus) {
  auto collector = std::unique_ptr<StatsCollector>(new StatsCollector(bus));
  auto sub = bus->Subscribe(std::string(kStatsPrefix) + ">",
                            [c = collector.get()](const Message& m) {
                              auto s = DaemonStatsSnapshot::Unmarshal(m.payload);
                              if (s.ok()) {
                                c->snapshots_[s->host_name] = s.take();
                              }
                            });
  if (!sub.ok()) {
    return sub.status();
  }
  collector->sub_ = *sub;
  return collector;
}

StatsCollector::~StatsCollector() {
  if (sub_ != 0) {
    bus_->Unsubscribe(sub_);
  }
}

std::string StatsCollector::RenderTable() const {
  std::string out =
      "host             pubs   disp  deliv   subs  wire-pkts  retrans  gaps\n";
  char line[160];
  for (const auto& [host, s] : snapshots_) {
    std::snprintf(line, sizeof(line), "%-14s %6llu %6llu %6llu %6llu %10llu %8llu %5llu\n",
                  host.c_str(), static_cast<unsigned long long>(s.publishes),
                  static_cast<unsigned long long>(s.dispatched),
                  static_cast<unsigned long long>(s.deliveries),
                  static_cast<unsigned long long>(s.subscriptions),
                  static_cast<unsigned long long>(s.wire_packets_sent),
                  static_cast<unsigned long long>(s.retransmits),
                  static_cast<unsigned long long>(s.receiver_gaps));
    out += line;
  }
  return out;
}

}  // namespace ibus
