// Bus observability: each host runs a StatsReporter next to its daemon, periodically
// publishing the daemon's counters on "_ibus.stats.<hostname>"; a StatsCollector
// anywhere on the bus aggregates them into a live table. Operations staff in the
// paper's installations watched exactly this kind of feed — and it is itself just
// subject-based pub/sub (the bus monitoring the bus).
#ifndef SRC_SERVICES_BUS_MONITOR_H_
#define SRC_SERVICES_BUS_MONITOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/client.h"

namespace ibus {

// One host's per-subject flow counters as carried in the stats snapshot.
struct SubjectFlowEntry {
  std::string prefix;  // subject root element (or "(other)" overflow bucket)
  uint64_t publishes = 0;
  uint64_t deliveries = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

struct DaemonStatsSnapshot {
  std::string host_name;
  SimTime reported_at = 0;
  uint64_t publishes = 0;
  uint64_t dispatched = 0;
  uint64_t deliveries = 0;
  uint64_t subscriptions = 0;
  uint64_t wire_packets_sent = 0;
  uint64_t retransmits = 0;
  uint64_t receiver_gaps = 0;
  uint64_t sub_churn = 0;                // v2: lifetime subscribe/unsubscribe ops
  // v3: queue-occupancy plane — live depth plus monotone high-watermark for each
  // daemon-side protocol queue (the "proto.*_depth" gauges in src/proto/reliable.h).
  uint64_t sender_retained_depth = 0;
  uint64_t sender_retained_hwm = 0;
  uint64_t sender_batch_depth = 0;
  uint64_t sender_batch_hwm = 0;
  uint64_t receiver_ready_depth = 0;
  uint64_t receiver_ready_hwm = 0;
  uint64_t receiver_partials_depth = 0;
  uint64_t receiver_partials_hwm = 0;
  std::vector<SubjectFlowEntry> flows;   // v2: per-subject-prefix flow accounting

  // Versioned wire format (v1 had no version byte and no churn/flow fields; the
  // format change is breaking, hence the explicit version from v2 on; v3 adds the
  // eight queue-occupancy fields). Unmarshal rejects unknown versions with
  // kUnimplemented.
  static constexpr uint8_t kWireVersion = 3;
  Bytes Marshal() const;
  static Result<DaemonStatsSnapshot> Unmarshal(const Bytes& b);
};

class StatsReporter {
 public:
  static Result<std::unique_ptr<StatsReporter>> Create(BusClient* bus, const BusDaemon* daemon,
                                                       SimTime interval_us = kSecond);
  ~StatsReporter();
  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  uint64_t reports_published() const { return reports_; }

 private:
  StatsReporter(BusClient* bus, const BusDaemon* daemon, SimTime interval_us)
      : bus_(bus),
        daemon_(daemon),
        interval_us_(interval_us),
        alive_(std::make_shared<bool>(true)) {}

  void PublishSnapshot();

  BusClient* bus_;
  const BusDaemon* daemon_;
  SimTime interval_us_;
  uint64_t reports_ = 0;
  std::shared_ptr<bool> alive_;
};

class StatsCollector {
 public:
  static Result<std::unique_ptr<StatsCollector>> Create(BusClient* bus);
  ~StatsCollector();
  StatsCollector(const StatsCollector&) = delete;
  StatsCollector& operator=(const StatsCollector&) = delete;

  // Latest snapshot per host name.
  const std::map<std::string, DaemonStatsSnapshot>& snapshots() const { return snapshots_; }

  // A fleet-health table for operator consoles.
  std::string RenderTable() const;

 private:
  explicit StatsCollector(BusClient* bus) : bus_(bus) {}

  BusClient* bus_;
  uint64_t sub_ = 0;
  std::map<std::string, DaemonStatsSnapshot> snapshots_;
};

}  // namespace ibus

#endif  // SRC_SERVICES_BUS_MONITOR_H_
