#include "src/services/health_monitor.h"

namespace ibus {

using telemetry::HealthEvent;
using telemetry::HealthEventKind;
using telemetry::HealthSeverity;

Result<std::unique_ptr<HealthEvaluator>> HealthEvaluator::Create(BusClient* bus,
                                                                 BusDaemon* daemon,
                                                                 const HealthConfig& config) {
#if IBUS_TELEMETRY
  if (config.interval_us <= 0) {
    return InvalidArgument("health evaluator: interval must be positive");
  }
  if (config.clear_hold_intervals < 1) {
    return InvalidArgument("health evaluator: clear_hold_intervals must be >= 1");
  }
  auto evaluator =
      std::unique_ptr<HealthEvaluator>(new HealthEvaluator(bus, daemon, config));
  auto sub = bus->Subscribe(std::string(kReservedStatsPrefix) + ">",
                            [e = evaluator.get()](const Message& m) {
                              e->HandleStatsMessage(m);
                            });
  if (!sub.ok()) {
    return sub.status();
  }
  evaluator->stats_sub_ = *sub;
  bus->sim()->ScheduleAfter(
      config.interval_us,
      [e = evaluator.get(), alive = evaluator->alive_]() {
        if (*alive) {
          e->Tick();
        }
      },
      "health.tick");
  return evaluator;
#else
  (void)bus;
  (void)daemon;
  (void)config;
  return FailedPrecondition("health: built with IB_TELEMETRY=OFF, health plane disabled");
#endif
}

HealthEvaluator::HealthEvaluator(BusClient* bus, BusDaemon* daemon,
                                 const HealthConfig& config)
    : bus_(bus),
      daemon_(daemon),
      config_(config),
      node_(bus->network()->HostName(bus->host())),
      alive_(std::make_shared<bool>(true)) {}

HealthEvaluator::~HealthEvaluator() {
  *alive_ = false;
  if (stats_sub_ != 0) {
    bus_->Unsubscribe(stats_sub_);
  }
}

size_t HealthEvaluator::active_alerts() const {
  size_t n = 0;
  n += slow_consumer_.active ? 1 : 0;
  n += retransmit_storm_.active ? 1 : 0;
  n += subscription_churn_.active ? 1 : 0;
  for (const auto& [peer, state] : peers_) {
    n += state.rule.active ? 1 : 0;
  }
  return n;
}

void HealthEvaluator::HandleStatsMessage(const Message& m) {
  // The peer's host name is the subject suffix ("_ibus.stats.<host>"); no need to
  // unmarshal the snapshot just to track feed liveness.
  constexpr size_t kPrefixLen = sizeof(kReservedStatsPrefix) - 1;
  if (m.subject.size() <= kPrefixLen) {
    return;
  }
  std::string peer = m.subject.substr(kPrefixLen);
  if (peer == node_) {
    return;  // our own reporter is not a peer
  }
  peers_[peer].last_seen = bus_->sim()->Now();
}

void HealthEvaluator::Tick() {
  const telemetry::MetricsRegistry& metrics = *daemon_->metrics();
  const uint64_t gaps = metrics.CounterValue(kMetricReceiverGaps);
  const uint64_t retransmits = metrics.CounterValue(kMetricSenderRetransmits);
  const uint64_t churn = metrics.CounterValue(kMetricSubChurn);

  EvaluateRule(slow_consumer_, HealthEventKind::kSlowConsumer, "",
               static_cast<int64_t>(gaps - last_gaps_), config_.slow_consumer_raise,
               config_.slow_consumer_clear);
  EvaluateRule(retransmit_storm_, HealthEventKind::kRetransmitStorm, "",
               static_cast<int64_t>(retransmits - last_retransmits_),
               config_.retransmit_raise, config_.retransmit_clear);
  EvaluateRule(subscription_churn_, HealthEventKind::kSubscriptionChurn, "",
               static_cast<int64_t>(churn - last_churn_), config_.churn_raise,
               config_.churn_clear);
  last_gaps_ = gaps;
  last_retransmits_ = retransmits;
  last_churn_ = churn;

  const SimTime now = bus_->sim()->Now();
  for (auto& [peer, state] : peers_) {
    const int64_t silent_us = now - state.last_seen;
    // Clearing needs silence strictly below the threshold, hence raise-1 as clear.
    EvaluateRule(state.rule, HealthEventKind::kPartitionSuspected, peer, silent_us,
                 config_.peer_silence_us, config_.peer_silence_us - 1);
  }

  bus_->sim()->ScheduleAfter(
      config_.interval_us,
      [this, alive = alive_]() {
        if (*alive) {
          Tick();
        }
      },
      "health.tick");
}

void HealthEvaluator::EvaluateRule(RuleState& state, HealthEventKind kind,
                                   const std::string& subject, int64_t value,
                                   int64_t raise, int64_t clear) {
  if (!state.active) {
    if (value >= raise) {
      state.active = true;
      state.clean_intervals = 0;
      const bool critical =
          config_.critical_factor > 0 && value >= raise * config_.critical_factor;
      PublishEvent(kind, critical ? HealthSeverity::kCritical : HealthSeverity::kWarning,
                   subject, value, raise);
    }
    return;
  }
  if (value <= clear) {
    if (++state.clean_intervals >= config_.clear_hold_intervals) {
      state.active = false;
      state.clean_intervals = 0;
      PublishEvent(kind, HealthSeverity::kClear, subject, value, clear);
    }
  } else {
    state.clean_intervals = 0;  // the episode is still going; restart the hold
  }
}

void HealthEvaluator::PublishEvent(HealthEventKind kind, HealthSeverity severity,
                                   const std::string& subject, int64_t value,
                                   int64_t threshold) {
  HealthEvent e;
  e.kind = kind;
  e.severity = severity;
  e.node = node_;
  e.subject = subject;
  e.value = value;
  e.threshold = threshold;
  e.at_us = bus_->sim()->Now();
  events_.push_back(e);
  daemon_->flight_recorder()->Record(
      e.at_us, telemetry::FlightEventKind::kHealth, telemetry::HealthSubject(kind, node_),
      std::string(HealthSeverityName(severity)) + " value=" + std::to_string(value) +
          " threshold=" + std::to_string(threshold));
  Message m;
  m.subject = telemetry::HealthSubject(kind, node_);
  m.type_name = telemetry::kHealthEventType;
  m.payload = e.Marshal();
  bus_->PublishInternal(std::move(m));
}

}  // namespace ibus
