#include "src/services/type_gossip.h"

#include "src/wire/wire.h"

namespace ibus {

namespace {

bool IsBuiltin(const std::string& name) { return name == kRootTypeName || name == "property"; }

// Marshals the descriptor chain for `name`, supertype-first (so a learner can define
// them in order), excluding builtins every registry already has.
// wirecheck: codec(type_chain, version=0)
Bytes MarshalChain(const TypeRegistry& registry, const std::string& name) {
  std::vector<const TypeDescriptor*> chain;
  std::string cur = name;
  while (!cur.empty() && !IsBuiltin(cur)) {
    const TypeDescriptor* d = registry.Find(cur);
    if (d == nullptr) {
      break;
    }
    chain.push_back(d);
    cur = d->supertype();
  }
  WireWriter w;
  w.PutVarint(chain.size());
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    (*it)->ToWire(&w);
  }
  return w.Take();
}

}  // namespace

Result<std::unique_ptr<TypeGossip>> TypeGossip::Create(BusClient* bus, TypeRegistry* registry) {
  auto gossip = std::unique_ptr<TypeGossip>(new TypeGossip(bus, registry));

  // Learn every announcement heard on the bus.
  auto sub = bus->Subscribe(kTypeAnnounceSubject, [g = gossip.get()](const Message& m) {
    g->LearnChain(m.payload);
  });
  if (!sub.ok()) {
    return sub.status();
  }
  gossip->announce_sub_ = *sub;

  // Answer on-demand queries for types we know.
  auto responder = DiscoveryResponder::Create(
      bus, kTypeQuerySubject, [g = gossip.get()](const Message& query) {
        std::string wanted = ToString(query.payload);
        if (!g->registry_->Has(wanted)) {
          return Bytes();  // empty answer = "don't know"
        }
        g->stats_.answered++;
        return MarshalChain(*g->registry_, wanted);
      });
  if (!responder.ok()) {
    return responder.status();
  }
  gossip->query_responder_ = responder.take();

  // Announce everything defined locally from now on.
  registry->AddDefineObserver([g = gossip.get(), alive = gossip->alive_](
                                  const TypeDescriptor& desc) {
    if (*alive && !g->announcing_) {
      g->Announce(desc);
    }
  });
  return gossip;
}

TypeGossip::~TypeGossip() {
  *alive_ = false;
  if (announce_sub_ != 0) {
    bus_->Unsubscribe(announce_sub_);
  }
}

void TypeGossip::Announce(const TypeDescriptor& desc) {
  if (IsBuiltin(desc.name())) {
    return;
  }
  Message m;
  m.subject = kTypeAnnounceSubject;
  m.type_name = "_type.announce";
  m.payload = MarshalChain(*registry_, desc.name());
  if (bus_->PublishInternal(std::move(m)).ok()) {
    stats_.announced++;
  }
}

Status TypeGossip::AnnounceAll() {
  for (const std::string& name : registry_->TypeNames()) {
    if (!IsBuiltin(name)) {
      Announce(*registry_->Find(name));
    }
  }
  return OkStatus();
}

// wirecheck: codec(type_chain, version=0)
Status TypeGossip::LearnChain(const Bytes& payload) {
  WireReader r(payload);
  auto count = r.ReadVarint();
  if (!count.ok()) {
    return count.status();
  }
  // Each descriptor costs many bytes on the wire; a count beyond the payload
  // budget is hostile or corrupt.
  if (*count > r.remaining()) {
    return DataLoss("type gossip: implausible chain length");
  }
  announcing_ = true;  // learned types must not echo back as announcements
  Status last;
  for (uint64_t i = 0; i < *count; ++i) {
    auto desc = TypeDescriptor::FromWire(&r);
    if (!desc.ok()) {
      announcing_ = false;
      return desc.status();
    }
    bool fresh = !registry_->Has(desc->name());
    Status s = registry_->Define(*desc);
    if (s.ok() && fresh) {
      stats_.learned++;
    }
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) {
      last = s;
    }
  }
  announcing_ = false;
  if (!r.AtEnd()) {
    return DataLoss("type gossip: trailing bytes after chain");
  }
  return last;
}

void TypeGossip::Resolve(const std::string& type_name, SimTime timeout_us,
                         std::function<void(Status)> done) {
  if (registry_->Has(type_name)) {
    done(OkStatus());
    return;
  }
  Status s = DiscoveryQuery::Run(
      bus_, kTypeQuerySubject, timeout_us,
      [this, type_name, done = std::move(done), alive = alive_](std::vector<Message> answers) {
        if (!*alive) {
          return;
        }
        for (const Message& m : answers) {
          if (!m.payload.empty() && LearnChain(m.payload).ok() &&
              registry_->Has(type_name)) {
            done(OkStatus());
            return;
          }
        }
        done(NotFound("type '" + type_name + "' unknown on the bus"));
      },
      ToBytes(type_name));
  if (!s.ok()) {
    done(s);
  }
}

}  // namespace ibus
