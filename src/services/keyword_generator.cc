#include "src/services/keyword_generator.h"

#include <algorithm>
#include <cctype>

namespace ibus {

namespace {

std::string Lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

std::string StoryRef(const DataObject& story) {
  // Keyed by concrete type + serial: vendors number their wires independently.
  return story.type_name() + ":" + std::to_string(story.Get("serial").NumberAsI64());
}

Result<std::unique_ptr<KeywordGenerator>> KeywordGenerator::Create(
    BusClient* bus, TypeRegistry* registry, const std::string& pattern,
    std::map<std::string, std::vector<std::string>> categories) {
  auto gen = std::unique_ptr<KeywordGenerator>(
      new KeywordGenerator(bus, registry, std::move(categories)));

  auto sub = bus->SubscribeObjects(
      pattern, [g = gen.get()](const Message& m, const DataObjectPtr& obj) {
        // Skip non-objects and our own Property publications (they arrive on the same
        // subjects we subscribe to).
        if (obj == nullptr || obj->type_name() == "property") {
          return;
        }
        g->HandleStory(m, obj);
      });
  if (!sub.ok()) {
    return sub.status();
  }
  gen->sub_ = *sub;

  // Interactive browse interface as a self-describing service.
  auto service = std::make_shared<DynamicService>("keyword_service");
  OperationDef cats;
  cats.name = "categories";
  cats.result_type = "list";
  service->AddOperation(cats, [g = gen.get()](const std::vector<Value>&) -> Result<Value> {
    Value::List out;
    for (const auto& [name, words] : g->categories_) {
      out.push_back(Value(name));
    }
    return Value(std::move(out));
  });
  OperationDef words;
  words.name = "keywords";
  words.result_type = "list";
  words.params = {ParamDef{"category", "string"}};
  service->AddOperation(words, [g = gen.get()](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1 || !args[0].is_string()) {
      return InvalidArgument("keywords(category)");
    }
    auto it = g->categories_.find(args[0].AsString());
    if (it == g->categories_.end()) {
      return NotFound("no category '" + args[0].AsString() + "'");
    }
    Value::List out;
    for (const std::string& w : it->second) {
      out.push_back(Value(w));
    }
    return Value(std::move(out));
  });
  OperationDef add;
  add.name = "add_keyword";
  add.result_type = "bool";
  add.params = {ParamDef{"category", "string"}, ParamDef{"word", "string"}};
  service->AddOperation(add, [g = gen.get()](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2 || !args[0].is_string() || !args[1].is_string()) {
      return InvalidArgument("add_keyword(category, word)");
    }
    g->categories_[args[0].AsString()].push_back(args[1].AsString());
    return Value(true);
  });
  auto rmi = RmiServer::Create(bus, "svc.keywords", service);
  if (!rmi.ok()) {
    return rmi.status();
  }
  gen->rmi_ = rmi.take();
  return gen;
}

KeywordGenerator::~KeywordGenerator() {
  if (sub_ != 0) {
    bus_->Unsubscribe(sub_);
  }
}

std::vector<std::string> KeywordGenerator::ExtractKeywords(const DataObject& story) const {
  std::string text = Lowered(story.Get("headline").is_string() ? story.Get("headline").AsString()
                                                               : "");
  text += ' ';
  text += Lowered(story.Get("body").is_string() ? story.Get("body").AsString() : "");
  std::vector<std::string> found;
  for (const auto& [category, words] : categories_) {
    for (const std::string& word : words) {
      if (text.find(Lowered(word)) != std::string::npos) {
        found.push_back(word);
      }
    }
  }
  return found;
}

void KeywordGenerator::HandleStory(const Message& m, const DataObjectPtr& story) {
  stats_.stories_scanned++;
  std::vector<std::string> keywords = ExtractKeywords(*story);
  if (keywords.empty()) {
    return;
  }
  auto prop = registry_->NewInstance("property");
  if (!prop.ok()) {
    return;
  }
  (*prop)->Set("object_ref", Value(StoryRef(*story))).ok();
  (*prop)->Set("name", Value(std::string("keywords"))).ok();
  Value::List list;
  for (const std::string& k : keywords) {
    list.push_back(Value(k));
  }
  (*prop)->Set("value", Value(std::move(list))).ok();
  if (bus_->PublishObject(m.subject, **prop).ok()) {
    stats_.properties_published++;
  }
}

}  // namespace ibus
