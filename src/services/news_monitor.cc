#include "src/services/news_monitor.h"

#include "src/services/keyword_generator.h"
#include "src/types/printer.h"

namespace ibus {

Result<std::unique_ptr<NewsMonitor>> NewsMonitor::Create(
    BusClient* bus, TypeRegistry* registry, const std::vector<std::string>& patterns,
    ViewDef view) {
  auto monitor = std::unique_ptr<NewsMonitor>(new NewsMonitor(bus, registry, std::move(view)));
  for (const std::string& pattern : patterns) {
    auto sub = bus->SubscribeObjects(
        pattern, [m = monitor.get()](const Message& msg, const DataObjectPtr& obj) {
          if (obj != nullptr) {
            m->HandleObject(msg, obj);
          }
        });
    if (!sub.ok()) {
      return sub.status();
    }
    monitor->subs_.push_back(*sub);
  }
  return monitor;
}

NewsMonitor::~NewsMonitor() {
  for (uint64_t sub : subs_) {
    bus_->Unsubscribe(sub);
  }
}

void NewsMonitor::HandleObject(const Message& /*m*/, const DataObjectPtr& obj) {
  if (obj->type_name() == "property") {
    // §5.2: "configured to accept Property objects, to associate them with the
    // objects they reference, and to display them along with the attributes".
    const Value& ref = obj->Get("object_ref");
    const Value& name = obj->Get("name");
    if (!ref.is_string() || !name.is_string()) {
      return;
    }
    auto it = stories_.find(ref.AsString());
    if (it != stories_.end()) {
      it->second->SetProperty(name.AsString(), obj->Get("value"));
    } else {
      orphan_properties_.emplace(ref.AsString(), obj);
    }
    return;
  }
  // Anything with a serial is treated as a story-like object; the monitor does not
  // hard-code the concrete subtype (new vendor subtypes display immediately, P2).
  if (obj->Get("serial").is_null()) {
    return;
  }
  std::string ref = StoryRef(*obj);
  if (stories_.emplace(ref, obj).second) {
    order_.push_back(ref);
  } else {
    stories_[ref] = obj;
  }
  // Attach any properties that arrived first.
  auto range = orphan_properties_.equal_range(ref);
  for (auto it = range.first; it != range.second; ++it) {
    obj->SetProperty(it->second->Get("name").AsString(), it->second->Get("value"));
  }
  orphan_properties_.erase(range.first, range.second);
}

namespace {

std::string Cell(const Value& v, size_t width) {
  std::string s;
  if (v.is_string()) {
    s = v.AsString();
  } else if (!v.is_null()) {
    s = v.ToString();
  }
  if (s.size() > width) {
    s = s.substr(0, width - 1) + "~";
  }
  s.resize(width, ' ');
  return s;
}

}  // namespace

std::string NewsMonitor::RenderSummary() const {
  std::string out = "=== " + view_.name + " ===\n";
  out += Cell(Value(std::string("ref")), 12);
  for (const std::string& col : view_.columns) {
    out += " | " + Cell(Value(col), view_.column_width);
  }
  out += "\n";
  for (const std::string& ref : order_) {
    const DataObjectPtr& story = stories_.at(ref);
    out += Cell(Value(ref), 12);
    for (const std::string& col : view_.columns) {
      out += " | " + Cell(story->Get(col), view_.column_width);
    }
    out += "\n";
  }
  return out;
}

Result<std::string> NewsMonitor::RenderStory(const std::string& ref) const {
  auto it = stories_.find(ref);
  if (it == stories_.end()) {
    return NotFound("news monitor: no story '" + ref + "'");
  }
  PrintOptions opt;
  opt.registry = registry_;
  return PrintObject(*it->second, opt);
}

size_t NewsMonitor::annotated_count() const {
  size_t n = 0;
  for (const auto& [ref, story] : stories_) {
    if (!story->properties().empty()) {
      ++n;
    }
  }
  return n;
}

DataObjectPtr NewsMonitor::story(const std::string& ref) const {
  auto it = stories_.find(ref);
  return it == stories_.end() ? nullptr : it->second;
}

}  // namespace ibus
