// HealthEvaluator: the bus diagnosing itself. Each host runs one next to its daemon;
// every interval (in simulated time, so deterministically) it evaluates a small rule
// set over the host's metrics registry — slow consumer (receiver gap rate),
// retransmit storm, subscription churn, suspected partition (a peer's "_ibus.stats.>"
// feed going silent) — and publishes typed HealthEvent transitions on the reserved
// "_ibus.health.>" namespace. Rules are hysteretic: one raise when the value crosses
// the raise threshold, one clear after it has stayed at/below the clear threshold for
// clear_hold_intervals consecutive intervals. No flapping while a value oscillates
// between the two thresholds.
#ifndef SRC_SERVICES_HEALTH_MONITOR_H_
#define SRC_SERVICES_HEALTH_MONITOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/telemetry/health.h"

namespace ibus {

struct HealthConfig {
  SimTime interval_us = 250 * kMillisecond;

  // Slow consumer: receiver gap count delta per interval (messages abandoned).
  int64_t slow_consumer_raise = 1;
  int64_t slow_consumer_clear = 0;

  // Retransmit storm: sender retransmit delta per interval.
  int64_t retransmit_raise = 8;
  int64_t retransmit_clear = 1;

  // Subscription churn: subscribe+unsubscribe operations per interval.
  int64_t churn_raise = 16;
  int64_t churn_clear = 2;

  // Partition suspected: a peer previously heard on "_ibus.stats.>" has been silent
  // this long. Must comfortably exceed the fleet's stats reporting interval.
  SimTime peer_silence_us = 3 * kSecond;

  // A raised alert clears only after this many consecutive intervals at/below the
  // clear threshold (the hysteresis hold).
  int clear_hold_intervals = 3;

  // value >= raise_threshold * critical_factor escalates kWarning to kCritical.
  int64_t critical_factor = 4;
};

class HealthEvaluator {
 public:
  // Subscribes to the fleet stats feed (for partition detection) and starts the
  // periodic evaluation. Fails with kFailedPrecondition when built with
  // -DIB_TELEMETRY=OFF: the health plane is compiled out with the rest of telemetry.
  static Result<std::unique_ptr<HealthEvaluator>> Create(
      BusClient* bus, BusDaemon* daemon, const HealthConfig& config = HealthConfig());
  ~HealthEvaluator();
  HealthEvaluator(const HealthEvaluator&) = delete;
  HealthEvaluator& operator=(const HealthEvaluator&) = delete;

  const std::string& node() const { return node_; }
  // Every transition published so far, in order.
  const std::vector<telemetry::HealthEvent>& events() const { return events_; }
  uint64_t events_published() const { return events_.size(); }
  // Currently raised (not yet cleared) alerts.
  size_t active_alerts() const;

 private:
  // Hysteresis state of one rule instance (one per kind, plus one per peer for the
  // partition rule).
  struct RuleState {
    bool active = false;
    int clean_intervals = 0;
  };

  HealthEvaluator(BusClient* bus, BusDaemon* daemon, const HealthConfig& config);

  void Tick();
  // Runs one rule through its hysteresis state machine, publishing on transitions.
  void EvaluateRule(RuleState& state, telemetry::HealthEventKind kind,
                    const std::string& subject, int64_t value, int64_t raise,
                    int64_t clear);
  void PublishEvent(telemetry::HealthEventKind kind, telemetry::HealthSeverity severity,
                    const std::string& subject, int64_t value, int64_t threshold);
  void HandleStatsMessage(const Message& m);

  BusClient* bus_;
  BusDaemon* daemon_;
  HealthConfig config_;
  std::string node_;
  uint64_t stats_sub_ = 0;

  // Previous-interval counter values (rules run on deltas).
  uint64_t last_gaps_ = 0;
  uint64_t last_retransmits_ = 0;
  uint64_t last_churn_ = 0;

  RuleState slow_consumer_;
  RuleState retransmit_storm_;
  RuleState subscription_churn_;
  struct PeerState {
    SimTime last_seen = 0;
    RuleState rule;
  };
  std::map<std::string, PeerState> peers_;  // keyed by peer host name (ordered)

  std::vector<telemetry::HealthEvent> events_;
  std::shared_ptr<bool> alive_;
};

}  // namespace ibus

#endif  // SRC_SERVICES_HEALTH_MONITOR_H_
