// Per-host bus daemon (paper §3.1): "we use a daemon on every host. Each application
// registers with its local daemon, and tells the daemon to which subjects it has
// subscribed. The daemon forwards each message to each application that has
// subscribed."
//
// The daemon owns the host's broadcast socket. Outbound publishes from local clients
// are broadcast over one reliable stream per daemon; inbound broadcasts (including the
// daemon's own, which loop back over the medium) are reordered/dedupped by the
// reliable receiver and dispatched through a subscription trie to local clients over
// loopback datagrams.
#ifndef SRC_BUS_DAEMON_H_
#define SRC_BUS_DAEMON_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/bus/message.h"
#include "src/proto/reliable.h"
#include "src/sim/network.h"
#include "src/subject/trie.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/sketch.h"
#include "src/telemetry/trace.h"

namespace ibus {

struct BusConfig {
  Port daemon_port = 7500;
  ReliableConfig reliable;
  // When true the daemon broadcasts subscription add/remove events on
  // kSubEventSubject and answers kSubQuerySubject — consumed by information routers.
  bool announce_subscriptions = true;
  // When true, clients built with this config assign a trace context to sampled
  // application publishes and hop spans are emitted along the message path
  // (see src/telemetry/trace.h). No effect when built with -DIB_TELEMETRY=OFF.
  bool trace_publishes = false;
  // Publisher-side sampling period: 1 traces every publish (the pre-busstat
  // behavior; scenario code that asserts on complete timelines sets this), N
  // traces ~1/N chosen by a deterministic hash of the trace id, 0 disables
  // tracing even when trace_publishes is set. See docs/TELEMETRY.md.
  uint32_t trace_sample_period = telemetry::kDefaultTraceSamplePeriod;
  // Slot capacity of the daemon's per-subject and per-peer heavy-hitter sketches
  // (fixed memory regardless of distinct-subject count; see src/telemetry/sketch.h).
  size_t sketch_capacity = telemetry::TopKSketch::kDefaultCapacity;
  // Ring-buffer depth of the daemon's always-on flight recorder.
  size_t flight_recorder_capacity = 256;
};

// Per-subject-prefix flow counters (keyed by the subject's root element). The map is
// capped at kMaxFlowSubjects distinct prefixes; overflow traffic lands in "(other)".
struct SubjectFlow {
  uint64_t publishes = 0;   // local client publishes under this prefix
  uint64_t deliveries = 0;  // client deliveries sent under this prefix
  uint64_t bytes_in = 0;    // marshalled bytes accepted from local clients
  uint64_t bytes_out = 0;   // marshalled bytes delivered to local clients
};
inline constexpr size_t kMaxFlowSubjects = 64;
inline constexpr char kFlowOverflowKey[] = "(other)";

// Snapshot of the daemon's registry counters (kept as a struct for callers; the
// counters themselves live in the daemon's MetricsRegistry — see docs/TELEMETRY.md).
struct DaemonStats {
  uint64_t publishes = 0;           // accepted from local clients
  uint64_t dispatched_messages = 0; // inbound messages matching >=1 local subscription
  uint64_t deliveries = 0;          // client deliveries sent (one per client match)
  uint64_t no_match = 0;            // inbound messages with no local subscriber
  uint64_t sub_churn = 0;           // lifetime subscribe + unsubscribe operations
};

// Registry names of the daemon-owned metrics.
inline constexpr char kMetricPublishes[] = "bus.publishes";
inline constexpr char kMetricDispatched[] = "bus.dispatched_messages";
inline constexpr char kMetricDeliveries[] = "bus.deliveries";
inline constexpr char kMetricNoMatch[] = "bus.no_match";
inline constexpr char kMetricSubscriptions[] = "bus.subscriptions";
inline constexpr char kMetricSubChurn[] = "bus.sub_churn";
// Telemetry self-overhead accounting: every marshalled byte the daemon puts on the
// wire counts into bus.publish_bytes; the subset whose subject belongs to the
// observability plane (IsObservabilitySubject) also counts into telemetry.self.*.
// The ratio self.bytes / publish_bytes is the plane's self-measured overhead.
inline constexpr char kMetricPublishBytes[] = "bus.publish_bytes";
inline constexpr char kMetricSelfBytes[] = "telemetry.self.bytes";
inline constexpr char kMetricSelfMsgs[] = "telemetry.self.msgs";
// Log-bucketed payload-size distribution per publish (telemetry-gated, like every
// histogram). Per-node histograms merge losslessly into a fleet size distribution
// through busstat's StatsAggregator.
inline constexpr char kMetricPublishSize[] = "bus.publish_size";

class BusDaemon {
 public:
  static Result<std::unique_ptr<BusDaemon>> Start(Network* net, HostId host,
                                                  const BusConfig& config = BusConfig());
  ~BusDaemon();
  BusDaemon(const BusDaemon&) = delete;
  BusDaemon& operator=(const BusDaemon&) = delete;

  HostId host() const { return host_; }
  DaemonStats stats() const;
  ReliableSenderStats sender_stats() const { return sender_->stats(); }
  ReliableReceiverStats receiver_stats() const { return receiver_->stats(); }
  size_t subscription_count() const { return subs_.size(); }

  // The host-wide registry: daemon counters plus the reliable sender/receiver
  // counters all live here, under "bus." and "proto." name prefixes.
  telemetry::MetricsRegistry* metrics() { return &metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }

  // Per-subject-prefix flow counters, ordered by prefix (deterministic iteration).
  const std::map<std::string, SubjectFlow, std::less<>>& subject_flows() const { return flows_; }

  // The host's flight recorder; protocol components share it.
  telemetry::FlightRecorder* flight_recorder() { return &recorder_; }
  const telemetry::FlightRecorder& flight_recorder() const { return recorder_; }

  // Fixed-memory heavy-hitter sketches fed from the dispatch path: which subjects
  // and which publishing peers dominate this host's traffic (src/telemetry/sketch.h).
  const telemetry::TopKSketch& subject_sketch() const { return subject_sketch_; }
  const telemetry::TopKSketch& peer_sketch() const { return peer_sketch_; }

 private:
  BusDaemon(Network* net, HostId host, const BusConfig& config);

  void HandleDatagram(const Datagram& d);
  void HandleClientRegister(const Datagram& d, const Bytes& payload);
  void HandleClientUnregister(const Datagram& d);
  void HandleSubscribe(const Datagram& d, const Bytes& payload);
  void HandleUnsubscribe(const Datagram& d, const Bytes& payload);
  void HandleClientPublish(const Datagram& d, const Bytes& payload);

  // Called by the reliable receiver with every in-order message on the bus.
  void DispatchInbound(const Bytes& message_bytes);
  // Flow-map entry for `subject`, keyed by its root element (capped; see above).
  SubjectFlow& FlowFor(std::string_view subject);
  void AnnounceSubscription(bool added, const std::string& pattern,
                            const std::string& client_name);
  void AnswerSubQuery(const Message& query);
  Status PublishFromDaemon(const Message& m);
#if IBUS_TELEMETRY
  // Broadcasts a HopRecord span for `m` on the reserved trace namespace.
  void EmitHop(telemetry::HopKind kind, const Message& m);
#endif

  Network* net_;
  HostId host_;
  BusConfig config_;

  std::unique_ptr<UdpSocket> socket_;
  std::unique_ptr<ReliableSender> sender_;
  std::unique_ptr<ReliableReceiver> receiver_;

  struct ClientInfo {
    std::string name;
  };
  struct Sub {
    Port client_port = 0;
    uint64_t client_sub_id = 0;
    std::string pattern;
    std::string client_name;
  };

  std::unordered_map<Port, ClientInfo> clients_;
  uint64_t next_sub_key_ = 1;
  std::unordered_map<uint64_t, Sub> subs_;
  SubjectTrie trie_;
  std::map<std::string, int> pattern_refs_;

  telemetry::MetricsRegistry metrics_;
  telemetry::FlightRecorder recorder_;
  std::map<std::string, SubjectFlow, std::less<>> flows_;
  telemetry::TopKSketch subject_sketch_;
  telemetry::TopKSketch peer_sketch_;
  // Hot-path instruments, resolved once at construction.
  telemetry::Counter* publishes_;
  telemetry::Counter* dispatched_;
  telemetry::Counter* deliveries_;
  telemetry::Counter* no_match_;
  telemetry::Gauge* subscriptions_;
  telemetry::Counter* sub_churn_;
  telemetry::Counter* publish_bytes_;
  telemetry::Counter* self_bytes_;
  telemetry::Counter* self_msgs_;
  telemetry::LatencyHistogram* publish_size_;
};

}  // namespace ibus

#endif  // SRC_BUS_DAEMON_H_
