#include "src/bus/client.h"

#include "src/common/logging.h"
#include "src/proto/packets.h"
#include "src/subject/subject.h"
#include "src/wire/wire.h"

namespace ibus {

Result<std::unique_ptr<BusClient>> BusClient::Connect(Network* net, HostId host,
                                                      const std::string& name,
                                                      const BusConfig& config) {
  auto client = std::unique_ptr<BusClient>(new BusClient(net, host, name, config));
  auto socket = net->OpenSocket(
      host, 0, [c = client.get()](const Datagram& d) { c->HandleDatagram(d); });
  if (!socket.ok()) {
    return socket.status();
  }
  client->socket_ = socket.take();
  WireWriter w;
  w.PutString(name);
  IBUS_RETURN_IF_ERROR(client->SendToDaemon(kPktClientRegister, w.Take()));
  return client;
}

BusClient::BusClient(Network* net, HostId host, std::string name, const BusConfig& config)
    : net_(net), host_(host), name_(std::move(name)), config_(config) {}

BusClient::~BusClient() {
  if (socket_ != nullptr) {
    SendToDaemon(kPktClientUnregister, Bytes());
  }
}

uint64_t BusClient::client_id() const {
  return (static_cast<uint64_t>(host_) << 16) | socket_->port();
}

Status BusClient::SendToDaemon(uint8_t packet_type, const Bytes& payload) {
  return socket_->SendTo(host_, config_.daemon_port, FrameMessage(packet_type, payload));
}

Status BusClient::Publish(Message m) {  // hotlint: hot
  return PublishScoped(std::move(m), SubjectScope::kApplication);
}

Status BusClient::PublishInternal(Message m) {
  return PublishScoped(std::move(m), SubjectScope::kInternal);
}

Status BusClient::PublishScoped(Message m, SubjectScope scope) {
  IBUS_RETURN_IF_ERROR(ValidateSubject(m.subject, scope));
  if (m.sender.empty()) {
    m.sender = name_;
  }
  if (m.publisher_id == 0) {
    m.publisher_id = client_id();
  }
#if IBUS_TELEMETRY
  bool fresh_trace = false;
  if (config_.trace_publishes && scope == SubjectScope::kApplication && m.trace_id == 0 &&
      m.subject[0] != '_') {
    // Deterministic id: the stable client identity plus a per-client sequence. The
    // ordinal always advances — sampling must not shift later candidates — but only
    // publishes whose id hashes into the sample get a trace context; the rest stay
    // untraced and cost nothing downstream (see docs/TELEMETRY.md).
    const uint64_t candidate = (client_id() << 20) | next_trace_++;
    if (telemetry::ShouldSampleTrace(candidate, config_.trace_sample_period)) {
      m.trace_id = candidate;
      m.trace_hop = 0;
      fresh_trace = true;
    }
  }
#endif
  stats_.published++;
  Status sent = SendToDaemon(kPktClientMessage, m.Marshal());
#if IBUS_TELEMETRY
  if (fresh_trace && sent.ok()) {
    EmitHop(telemetry::HopKind::kPublish, m);
  }
#endif
  return sent;
}

#if IBUS_TELEMETRY
void BusClient::EmitHop(telemetry::HopKind kind, const Message& m) {  // hotlint: cold -- trace-hop emission: runs only for traced messages, not the untraced fast path
  telemetry::HopRecord rec;
  rec.trace_id = m.trace_id;
  rec.hop = m.trace_hop;
  rec.kind = kind;
  rec.node = name_;
  rec.subject = m.subject;
  rec.at_us = sim()->Now();
  rec.certified_id = m.certified_id;
  Message span;
  span.subject = telemetry::HopSubject(kind);
  span.type_name = telemetry::kHopRecordType;
  span.payload = rec.Marshal();
  PublishInternal(std::move(span));
}
#endif

Status BusClient::Publish(const std::string& subject, Bytes payload) {  // hotlint: hot
  Message m;
  m.subject = subject;
  m.payload = std::move(payload);
  return Publish(std::move(m));
}

Status BusClient::PublishObject(const std::string& subject, const DataObject& obj) {
  return Publish(Message::ForObject(subject, obj));
}

Result<uint64_t> BusClient::Subscribe(const std::string& pattern, MessageHandler handler) {
  IBUS_RETURN_IF_ERROR(ValidatePattern(pattern));
  uint64_t id = next_sub_id_++;
  handlers_[id] = std::move(handler);
  WireWriter w;
  w.PutU64(id);
  w.PutString(pattern);
  Status s = SendToDaemon(kPktSubscribe, w.Take());
  if (!s.ok()) {
    handlers_.erase(id);
    return s;
  }
  return id;
}

Result<uint64_t> BusClient::SubscribeObjects(const std::string& pattern, ObjectHandler handler) {
  return Subscribe(pattern, [handler = std::move(handler)](const Message& m) {
    auto obj = m.DecodeObject();
    handler(m, obj.ok() ? *obj : DataObjectPtr());
  });
}

Status BusClient::Unsubscribe(uint64_t sub_id) {
  auto it = handlers_.find(sub_id);
  if (it == handlers_.end()) {
    return NotFound("no such subscription");
  }
  handlers_.erase(it);
  WireWriter w;
  w.PutU64(sub_id);
  return SendToDaemon(kPktUnsubscribe, w.Take());
}

Status BusClient::Request(Message m, SimTime timeout_us, RequestDone done) {
  std::string inbox = CreateInboxSubject();
  auto state = std::make_shared<std::pair<bool, uint64_t>>(false, 0);  // (answered, sub)
  auto done_shared = std::make_shared<RequestDone>(std::move(done));
  auto sub = Subscribe(inbox, [this, state, done_shared](const Message& reply) {
    if (state->first) {
      return;  // later responders lose the race
    }
    state->first = true;
    Unsubscribe(state->second);
    (*done_shared)(reply);
  });
  if (!sub.ok()) {
    return sub.status();
  }
  state->second = *sub;
  m.reply_subject = inbox;
  Status published = Publish(std::move(m));
  if (!published.ok()) {
    Unsubscribe(*sub);
    return published;
  }
  sim()->ScheduleAfter(
      timeout_us,
      [this, state, done_shared]() {
        if (state->first) {
          return;
        }
        state->first = true;
        Unsubscribe(state->second);
        (*done_shared)(DeadlineExceeded("request: no response"));
      },
      "bus.request_timeout");
  return OkStatus();
}

Status BusClient::Reply(const Message& request, Message response) {
  if (request.reply_subject.empty()) {
    return FailedPrecondition("reply: request carries no reply subject");
  }
  response.subject = request.reply_subject;
  return Publish(std::move(response));
}

std::string BusClient::CreateInboxSubject() {
  return "_inbox.h" + std::to_string(host_) + ".p" + std::to_string(socket_->port()) + "." +
         std::to_string(next_inbox_++);
}

void BusClient::HandleDatagram(const Datagram& d) {  // hotlint: hot
  auto frame = ParseFrame(d.payload);
  if (!frame.ok() || frame->frame_type != kPktClientDeliver) {
    return;
  }
  WireReader r(frame->payload);
  auto count = r.ReadVarint();
  if (!count.ok()) {
    return;
  }
  if (*count > r.remaining() / 8) {
    return;
  }
  std::vector<uint64_t> sub_ids;
  sub_ids.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto id = r.ReadU64();
    if (!id.ok()) {
      return;
    }
    sub_ids.push_back(*id);
  }
  Bytes message_bytes(frame->payload.begin() + static_cast<ptrdiff_t>(r.position()),
                      frame->payload.end());
  auto msg = Message::Unmarshal(message_bytes);
  if (!msg.ok()) {
    return;
  }
  stats_.received++;
  for (uint64_t id : sub_ids) {
    auto it = handlers_.find(id);
    if (it != handlers_.end()) {
      // Copy the handler: it may unsubscribe (erase) itself during the call.
      MessageHandler handler = it->second;
      handler(*msg);
    }
  }
#if IBUS_TELEMETRY
  if (msg->trace_id != 0) {
    EmitHop(telemetry::HopKind::kDeliver, *msg);
  }
#endif
}

}  // namespace ibus
