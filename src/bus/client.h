// BusClient: the application-facing handle onto the Information Bus. An application
// connects to its host's daemon, then publishes labelled messages and subscribes to
// subject patterns; producers and consumers never learn each other's identity or
// location (paper P4, anonymous communication).
#ifndef SRC_BUS_CLIENT_H_
#define SRC_BUS_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/bus/daemon.h"
#include "src/bus/message.h"
#include "src/common/id.h"
#include "src/sim/network.h"
#include "src/subject/subject.h"
#include "src/telemetry/trace.h"

namespace ibus {

struct BusClientStats {
  uint64_t published = 0;
  uint64_t received = 0;
};

class BusClient {
 public:
  using MessageHandler = std::function<void(const Message&)>;
  // Convenience form: payload already decoded into a data object.
  using ObjectHandler = std::function<void(const Message&, const DataObjectPtr&)>;

  // Connects to the daemon on `host` (which must already be running).
  static Result<std::unique_ptr<BusClient>> Connect(Network* net, HostId host,
                                                    const std::string& name,
                                                    const BusConfig& config = BusConfig());
  ~BusClient();
  BusClient(const BusClient&) = delete;
  BusClient& operator=(const BusClient&) = delete;

  const std::string& name() const { return name_; }
  HostId host() const { return host_; }
  Network* network() { return net_; }
  Simulator* sim() { return net_->sim(); }
  // Stable identity of this client across the bus (host:port derived).
  uint64_t client_id() const;

  // --- Publish ----------------------------------------------------------------------
  // Validates the subject and hands the message to the local daemon for broadcast.
  // Application publishes into the reserved "_ibus." namespace are rejected.
  Status Publish(Message m);
  Status Publish(const std::string& subject, Bytes payload);
  Status PublishObject(const std::string& subject, const DataObject& obj);

  // For bus-internal components (tracing, certified acks, stats, elections): same as
  // Publish but allowed into the reserved namespace. Never assigns a trace context.
  Status PublishInternal(Message m);

  // --- Subscribe --------------------------------------------------------------------
  // Subscribes to a subject pattern; the handler runs for every matching message, in
  // per-publisher order. Returns a subscription id for Unsubscribe.
  Result<uint64_t> Subscribe(const std::string& pattern, MessageHandler handler);
  Result<uint64_t> SubscribeObjects(const std::string& pattern, ObjectHandler handler);
  Status Unsubscribe(uint64_t sub_id);

  // --- Request/reply over publish/subscribe -----------------------------------------
  // The demand-driven style of Figure 1 without a point-to-point connection: the
  // request is published with a private reply inbox; the first response wins.
  // Responders remain anonymous and interchangeable (P4).
  using RequestDone = std::function<void(Result<Message>)>;
  Status Request(Message m, SimTime timeout_us, RequestDone done);

  // Responder convenience: publishes `response` on `request`'s reply subject.
  Status Reply(const Message& request, Message response);

  // Fresh private subject for replies: "_inbox.h<host>.p<port>.<n>".
  std::string CreateInboxSubject();

  const BusClientStats& stats() const { return stats_; }

 private:
  BusClient(Network* net, HostId host, std::string name, const BusConfig& config);

  void HandleDatagram(const Datagram& d);
  Status SendToDaemon(uint8_t packet_type, const Bytes& payload);
  Status PublishScoped(Message m, SubjectScope scope);
#if IBUS_TELEMETRY
  // Publishes a HopRecord span for `m` on the reserved trace namespace.
  void EmitHop(telemetry::HopKind kind, const Message& m);
#endif

  Network* net_;
  HostId host_;
  std::string name_;
  BusConfig config_;
  std::unique_ptr<UdpSocket> socket_;
  uint64_t next_sub_id_ = 1;
  uint64_t next_inbox_ = 1;
  uint64_t next_trace_ = 1;
  std::unordered_map<uint64_t, MessageHandler> handlers_;
  BusClientStats stats_;
};

}  // namespace ibus

#endif  // SRC_BUS_CLIENT_H_
