// Guaranteed ("certified") message delivery (paper §3.1): "the message is logged to
// non-volatile storage before it is sent. The message is guaranteed to be delivered at
// least once, regardless of failures. The publisher will retransmit the message at
// appropriate times until a reply is received."
//
// CertifiedPublisher writes each message to a write-ahead ledger (src/journal) and
// publishes with a certified id only once the ledger reports the record durable; it
// then retransmits periodically until the configured number of distinct consumers
// acknowledge. Retires are journaled too, and when the ledger fully drains the
// publisher writes a checkpoint record (carrying the id horizon) and compacts the
// retired history. Creating a publisher over an existing ledger replays it — the
// scan rebuilds the pending set and the id horizon idempotently, so retire acks
// that raced a crash are honoured and certified ids are never reused — and
// Recover() re-arms retransmission plus announces a `_ibus.health.recovery.<node>`
// event. CertifiedSubscriber deduplicates by (publisher, certified id) — so the
// application sees each message exactly once when there are no failures — and
// acknowledges on the publisher's ack subject.
#ifndef SRC_BUS_CERTIFIED_H_
#define SRC_BUS_CERTIFIED_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/bus/client.h"
#include "src/journal/journal.h"
#include "src/telemetry/metrics.h"

namespace ibus {

struct CertifiedConfig {
  SimTime retry_interval_us = 200 * 1000;
  // How many distinct consumers must acknowledge before a message is retired. With the
  // default of 1 the semantics match the paper's "until a reply is received".
  int required_acks = 1;
  // Write a checkpoint + compact the ledger whenever the pending set drains.
  // Tests that inspect raw ledger history can switch it off.
  bool auto_checkpoint = true;
};

struct CertifiedPublisherStats {
  uint64_t published = 0;
  uint64_t retransmits = 0;
  uint64_t retired = 0;
  uint64_t recovered = 0;  // pending messages re-armed by the last Recover()
};

class CertifiedPublisher {
 public:
  // `ledger_name` must be stable across restarts of the same logical publisher: it
  // keys the ack subject so subscribers can reach the restarted instance, and names
  // the recovery health event. Creating the publisher scans `ledger` and rebuilds
  // pending state; nothing is retransmitted until Publish or Recover.
  static Result<std::unique_ptr<CertifiedPublisher>> Create(BusClient* bus,
                                                            journal::Journal* ledger,
                                                            const std::string& ledger_name,
                                                            const CertifiedConfig& config = {});
  ~CertifiedPublisher();
  CertifiedPublisher(const CertifiedPublisher&) = delete;
  CertifiedPublisher& operator=(const CertifiedPublisher&) = delete;

  // Journals then publishes. The bus send happens only once the ledger reports the
  // record durable (the simulated stable-write latency).
  Status Publish(const std::string& subject, Bytes payload, std::string type_name = "");
  Status PublishObject(const std::string& subject, const DataObject& obj);

  // Re-arms the ledger state scanned at Create after a restart: pending (unacked)
  // messages are republished, retransmission resumes, and a kRecovery health event
  // is announced on "_ibus.health.recovery.<ledger_name>". Idempotent — calling it
  // again (or after acks raced the crash) never loses or duplicates deliveries.
  Status Recover();

  size_t pending() const { return pending_.size(); }
  const CertifiedPublisherStats& stats() const { return stats_; }
  std::string ack_subject() const;
  journal::Journal* ledger() { return ledger_; }

  // Publish-to-retire latency (stable write + wire + subscriber ack round trip).
  // Only populated when built with telemetry on.
  const telemetry::LatencyHistogram& retire_latency() const { return retire_latency_; }

 private:
  CertifiedPublisher(BusClient* bus, journal::Journal* ledger, std::string ledger_name,
                     const CertifiedConfig& config);

  struct PendingMessage {
    std::string subject;
    std::string type_name;
    Bytes payload;
    std::set<std::string> ackers;
    SimTime published_at = 0;
    journal::Lsn lsn = 0;  // ledger position of the publish record
  };

  void ScanLedger();
  void HandleAck(const Message& m);
  void SendCertified(uint64_t id, const PendingMessage& pm);
  void ScheduleRetry();
  // Persists the id horizon, then retires fully-acknowledged ledger history.
  Status Checkpoint();
  void PublishRecoveryEvent(uint64_t rearmed);
  Bytes LogRecordPublish(uint64_t id, const PendingMessage& pm) const;
  Bytes LogRecordRetire(uint64_t id) const;
  Bytes LogRecordCheckpoint(uint64_t next_id) const;

  BusClient* bus_;
  journal::Journal* ledger_;
  std::string ledger_name_;
  CertifiedConfig config_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, PendingMessage> pending_;
  uint64_t ack_sub_ = 0;
  bool retry_scheduled_ = false;
  CertifiedPublisherStats stats_;
  telemetry::LatencyHistogram retire_latency_;
  std::shared_ptr<bool> alive_;
};

struct CertifiedSubscriberStats {
  uint64_t delivered = 0;
  uint64_t duplicates_dropped = 0;
  uint64_t acks_sent = 0;
};

class CertifiedSubscriber {
 public:
  // `consumer_name` identifies this consumer in acknowledgements; it must be stable
  // across restarts for exactly-once-per-consumer accounting at the publisher.
  static Result<std::unique_ptr<CertifiedSubscriber>> Create(
      BusClient* bus, const std::string& pattern, const std::string& consumer_name,
      BusClient::MessageHandler handler);
  ~CertifiedSubscriber();
  CertifiedSubscriber(const CertifiedSubscriber&) = delete;
  CertifiedSubscriber& operator=(const CertifiedSubscriber&) = delete;

  const CertifiedSubscriberStats& stats() const { return stats_; }

 private:
  CertifiedSubscriber(BusClient* bus, std::string consumer_name,
                      BusClient::MessageHandler handler)
      : bus_(bus), consumer_name_(std::move(consumer_name)), handler_(std::move(handler)) {}

  void HandleMessage(const Message& m);

  BusClient* bus_;
  std::string consumer_name_;
  BusClient::MessageHandler handler_;
  uint64_t sub_id_ = 0;
  // Seen certified ids per publisher ledger (ack subject keys the ledger).
  std::unordered_map<std::string, std::unordered_set<uint64_t>> seen_;
  CertifiedSubscriberStats stats_;
};

}  // namespace ibus

#endif  // SRC_BUS_CERTIFIED_H_
