#include "src/bus/discovery.h"

namespace ibus {

Status DiscoveryQuery::Run(BusClient* bus, const std::string& subject, SimTime timeout_us,
                           DoneFn done, Bytes query_payload) {
  std::string inbox = bus->CreateInboxSubject();
  auto responses = std::make_shared<std::vector<Message>>();
  auto sub = bus->Subscribe(inbox, [responses](const Message& m) {
    if (m.type_name == kDiscoveryResponseType) {
      responses->push_back(m);
    }
  });
  if (!sub.ok()) {
    return sub.status();
  }
  uint64_t sub_id = *sub;

  Message query;
  query.subject = subject;
  query.reply_subject = inbox;
  query.type_name = kDiscoveryQueryType;
  query.payload = std::move(query_payload);
  // Internal scope: discovery is control-plane traffic, and callers may query on
  // reserved subjects (e.g. type gossip's _ibus.types.query).
  Status s = bus->PublishInternal(std::move(query));
  if (!s.ok()) {
    bus->Unsubscribe(sub_id);
    return s;
  }

  bus->sim()->ScheduleAfter(
      timeout_us,
      [bus, sub_id, responses, done = std::move(done)]() {
        bus->Unsubscribe(sub_id);
        done(std::move(*responses));
      },
      "bus.discovery_timeout");
  return OkStatus();
}

Result<std::unique_ptr<DiscoveryResponder>> DiscoveryResponder::Create(
    BusClient* bus, const std::string& subject, DescribeFn describe) {
  auto responder =
      std::unique_ptr<DiscoveryResponder>(new DiscoveryResponder(bus, std::move(describe)));
  auto sub = bus->Subscribe(subject, [r = responder.get(), bus](const Message& m) {
    if (m.type_name != kDiscoveryQueryType || m.reply_subject.empty()) {
      return;
    }
    Bytes description = r->describe_(m);
    if (description.empty()) {
      return;  // a responder with nothing to say stays silent
    }
    Message reply;
    reply.subject = m.reply_subject;
    reply.type_name = kDiscoveryResponseType;
    reply.payload = std::move(description);
    bus->PublishInternal(std::move(reply));
  });
  if (!sub.ok()) {
    return sub.status();
  }
  responder->sub_id_ = *sub;
  return responder;
}

DiscoveryResponder::~DiscoveryResponder() {
  if (sub_id_ != 0) {
    bus_->Unsubscribe(sub_id_);
  }
}

}  // namespace ibus
