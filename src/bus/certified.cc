#include "src/bus/certified.h"

#include <optional>

#include "src/telemetry/health.h"
#include "src/types/codec.h"
#include "src/wire/wire.h"

namespace ibus {

namespace {
// Ledger record kinds. Values are on-ledger format; do not renumber.
constexpr uint8_t kLogPublish = 1;
constexpr uint8_t kLogRetire = 2;
// Carries the id horizon (next_id). Written before compaction so a fully-compacted
// ledger can never reset the id space — a reused certified id would be silently
// swallowed by subscriber dedup state.
constexpr uint8_t kLogCheckpoint = 3;
constexpr char kAckType[] = "_cert.ack";

// The ack payload that consumers send back on the reply subject.
struct CertAck {
  uint64_t id = 0;
  std::string consumer;
};

// wirecheck: codec(cert_ack, version=0)
Bytes MarshalAck(uint64_t certified_id, const std::string& consumer) {
  WireWriter w;
  w.PutU64(certified_id);
  w.PutString(consumer);
  return w.Take();
}

// wirecheck: codec(cert_ack, version=0)
std::optional<CertAck> ParseAck(const Bytes& payload) {
  WireReader r(payload);
  auto id = r.ReadU64();
  auto consumer = r.ReadString();
  if (!id.ok() || !consumer.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  CertAck ack;
  ack.id = *id;
  ack.consumer = consumer.take();
  return ack;
}
}  // namespace

// ---------------------------------------------------------------------------------
// CertifiedPublisher
// ---------------------------------------------------------------------------------

Result<std::unique_ptr<CertifiedPublisher>> CertifiedPublisher::Create(
    BusClient* bus, journal::Journal* ledger, const std::string& ledger_name,
    const CertifiedConfig& config) {
  auto pub = std::unique_ptr<CertifiedPublisher>(
      new CertifiedPublisher(bus, ledger, ledger_name, config));
  auto sub = bus->Subscribe(pub->ack_subject(),
                            [p = pub.get()](const Message& m) { p->HandleAck(m); });
  if (!sub.ok()) {
    return sub.status();
  }
  pub->ack_sub_ = *sub;
  pub->ScanLedger();
  return pub;
}

CertifiedPublisher::CertifiedPublisher(BusClient* bus, journal::Journal* ledger,
                                       std::string ledger_name, const CertifiedConfig& config)
    : bus_(bus),
      ledger_(ledger),
      ledger_name_(std::move(ledger_name)),
      config_(config),
      alive_(std::make_shared<bool>(true)) {}

CertifiedPublisher::~CertifiedPublisher() {
  *alive_ = false;
  if (ack_sub_ != 0) {
    bus_->Unsubscribe(ack_sub_);
  }
}

std::string CertifiedPublisher::ack_subject() const {
  return std::string(kReservedCertPrefix) + "ack." + ledger_name_;
}

Bytes CertifiedPublisher::LogRecordPublish(uint64_t id, const PendingMessage& pm) const {
  WireWriter w;
  w.PutU8(kLogPublish);
  w.PutU64(id);
  w.PutString(pm.subject);
  w.PutString(pm.type_name);
  w.PutBytes(pm.payload);
  return w.Take();
}

Bytes CertifiedPublisher::LogRecordRetire(uint64_t id) const {
  WireWriter w;
  w.PutU8(kLogRetire);
  w.PutU64(id);
  return w.Take();
}

Bytes CertifiedPublisher::LogRecordCheckpoint(uint64_t next_id) const {
  WireWriter w;
  w.PutU8(kLogCheckpoint);
  w.PutU64(next_id);
  return w.Take();
}

// hotlint: cold -- restart-only ledger replay: runs once per publisher creation
void CertifiedPublisher::ScanLedger() {
  // Replaying publish/retire pairs makes the scan naturally idempotent: a retire
  // whose ack raced the crash simply erases its message here, and one that never
  // reached the ledger leaves the message pending for Recover() to re-send.
  uint64_t next = 1;
  for (const journal::Record& rec : ledger_->Records()) {
    WireReader r(rec.payload);
    auto kind = r.ReadU8();
    auto id = r.ReadU64();
    if (!kind.ok() || !id.ok()) {
      continue;  // foreign or damaged record; the journal already CRC-checked blocks
    }
    if (*kind == kLogPublish) {
      PendingMessage pm;
      auto subject = r.ReadString();
      auto type_name = r.ReadString();
      auto payload = r.ReadBytes();
      if (!subject.ok() || !type_name.ok() || !payload.ok()) {
        continue;
      }
      pm.subject = subject.take();
      pm.type_name = type_name.take();
      pm.payload = payload.take();
      pm.published_at = bus_->sim()->Now();
      pm.lsn = rec.lsn;
      next = std::max(next, *id + 1);
      pending_.insert_or_assign(*id, std::move(pm));
    } else if (*kind == kLogRetire) {
      next = std::max(next, *id + 1);
      pending_.erase(*id);
    } else if (*kind == kLogCheckpoint) {
      next = std::max(next, *id);  // checkpoint carries next_id itself
    }
  }
  next_id_ = next;
}

Status CertifiedPublisher::Publish(const std::string& subject, Bytes payload,
                                   std::string type_name) {
  uint64_t id = next_id_++;
  PendingMessage pm;
  pm.subject = subject;
  pm.type_name = std::move(type_name);
  pm.payload = std::move(payload);
  pm.published_at = bus_->sim()->Now();

  auto logged = ledger_->Append(LogRecordPublish(id, pm));
  if (!logged.ok()) {
    return logged.status();
  }
  pm.lsn = *logged;
  stats_.published++;
  // The paper's ordering: the stable write completes before the message hits the
  // wire. The ledger calls back once the record (and its whole group-commit block)
  // is durable.
  ledger_->WhenDurable(*logged, [this, id, alive = alive_]() {
    if (!*alive) {
      return;
    }
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      SendCertified(id, it->second);
    }
  });
  pending_.emplace(id, std::move(pm));
  ScheduleRetry();
  return OkStatus();
}

Status CertifiedPublisher::PublishObject(const std::string& subject, const DataObject& obj) {
  WireWriter w;
  MarshalObject(obj, &w);
  return Publish(subject, w.Take(), obj.type_name());
}

void CertifiedPublisher::SendCertified(uint64_t id, const PendingMessage& pm) {
  Message m;
  m.subject = pm.subject;
  m.type_name = pm.type_name;
  m.payload = pm.payload;
  m.certified_id = id;
  m.reply_subject = ack_subject();
  bus_->Publish(std::move(m));
}

// hotlint: cold -- crash-recovery entry point, not a steady-state path
Status CertifiedPublisher::Recover() {
  // The ledger scan already ran at Create; re-arming only (re)announces and
  // (re)sends what is still pending. Subscribers dedup, so running this twice —
  // or after retire acks raced the crash — is harmless.
  stats_.recovered = pending_.size();
  for (const auto& [id, pm] : pending_) {
    SendCertified(id, pm);
    stats_.retransmits++;
  }
  ScheduleRetry();
  PublishRecoveryEvent(pending_.size());
  return OkStatus();
}

void CertifiedPublisher::PublishRecoveryEvent(uint64_t rearmed) {
  telemetry::HealthEvent e;
  e.kind = telemetry::HealthEventKind::kRecovery;
  e.severity = telemetry::HealthSeverity::kClear;
  e.node = ledger_name_;
  e.value = static_cast<int64_t>(rearmed);
  e.threshold = static_cast<int64_t>(ledger_->stats().recovered_records);
  e.at_us = static_cast<int64_t>(bus_->sim()->Now());
  Message m;
  m.subject = telemetry::HealthSubject(e.kind, ledger_name_);
  m.type_name = telemetry::kHealthEventType;
  m.payload = e.Marshal();
  // Health lives in the reserved namespace, so this is an internal publish.
  bus_->PublishInternal(std::move(m));
}

// hotlint: cold -- fires only when the pending set drains; one block per checkpoint
Status CertifiedPublisher::Checkpoint() {
  auto lsn = ledger_->Append(LogRecordCheckpoint(next_id_));
  if (!lsn.ok()) {
    return lsn.status();
  }
  IBUS_RETURN_IF_ERROR(ledger_->Sync());
  // Everything below the checkpoint — and below any still-pending publish — is
  // retired history the ledger no longer needs.
  journal::Lsn bound = *lsn;
  for (const auto& [id, pm] : pending_) {
    bound = std::min(bound, pm.lsn);
  }
  return ledger_->Compact(bound);
}

void CertifiedPublisher::HandleAck(const Message& m) {
  if (m.type_name != kAckType) {
    return;
  }
  std::optional<CertAck> ack = ParseAck(m.payload);
  if (!ack.has_value()) {
    return;
  }
  auto it = pending_.find(ack->id);
  if (it == pending_.end()) {
    return;  // already retired
  }
  it->second.ackers.insert(ack->consumer);
  if (static_cast<int>(it->second.ackers.size()) >= config_.required_acks) {
    (void)ledger_->Append(LogRecordRetire(ack->id));
    retire_latency_.Record(bus_->sim()->Now() - it->second.published_at);
    pending_.erase(it);
    stats_.retired++;
    if (pending_.empty() && config_.auto_checkpoint) {
      (void)Checkpoint();
    }
  }
}

void CertifiedPublisher::ScheduleRetry() {
  if (retry_scheduled_ || pending_.empty()) {
    return;
  }
  retry_scheduled_ = true;
  bus_->sim()->ScheduleAfter(
      config_.retry_interval_us,
      [this, alive = alive_]() {
        if (!*alive) {
          return;
        }
        retry_scheduled_ = false;
        for (const auto& [id, pm] : pending_) {
          SendCertified(id, pm);
          stats_.retransmits++;
        }
        ScheduleRetry();
      },
      "bus.certified_retry");
}

// ---------------------------------------------------------------------------------
// CertifiedSubscriber
// ---------------------------------------------------------------------------------

Result<std::unique_ptr<CertifiedSubscriber>> CertifiedSubscriber::Create(
    BusClient* bus, const std::string& pattern, const std::string& consumer_name,
    BusClient::MessageHandler handler) {
  auto sub = std::unique_ptr<CertifiedSubscriber>(
      new CertifiedSubscriber(bus, consumer_name, std::move(handler)));
  auto id = bus->Subscribe(pattern, [s = sub.get()](const Message& m) { s->HandleMessage(m); });
  if (!id.ok()) {
    return id.status();
  }
  sub->sub_id_ = *id;
  return sub;
}

CertifiedSubscriber::~CertifiedSubscriber() {
  if (sub_id_ != 0) {
    bus_->Unsubscribe(sub_id_);
  }
}

void CertifiedSubscriber::HandleMessage(const Message& m) {
  if (m.certified_id == 0 || m.reply_subject.empty()) {
    handler_(m);  // plain reliable message on the same pattern
    return;
  }
  auto& seen = seen_[m.reply_subject];
  const bool duplicate = seen.count(m.certified_id) > 0;
  if (duplicate) {
    stats_.duplicates_dropped++;
  } else {
    seen.insert(m.certified_id);
    stats_.delivered++;
    handler_(m);
  }
  // Always (re-)acknowledge: the publisher may have missed an earlier ack.
  Message ack;
  ack.subject = m.reply_subject;
  ack.type_name = kAckType;
  ack.payload = MarshalAck(m.certified_id, consumer_name_);
  stats_.acks_sent++;
  // The ack subject lives in the reserved namespace, so this is an internal publish.
  bus_->PublishInternal(std::move(ack));
}

}  // namespace ibus
