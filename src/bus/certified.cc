#include "src/bus/certified.h"

#include "src/types/codec.h"
#include "src/wire/wire.h"

namespace ibus {

namespace {
constexpr uint8_t kLogPublish = 1;
constexpr uint8_t kLogRetire = 2;
constexpr char kAckType[] = "_cert.ack";
}  // namespace

// ---------------------------------------------------------------------------------
// CertifiedPublisher
// ---------------------------------------------------------------------------------

Result<std::unique_ptr<CertifiedPublisher>> CertifiedPublisher::Create(
    BusClient* bus, StableStore* store, const std::string& ledger_name,
    const CertifiedConfig& config) {
  auto pub = std::unique_ptr<CertifiedPublisher>(
      new CertifiedPublisher(bus, store, ledger_name, config));
  auto sub = bus->Subscribe(pub->ack_subject(),
                            [p = pub.get()](const Message& m) { p->HandleAck(m); });
  if (!sub.ok()) {
    return sub.status();
  }
  pub->ack_sub_ = *sub;
  return pub;
}

CertifiedPublisher::CertifiedPublisher(BusClient* bus, StableStore* store,
                                       std::string ledger_name, const CertifiedConfig& config)
    : bus_(bus),
      store_(store),
      ledger_name_(std::move(ledger_name)),
      config_(config),
      alive_(std::make_shared<bool>(true)) {}

CertifiedPublisher::~CertifiedPublisher() {
  *alive_ = false;
  if (ack_sub_ != 0) {
    bus_->Unsubscribe(ack_sub_);
  }
}

std::string CertifiedPublisher::ack_subject() const {
  return std::string(kReservedCertPrefix) + "ack." + ledger_name_;
}

Bytes CertifiedPublisher::LogRecordPublish(uint64_t id, const PendingMessage& pm) const {
  WireWriter w;
  w.PutU8(kLogPublish);
  w.PutU64(id);
  w.PutString(pm.subject);
  w.PutString(pm.type_name);
  w.PutBytes(pm.payload);
  return w.Take();
}

Bytes CertifiedPublisher::LogRecordRetire(uint64_t id) const {
  WireWriter w;
  w.PutU8(kLogRetire);
  w.PutU64(id);
  return w.Take();
}

Status CertifiedPublisher::Publish(const std::string& subject, Bytes payload,
                                   std::string type_name) {
  uint64_t id = next_id_++;
  PendingMessage pm;
  pm.subject = subject;
  pm.type_name = std::move(type_name);
  pm.payload = std::move(payload);
  pm.published_at = bus_->sim()->Now();

  auto logged = store_->Append(LogRecordPublish(id, pm));
  if (!logged.ok()) {
    return logged.status();
  }
  stats_.published++;
  // The paper's ordering: stable write completes before the message hits the wire.
  bus_->sim()->ScheduleAfter(store_->WriteLatency(), [this, id, alive = alive_]() {
    if (!*alive) {
      return;
    }
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      SendCertified(id, it->second);
    }
  });
  pending_.emplace(id, std::move(pm));
  ScheduleRetry();
  return OkStatus();
}

Status CertifiedPublisher::PublishObject(const std::string& subject, const DataObject& obj) {
  WireWriter w;
  MarshalObject(obj, &w);
  return Publish(subject, w.Take(), obj.type_name());
}

void CertifiedPublisher::SendCertified(uint64_t id, const PendingMessage& pm) {
  Message m;
  m.subject = pm.subject;
  m.type_name = pm.type_name;
  m.payload = pm.payload;
  m.certified_id = id;
  m.reply_subject = ack_subject();
  bus_->Publish(std::move(m));
}

Status CertifiedPublisher::Recover() {
  auto records = store_->ReadFrom(0);
  if (!records.ok()) {
    return records.status();
  }
  pending_.clear();
  uint64_t max_id = 0;
  for (const Bytes& rec : *records) {
    WireReader r(rec);
    auto kind = r.ReadU8();
    auto id = r.ReadU64();
    if (!kind.ok() || !id.ok()) {
      continue;  // torn record; ignore
    }
    max_id = std::max(max_id, *id);
    if (*kind == kLogPublish) {
      PendingMessage pm;
      auto subject = r.ReadString();
      auto type_name = r.ReadString();
      auto payload = r.ReadBytes();
      if (!subject.ok() || !type_name.ok() || !payload.ok()) {
        continue;
      }
      pm.subject = subject.take();
      pm.type_name = type_name.take();
      pm.payload = payload.take();
      pm.published_at = bus_->sim()->Now();
      pending_.emplace(*id, std::move(pm));
    } else if (*kind == kLogRetire) {
      pending_.erase(*id);
    }
  }
  next_id_ = max_id + 1;
  // Republish everything unacknowledged (at-least-once across the crash).
  for (const auto& [id, pm] : pending_) {
    SendCertified(id, pm);
    stats_.retransmits++;
  }
  ScheduleRetry();
  return OkStatus();
}

void CertifiedPublisher::HandleAck(const Message& m) {
  if (m.type_name != kAckType) {
    return;
  }
  WireReader r(m.payload);
  auto id = r.ReadU64();
  auto consumer = r.ReadString();
  if (!id.ok() || !consumer.ok()) {
    return;
  }
  auto it = pending_.find(*id);
  if (it == pending_.end()) {
    return;  // already retired
  }
  it->second.ackers.insert(*consumer);
  if (static_cast<int>(it->second.ackers.size()) >= config_.required_acks) {
    store_->Append(LogRecordRetire(*id));
    retire_latency_.Record(bus_->sim()->Now() - it->second.published_at);
    pending_.erase(it);
    stats_.retired++;
  }
}

void CertifiedPublisher::ScheduleRetry() {
  if (retry_scheduled_ || pending_.empty()) {
    return;
  }
  retry_scheduled_ = true;
  bus_->sim()->ScheduleAfter(config_.retry_interval_us, [this, alive = alive_]() {
    if (!*alive) {
      return;
    }
    retry_scheduled_ = false;
    for (const auto& [id, pm] : pending_) {
      SendCertified(id, pm);
      stats_.retransmits++;
    }
    ScheduleRetry();
  });
}

// ---------------------------------------------------------------------------------
// CertifiedSubscriber
// ---------------------------------------------------------------------------------

Result<std::unique_ptr<CertifiedSubscriber>> CertifiedSubscriber::Create(
    BusClient* bus, const std::string& pattern, const std::string& consumer_name,
    BusClient::MessageHandler handler) {
  auto sub = std::unique_ptr<CertifiedSubscriber>(
      new CertifiedSubscriber(bus, consumer_name, std::move(handler)));
  auto id = bus->Subscribe(pattern, [s = sub.get()](const Message& m) { s->HandleMessage(m); });
  if (!id.ok()) {
    return id.status();
  }
  sub->sub_id_ = *id;
  return sub;
}

CertifiedSubscriber::~CertifiedSubscriber() {
  if (sub_id_ != 0) {
    bus_->Unsubscribe(sub_id_);
  }
}

void CertifiedSubscriber::HandleMessage(const Message& m) {
  if (m.certified_id == 0 || m.reply_subject.empty()) {
    handler_(m);  // plain reliable message on the same pattern
    return;
  }
  auto& seen = seen_[m.reply_subject];
  const bool duplicate = seen.count(m.certified_id) > 0;
  if (duplicate) {
    stats_.duplicates_dropped++;
  } else {
    seen.insert(m.certified_id);
    stats_.delivered++;
    handler_(m);
  }
  // Always (re-)acknowledge: the publisher may have missed an earlier ack.
  Message ack;
  ack.subject = m.reply_subject;
  ack.type_name = kAckType;
  WireWriter w;
  w.PutU64(m.certified_id);
  w.PutString(consumer_name_);
  ack.payload = w.Take();
  stats_.acks_sent++;
  // The ack subject lives in the reserved namespace, so this is an internal publish.
  bus_->PublishInternal(std::move(ack));
}

}  // namespace ibus
