// Bus messages: a subject label plus an opaque payload, with the few optional header
// fields the control protocols need (reply subject for request/reply and discovery,
// type name for self-describing data objects, certified-delivery id). The core
// attaches no further semantics (paper P1).
#ifndef SRC_BUS_MESSAGE_H_
#define SRC_BUS_MESSAGE_H_

#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/types/data_object.h"

namespace ibus {

struct Message {
  std::string subject;
  std::string reply_subject;  // where responses should be published (may be empty)
  std::string type_name;      // set when the payload is a marshalled DataObject
  std::string sender;         // client name, informational only
  uint64_t certified_id = 0;  // nonzero for guaranteed (certified) delivery
  uint64_t publisher_id = 0;  // stable id of the publishing client (certified dedup)
  uint8_t hops = 0;           // times forwarded by information routers (loop cap)
  std::string via;            // name of the last router that forwarded this message
  uint64_t trace_id = 0;      // nonzero when this message's path is being traced
  uint8_t trace_hop = 0;      // bumped at each router traversal (see src/telemetry)
  Bytes payload;

  Bytes Marshal() const;
  static Result<Message> Unmarshal(const Bytes& b);

  // Reads only the leading subject field from a marshalled message — cheap enough
  // for per-subject flow accounting on the publish hot path, where a full Unmarshal
  // (which copies the payload) would be wasteful. The view aliases `b` and is valid
  // only while `b` lives.
  static Result<std::string_view> PeekSubject(const Bytes& b);

  // Convenience: build a message carrying a marshalled data object.
  static Message ForObject(std::string subject, const DataObject& obj);

  // Convenience: decode the payload as a data object (requires type_name set).
  Result<DataObjectPtr> DecodeObject() const;
};

// Well-known control subjects used by the bus control plane (reserved namespace,
// see src/subject/subject.h).
inline constexpr char kSubQuerySubject[] = "_ibus.sub.query";  // buslint: allow(reserved-subject)
inline constexpr char kSubEventSubject[] = "_ibus.sub.event";  // buslint: allow(reserved-subject)

}  // namespace ibus

#endif  // SRC_BUS_MESSAGE_H_
