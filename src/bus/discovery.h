// Dynamic discovery (paper §3.2): "One participant publishes 'Who's out there?' under
// a subject. The other participants publish 'I am' and other information describing
// their state, if they serve the subject in question." The subject alone is enough to
// make contact — the network itself is the name service, preserving P4.
#ifndef SRC_BUS_DISCOVERY_H_
#define SRC_BUS_DISCOVERY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/client.h"

namespace ibus {

// Type-name markers distinguishing discovery traffic from ordinary data on a subject.
inline constexpr char kDiscoveryQueryType[] = "_discovery.query";
inline constexpr char kDiscoveryResponseType[] = "_discovery.response";

// One-shot "Who's out there?" query. Collects every "I am" that arrives within
// `timeout_us` and passes them to `done`. The object manages its own lifetime.
class DiscoveryQuery {
 public:
  using DoneFn = std::function<void(std::vector<Message> responses)>;

  // `query_payload` rides along with the question (service-specific refinement).
  static Status Run(BusClient* bus, const std::string& subject, SimTime timeout_us,
                    DoneFn done, Bytes query_payload = Bytes());

 private:
  DiscoveryQuery() = default;
};

// Standing responder: answers every discovery query on `subject` with the payload
// produced by `describe` (e.g. a server's point-to-point address and current load).
// A describe function returning empty bytes suppresses the answer — used by gated
// responders (election backups, type resolvers without the type).
class DiscoveryResponder {
 public:
  using DescribeFn = std::function<Bytes(const Message& query)>;

  static Result<std::unique_ptr<DiscoveryResponder>> Create(BusClient* bus,
                                                            const std::string& subject,
                                                            DescribeFn describe);
  ~DiscoveryResponder();
  DiscoveryResponder(const DiscoveryResponder&) = delete;
  DiscoveryResponder& operator=(const DiscoveryResponder&) = delete;

 private:
  DiscoveryResponder(BusClient* bus, DescribeFn describe)
      : bus_(bus), describe_(std::move(describe)) {}

  BusClient* bus_;
  DescribeFn describe_;
  uint64_t sub_id_ = 0;
};

}  // namespace ibus

#endif  // SRC_BUS_DISCOVERY_H_
