#include "src/bus/message.h"

#include "src/types/codec.h"
#include "src/wire/wire.h"

namespace ibus {

// wirecheck: codec(message, version=0)
// hotlint: hot
Bytes Message::Marshal() const {  // hotlint: allow(hot-by-value) -- serialization boundary: NRVO into the send buffer
  WireWriter w;
  w.PutString(subject);
  w.PutString(reply_subject);
  w.PutString(type_name);
  w.PutString(sender);
  w.PutU64(certified_id);
  w.PutU64(publisher_id);
  w.PutU8(hops);
  w.PutString(via);
  w.PutU64(trace_id);
  w.PutU8(trace_hop);
  w.PutBytes(payload);
  return w.Take();
}

// wirecheck: codec(message, version=0)
Result<Message> Message::Unmarshal(const Bytes& b) {  // hotlint: hot
  WireReader r(b);
  Message m;
  auto subject = r.ReadString();
  auto reply = r.ReadString();
  auto type_name = r.ReadString();
  auto sender = r.ReadString();
  auto certified = r.ReadU64();
  auto publisher = r.ReadU64();
  auto hops = r.ReadU8();
  auto via = r.ReadString();
  auto trace_id = r.ReadU64();
  auto trace_hop = r.ReadU8();
  auto payload = r.ReadBytes();
  if (!subject.ok() || !reply.ok() || !type_name.ok() || !sender.ok() || !certified.ok() ||
      !publisher.ok() || !hops.ok() || !via.ok() || !trace_id.ok() || !trace_hop.ok() ||
      !payload.ok()) {
    return DataLoss("message: truncated");
  }
  if (!r.AtEnd()) {
    return DataLoss("message: trailing bytes");
  }
  m.hops = *hops;
  m.via = via.take();
  m.trace_id = *trace_id;
  m.trace_hop = *trace_hop;
  m.subject = subject.take();
  m.reply_subject = reply.take();
  m.type_name = type_name.take();
  m.sender = sender.take();
  m.certified_id = *certified;
  m.publisher_id = *publisher;
  m.payload = payload.take();
  return m;
}

Result<std::string_view> Message::PeekSubject(const Bytes& b) {
  WireReader r(b);
  auto subject = r.ReadStringView();
  if (!subject.ok()) {
    return DataLoss("message: truncated");
  }
  return *subject;
}

Message Message::ForObject(std::string subject, const DataObject& obj) {
  Message m;
  m.subject = std::move(subject);
  m.type_name = obj.type_name();
  m.payload = MarshalObject(obj);
  return m;
}

Result<DataObjectPtr> Message::DecodeObject() const {
  if (type_name.empty()) {
    return FailedPrecondition("message carries no data object");
  }
  return UnmarshalObject(payload);
}

}  // namespace ibus
