#include "src/bus/daemon.h"

#include "src/common/logging.h"
#include "src/wire/wire.h"

namespace ibus {

Result<std::unique_ptr<BusDaemon>> BusDaemon::Start(Network* net, HostId host,
                                                    const BusConfig& config) {
  auto daemon = std::unique_ptr<BusDaemon>(new BusDaemon(net, host, config));
  auto socket = net->OpenSocket(host, config.daemon_port,
                                [d = daemon.get()](const Datagram& dg) { d->HandleDatagram(dg); });
  if (!socket.ok()) {
    return socket.status();
  }
  daemon->socket_ = socket.take();
  // One broadcast stream per daemon *boot*: the host id keys it uniquely on the
  // bus and the boot epoch makes a restarted daemon a brand-new stream — peers
  // still holding receiver state for the previous incarnation would otherwise
  // drop the restarted sender's low sequence numbers as duplicates. The first
  // boot has epoch 0, so single-boot runs keep their historical stream ids.
  const uint64_t epoch = net->NextBootEpoch(host);
  const uint64_t stream_id = (epoch << 32) | (static_cast<uint64_t>(host) + 1);
  daemon->sender_ = std::make_unique<ReliableSender>(
      net->sim(), daemon->socket_.get(), config.daemon_port, stream_id, config.reliable,
      &daemon->metrics_, &daemon->recorder_);
  daemon->receiver_ = std::make_unique<ReliableReceiver>(
      net->sim(), daemon->socket_.get(), config.reliable,
      [d = daemon.get()](uint64_t /*stream*/, const Bytes& bytes) { d->DispatchInbound(bytes); },
      nullptr, &daemon->metrics_, &daemon->recorder_);
  return daemon;
}

BusDaemon::BusDaemon(Network* net, HostId host, const BusConfig& config)
    : net_(net),
      host_(host),
      config_(config),
      recorder_("daemon@" + std::to_string(host), config.flight_recorder_capacity),
      subject_sketch_(config.sketch_capacity),
      peer_sketch_(config.sketch_capacity),
      publishes_(metrics_.GetCounter(kMetricPublishes)),
      dispatched_(metrics_.GetCounter(kMetricDispatched)),
      deliveries_(metrics_.GetCounter(kMetricDeliveries)),
      no_match_(metrics_.GetCounter(kMetricNoMatch)),
      subscriptions_(metrics_.GetGauge(kMetricSubscriptions)),
      sub_churn_(metrics_.GetCounter(kMetricSubChurn)),
      publish_bytes_(metrics_.GetCounter(kMetricPublishBytes)),
      self_bytes_(metrics_.GetCounter(kMetricSelfBytes)),
      self_msgs_(metrics_.GetCounter(kMetricSelfMsgs)),
      publish_size_(metrics_.GetHistogram(kMetricPublishSize)) {}

DaemonStats BusDaemon::stats() const {
  DaemonStats s;
  s.publishes = publishes_->value();
  s.dispatched_messages = dispatched_->value();
  s.deliveries = deliveries_->value();
  s.no_match = no_match_->value();
  s.sub_churn = sub_churn_->value();
  return s;
}

SubjectFlow& BusDaemon::FlowFor(std::string_view subject) {
  std::string_view root = subject.substr(0, subject.find(kSubjectSeparator));
  // Heterogeneous lookup: the steady-state (existing flow) path allocates nothing.
  auto it = flows_.find(root);
  if (it != flows_.end()) {
    return it->second;
  }
  if (flows_.size() >= kMaxFlowSubjects) {
    root = kFlowOverflowKey;
    if (auto ov = flows_.find(root); ov != flows_.end()) {
      return ov->second;
    }
  }
  return flows_.emplace(root, SubjectFlow{}).first->second;  // hotlint: allow(hot-container-growth) -- first sight of a flow root: once per root, not per message
}

BusDaemon::~BusDaemon() = default;

void BusDaemon::HandleDatagram(const Datagram& d) {  // hotlint: hot
  auto frame = ParseFrame(d.payload);
  if (!frame.ok()) {
    IBUS_WARN() << "daemon@" << host_ << ": dropping bad frame: " << frame.status().ToString();  // hotlint: allow(hot-iostream) -- malformed-frame drop: error path, not per-message
    recorder_.Record(net_->sim()->Now(), telemetry::FlightEventKind::kDrop, "",
                     "bad frame: " + frame.status().ToString());  // hotlint: allow(hot-string) -- malformed-frame drop detail: error path
    return;
  }
  switch (frame->frame_type) {
    case kPktData: {
      auto pkt = DataPacket::Unmarshal(frame->payload);
      if (pkt.ok()) {
        receiver_->HandleData(*pkt, d.src_host, d.src_port);
      }
      break;
    }
    case kPktBatch: {
      auto pkt = BatchPacket::Unmarshal(frame->payload);
      if (pkt.ok()) {
        receiver_->HandleBatch(*pkt, d.src_host, d.src_port);
      }
      break;
    }
    case kPktHeartbeat: {
      auto pkt = HeartbeatPacket::Unmarshal(frame->payload);
      if (pkt.ok()) {
        receiver_->HandleHeartbeat(*pkt, d.src_host, d.src_port);
      }
      break;
    }
    case kPktNak: {
      auto pkt = NakPacket::Unmarshal(frame->payload);
      if (pkt.ok() && pkt->stream_id == sender_->stream_id()) {
        sender_->HandleNak(*pkt, d.src_host, d.src_port);
      }
      break;
    }
    case kPktClientRegister:
      HandleClientRegister(d, frame->payload);
      break;
    case kPktClientUnregister:
      HandleClientUnregister(d);
      break;
    case kPktSubscribe:
      HandleSubscribe(d, frame->payload);
      break;
    case kPktUnsubscribe:
      HandleUnsubscribe(d, frame->payload);
      break;
    case kPktClientMessage:
      HandleClientPublish(d, frame->payload);
      break;
    default:
      IBUS_WARN() << "daemon@" << host_ << ": unknown frame type "  // hotlint: allow(hot-iostream) -- unknown-frame warning: error path
                  << static_cast<int>(frame->frame_type);
      break;
  }
}

void BusDaemon::HandleClientRegister(const Datagram& d, const Bytes& payload) {
  WireReader r(payload);
  auto name = r.ReadString();
  if (!name.ok()) {
    return;
  }
  clients_[d.src_port] = ClientInfo{name.take()};
}

void BusDaemon::HandleClientUnregister(const Datagram& d) {  // hotlint: cold -- client-unregister control path: runs per disconnect, not per message
  clients_.erase(d.src_port);
  // Remove all subscriptions held by this client.
  std::vector<uint64_t> to_remove;
  for (const auto& [key, sub] : subs_) {
    if (sub.client_port == d.src_port) {
      to_remove.push_back(key);
    }
  }
  for (uint64_t key : to_remove) {
    const Sub& sub = subs_[key];
    trie_.Remove(sub.pattern, key);
    if (--pattern_refs_[sub.pattern] == 0) {
      pattern_refs_.erase(sub.pattern);
      AnnounceSubscription(false, sub.pattern, sub.client_name);
    }
    subs_.erase(key);
    sub_churn_->Inc();
  }
  subscriptions_->Set(static_cast<int64_t>(subs_.size()));
}

void BusDaemon::HandleSubscribe(const Datagram& d, const Bytes& payload) {
  WireReader r(payload);
  auto client_sub_id = r.ReadU64();
  auto pattern = r.ReadString();
  if (!client_sub_id.ok() || !pattern.ok()) {
    return;
  }
  Sub sub;
  sub.client_port = d.src_port;
  sub.client_sub_id = *client_sub_id;
  sub.pattern = pattern.take();
  auto cit = clients_.find(d.src_port);
  sub.client_name = cit != clients_.end() ? cit->second.name : "";
  uint64_t key = next_sub_key_++;
  if (!trie_.Insert(sub.pattern, key).ok()) {
    return;  // invalid pattern; the client validated too, so this is defensive
  }
  bool fresh = ++pattern_refs_[sub.pattern] == 1;
  std::string pattern_copy = sub.pattern;
  std::string client_name = sub.client_name;
  subs_[key] = std::move(sub);
  subscriptions_->Set(static_cast<int64_t>(subs_.size()));
  sub_churn_->Inc();
  if (fresh) {
    AnnounceSubscription(true, pattern_copy, client_name);
  }
}

void BusDaemon::HandleUnsubscribe(const Datagram& d, const Bytes& payload) {
  WireReader r(payload);
  auto client_sub_id = r.ReadU64();
  if (!client_sub_id.ok()) {
    return;
  }
  for (auto it = subs_.begin(); it != subs_.end(); ++it) {
    if (it->second.client_port == d.src_port && it->second.client_sub_id == *client_sub_id) {
      trie_.Remove(it->second.pattern, it->first);
      if (--pattern_refs_[it->second.pattern] == 0) {
        pattern_refs_.erase(it->second.pattern);
        AnnounceSubscription(false, it->second.pattern, it->second.client_name);
      }
      subs_.erase(it);
      subscriptions_->Set(static_cast<int64_t>(subs_.size()));
      sub_churn_->Inc();
      return;
    }
  }
}

void BusDaemon::HandleClientPublish(const Datagram& /*from*/, const Bytes& payload) {  // hotlint: hot
  publishes_->Inc();
  publish_bytes_->Inc(payload.size());
  publish_size_->Record(static_cast<int64_t>(payload.size()));
  // Flow accounting reads only the leading subject field; the payload itself stays
  // opaque on the send path.
  if (auto subject = Message::PeekSubject(payload); subject.ok()) {
    SubjectFlow& flow = FlowFor(*subject);
    flow.publishes++;
    flow.bytes_in += payload.size();
    // Self-overhead accounting: bytes the observability plane injects through local
    // clients (trace spans, stats snapshots, health beacons) attribute to
    // telemetry.self.* at this choke point.
    if (IsObservabilitySubject(*subject)) {
      self_bytes_->Inc(payload.size());
      self_msgs_->Inc();
    }
    recorder_.Record(net_->sim()->Now(), telemetry::FlightEventKind::kPublish,
                     std::string(*subject), "bytes=" + std::to_string(payload.size()));  // hotlint: allow(hot-string) -- flight-recorder entry: the ring stores owning strings by design
  }
  // The daemon treats the marshalled message as opaque: it goes straight onto the
  // reliable broadcast stream. Subject matching happens at every receiving daemon
  // (including this one, via medium loopback).
  sender_->Publish(payload);
#if IBUS_TELEMETRY
  // Peek at the envelope only when the publish is traced; untraced messages stay
  // opaque to the daemon's send path.
  auto msg = Message::Unmarshal(payload);
  if (msg.ok() && msg->trace_id != 0) {
    EmitHop(telemetry::HopKind::kWireSend, *msg);
  }
#endif
}

Status BusDaemon::PublishFromDaemon(const Message& m) {
  Bytes bytes = m.Marshal();
  publish_bytes_->Inc(bytes.size());
  // Daemon-originated traffic (hop spans, sub gossip) runs through the same
  // self-overhead classifier as client publishes.
  if (IsObservabilitySubject(m.subject)) {
    self_bytes_->Inc(bytes.size());
    self_msgs_->Inc();
  }
  return sender_->Publish(bytes);
}

void BusDaemon::DispatchInbound(const Bytes& message_bytes) {  // hotlint: hot
  auto msg = Message::Unmarshal(message_bytes);
  if (!msg.ok()) {
    IBUS_WARN() << "daemon@" << host_ << ": undecodable message: " << msg.status().ToString();  // hotlint: allow(hot-iostream) -- undecodable-message drop: error path
    recorder_.Record(net_->sim()->Now(), telemetry::FlightEventKind::kDrop, "",
                     "undecodable message: " + msg.status().ToString());  // hotlint: allow(hot-string) -- undecodable-message drop detail: error path
    return;
  }
  // Heavy-hitter accounting: every in-order message on the bus (including the
  // observability plane's own) feeds the fixed-memory sketches. O(capacity) scans,
  // no steady-state allocation — see src/telemetry/sketch.h.
  subject_sketch_.Offer(msg->subject);
  if (!msg->sender.empty()) {
    peer_sketch_.Offer(msg->sender);
  }
  if (config_.announce_subscriptions && msg->subject == kSubQuerySubject &&
      !msg->reply_subject.empty()) {
    AnswerSubQuery(*msg);
  }
  std::vector<uint64_t> matches;
  trie_.Match(msg->subject, &matches);
  if (matches.empty()) {
    no_match_->Inc();
    return;
  }
  dispatched_->Inc();
  // Group matched subscriptions by client so each client gets one delivery datagram.
  std::map<Port, std::vector<uint64_t>> by_client;
  for (uint64_t key : matches) {
    auto it = subs_.find(key);
    if (it != subs_.end()) {
      by_client[it->second.client_port].push_back(it->second.client_sub_id);  // hotlint: allow(hot-container-growth) -- per-dispatch fan-out grouping, bounded by matched clients
    }
  }
  SubjectFlow& flow = FlowFor(msg->subject);
  for (const auto& [port, sub_ids] : by_client) {
    WireWriter w;
    w.PutVarint(sub_ids.size());
    for (uint64_t id : sub_ids) {
      w.PutU64(id);
    }
    w.PutRaw(message_bytes);
    socket_->SendTo(host_, port, FrameMessage(kPktClientDeliver, w.Take()));
    deliveries_->Inc();
    flow.deliveries++;
    flow.bytes_out += message_bytes.size();
  }
#if IBUS_TELEMETRY
  if (msg->trace_id != 0) {
    EmitHop(telemetry::HopKind::kDispatch, *msg);
  }
#endif
}

#if IBUS_TELEMETRY
void BusDaemon::EmitHop(telemetry::HopKind kind, const Message& m) {  // hotlint: cold -- trace-hop emission: runs only for traced messages, not the untraced fast path
  telemetry::HopRecord rec;
  rec.trace_id = m.trace_id;
  rec.hop = m.trace_hop;
  rec.kind = kind;
  rec.node = "daemon@" + std::to_string(host_);
  rec.subject = m.subject;
  rec.at_us = net_->sim()->Now();
  rec.certified_id = m.certified_id;
  Message span;
  span.subject = telemetry::HopSubject(kind);
  span.type_name = telemetry::kHopRecordType;
  span.payload = rec.Marshal();
  PublishFromDaemon(span);
}
#endif

void BusDaemon::AnnounceSubscription(bool added, const std::string& pattern,
                                     const std::string& client_name) {
  if (!config_.announce_subscriptions) {
    return;
  }
  Message m;
  m.subject = kSubEventSubject;
  WireWriter w;
  w.PutBool(added);
  w.PutString(pattern);
  w.PutString(client_name);
  m.payload = w.Take();
  PublishFromDaemon(m);
}

void BusDaemon::AnswerSubQuery(const Message& query) {
  Message reply;
  reply.subject = query.reply_subject;
  WireWriter w;
  w.PutVarint(pattern_refs_.size());
  for (const auto& [pattern, refs] : pattern_refs_) {
    w.PutString(pattern);
    // Routers need the owning clients' names to filter out their own subscriptions;
    // report the first client holding this pattern.
    std::string owner;
    for (const auto& [key, sub] : subs_) {
      if (sub.pattern == pattern) {
        owner = sub.client_name;
        break;
      }
    }
    w.PutString(owner);
  }
  reply.payload = w.Take();
  PublishFromDaemon(reply);
}

}  // namespace ibus
