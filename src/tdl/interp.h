// The TDL interpreter (paper P3): defclass registers types in a TypeRegistry at
// run-time, make-instance builds bus-publishable DataObjects, and defmethod provides
// CLOS-style generic functions with single dispatch along the supertype chain.
//
// Special forms: quote, if, cond, and, or, let, let*, lambda, setq, progn, while,
//                defun, defclass, defmethod
// Core builtins: arithmetic/comparison, list ops, string ops, slot-value,
//                set-slot-value!, make-instance, type-of, isa?, describe, print.
#ifndef SRC_TDL_INTERP_H_
#define SRC_TDL_INTERP_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/tdl/datum.h"
#include "src/tdl/parser.h"
#include "src/types/registry.h"

namespace ibus {

class TdlEnv {
 public:
  explicit TdlEnv(TdlEnvPtr parent = nullptr) : parent_(std::move(parent)) {}

  const Datum* Lookup(const std::string& name) const {
    for (const TdlEnv* env = this; env != nullptr; env = env->parent_.get()) {
      auto it = env->vars_.find(name);
      if (it != env->vars_.end()) {
        return &it->second;
      }
    }
    return nullptr;
  }

  void Define(const std::string& name, Datum value) { vars_[name] = std::move(value); }

  // Drops all bindings and the parent link. Used by ~TdlInterp to break
  // env -> closure -> env reference cycles; the env is unusable afterwards.
  void Clear() {
    vars_.clear();
    parent_.reset();
  }

  // Names bound directly in this scope (not parents), unordered.
  std::vector<std::string> Names() const {
    std::vector<std::string> out;
    out.reserve(vars_.size());
    for (const auto& [name, value] : vars_) {
      out.push_back(name);
    }
    return out;
  }

  // Assigns in the scope where `name` is bound, or the current scope if unbound.
  void Set(const std::string& name, Datum value) {
    for (TdlEnv* env = this; env != nullptr; env = env->parent_.get()) {
      auto it = env->vars_.find(name);
      if (it != env->vars_.end()) {
        it->second = std::move(value);
        return;
      }
    }
    vars_[name] = std::move(value);
  }

 private:
  TdlEnvPtr parent_;
  std::unordered_map<std::string, Datum> vars_;
};

class TdlInterp {
 public:
  // The interpreter defines classes into (and dispatches methods using) `registry`,
  // which is shared with the rest of the process (bus codecs, repository, ...).
  explicit TdlInterp(TypeRegistry* registry);

  // Environments and closures form reference cycles (an env binds a lambda whose
  // closure is that same env, e.g. any defun). The interpreter is the GC root:
  // it records every environment it creates and severs them all on destruction.
  ~TdlInterp();

  // Evaluates a whole program; returns the value of the last form.
  Result<Datum> EvalProgram(std::string_view source);

  // Evaluates one already-parsed form in the global environment.
  Result<Datum> Eval(const Datum& form) { return Eval(form, global_); }

  Result<Datum> Eval(const Datum& form, const TdlEnvPtr& env);

  // Host interop: expose a native function or constant to scripts.
  void DefineNative(const std::string& name, Datum::NativeFn fn);
  void DefineGlobal(const std::string& name, Datum value);

  // Every name bound in the global environment (builtins + host definitions).
  // tdlcheck's tests cross-check its static builtin table against this, so the
  // analyzer cannot silently drift from the interpreter.
  std::vector<std::string> GlobalNames() const { return global_->Names(); }

  // Calls a generic function (as defmethod'd in scripts) from C++.
  Result<Datum> CallGeneric(const std::string& name, std::vector<Datum> args);

  // Applies a callable datum (lambda/native/generic name) to already-evaluated
  // arguments; the host-interop entry point for callbacks into scripts.
  Result<Datum> Apply(const Datum& fn, std::vector<Datum>& args);

  TypeRegistry* registry() { return registry_; }

  // Output produced by (print ...), collected for embedding hosts (e.g. the
  // application builder renders it); cleared by TakeOutput.
  std::string TakeOutput() { return std::move(output_); }

 private:
  struct Method {
    std::string specializer;  // class name of the first parameter
    std::vector<std::string> params;
    std::vector<Datum> body;
    TdlEnvPtr closure;
  };

  Result<Datum> EvalList(const Datum::List& list, const TdlEnvPtr& env);
  Result<Datum> EvalBody(const std::vector<Datum>& body, const TdlEnvPtr& env);
  Result<Datum> DispatchGeneric(const std::string& name, std::vector<Datum>& args);

  Result<Datum> FormDefclass(const Datum::List& list, const TdlEnvPtr& env);
  Result<Datum> FormDefmethod(const Datum::List& list, const TdlEnvPtr& env);

  void InstallBuiltins();

  // All environment creation funnels through here so ~TdlInterp can find and
  // sever every env that is still alive (see env_registry_).
  TdlEnvPtr MakeEnv(TdlEnvPtr parent);

  TypeRegistry* registry_;
  TdlEnvPtr global_;
  std::map<std::string, std::vector<Method>> generics_;
  std::string output_;
  // Weak handles to every env ever created; expired entries are pruned
  // opportunistically so the registry tracks live envs, not call history.
  std::vector<std::weak_ptr<TdlEnv>> env_registry_;
  size_t env_prune_threshold_ = 64;
};

}  // namespace ibus

#endif  // SRC_TDL_INTERP_H_
