#include "src/tdl/interp.h"

#include <algorithm>
#include <cmath>

#include "src/types/printer.h"

namespace ibus {

namespace {

Status Arity(const std::string& form, const Datum::List& list, size_t min, size_t max) {
  size_t argc = list.size() - 1;
  if (argc < min || argc > max) {
    return InvalidArgument("tdl: " + form + " takes " + std::to_string(min) +
                           (max == min ? "" : ".." + std::to_string(max)) + " args, got " +
                           std::to_string(argc));
  }
  return OkStatus();
}

bool IsKeyword(const Datum& d) { return d.is_symbol() && !d.AsSymbol().empty() &&
                                        d.AsSymbol()[0] == ':'; }

}  // namespace

TdlInterp::TdlInterp(TypeRegistry* registry) : registry_(registry) {
  global_ = MakeEnv(nullptr);
  InstallBuiltins();
}

TdlInterp::~TdlInterp() {
  // Sever every surviving environment. Bindings like (defun f ...) make the env
  // hold a lambda whose closure is that same env; without this sweep those
  // cycles (and everything they pin) outlive the interpreter.
  for (const auto& weak : env_registry_) {
    if (auto env = weak.lock()) {
      env->Clear();
    }
  }
}

TdlEnvPtr TdlInterp::MakeEnv(TdlEnvPtr parent) {
  auto env = std::make_shared<TdlEnv>(std::move(parent));
  if (env_registry_.size() >= env_prune_threshold_) {
    std::erase_if(env_registry_, [](const std::weak_ptr<TdlEnv>& w) { return w.expired(); });
    env_prune_threshold_ = std::max<size_t>(64, env_registry_.size() * 2);
  }
  env_registry_.push_back(env);
  return env;
}

void TdlInterp::DefineNative(const std::string& name, Datum::NativeFn fn) {
  global_->Define(name, Datum::Native(std::move(fn)));
}

void TdlInterp::DefineGlobal(const std::string& name, Datum value) {
  global_->Define(name, std::move(value));
}

Result<Datum> TdlInterp::EvalProgram(std::string_view source) {
  auto forms = ParseTdl(source);
  if (!forms.ok()) {
    return forms.status();
  }
  Datum last;
  for (const Datum& form : *forms) {
    auto r = Eval(form, global_);
    if (!r.ok()) {
      return r.status();
    }
    last = r.take();
  }
  return last;
}

Result<Datum> TdlInterp::Eval(const Datum& form, const TdlEnvPtr& env) {
  if (form.is_symbol()) {
    const std::string& name = form.AsSymbol();
    if (IsKeyword(form)) {
      return form;  // keywords evaluate to themselves
    }
    const Datum* bound = env->Lookup(name);
    if (bound != nullptr) {
      return *bound;
    }
    if (generics_.count(name) > 0) {
      return form;  // generic functions are applied by name
    }
    return NotFound("tdl: unbound symbol '" + name + "'");
  }
  if (form.is_list()) {
    if (form.AsList().empty()) {
      return Datum();  // () is nil
    }
    return EvalList(form.AsList(), env);
  }
  return form;  // self-evaluating atom
}

Result<Datum> TdlInterp::EvalBody(const std::vector<Datum>& body, const TdlEnvPtr& env) {
  Datum last;
  for (const Datum& form : body) {
    auto r = Eval(form, env);
    if (!r.ok()) {
      return r.status();
    }
    last = r.take();
  }
  return last;
}

Result<Datum> TdlInterp::EvalList(const Datum::List& list, const TdlEnvPtr& env) {
  const Datum& head = list[0];
  if (head.is_symbol()) {
    const std::string& op = head.AsSymbol();

    if (op == "quote") {
      IBUS_RETURN_IF_ERROR(Arity(op, list, 1, 1));
      return list[1];
    }
    if (op == "if") {
      IBUS_RETURN_IF_ERROR(Arity(op, list, 2, 3));
      auto cond = Eval(list[1], env);
      if (!cond.ok()) {
        return cond.status();
      }
      if (cond->Truthy()) {
        return Eval(list[2], env);
      }
      return list.size() > 3 ? Eval(list[3], env) : Result<Datum>(Datum());
    }
    if (op == "cond") {
      for (size_t i = 1; i < list.size(); ++i) {
        if (!list[i].is_list() || list[i].AsList().empty()) {
          return InvalidArgument("tdl: cond clause must be a non-empty list");
        }
        const Datum::List& clause = list[i].AsList();
        auto test = Eval(clause[0], env);
        if (!test.ok()) {
          return test.status();
        }
        if (test->Truthy()) {
          if (clause.size() == 1) {
            return test;
          }
          return EvalBody(std::vector<Datum>(clause.begin() + 1, clause.end()), env);
        }
      }
      return Datum();
    }
    if (op == "and") {
      Datum last(true);
      for (size_t i = 1; i < list.size(); ++i) {
        auto r = Eval(list[i], env);
        if (!r.ok()) {
          return r.status();
        }
        if (!r->Truthy()) {
          return r;
        }
        last = r.take();
      }
      return last;
    }
    if (op == "or") {
      for (size_t i = 1; i < list.size(); ++i) {
        auto r = Eval(list[i], env);
        if (!r.ok()) {
          return r.status();
        }
        if (r->Truthy()) {
          return r;
        }
      }
      return Datum();
    }
    if (op == "let" || op == "let*") {
      if (list.size() < 2 || !list[1].is_list()) {
        return InvalidArgument("tdl: let needs a binding list");
      }
      auto scope = MakeEnv(env);
      const TdlEnvPtr& eval_env = op == "let*" ? scope : env;
      for (const Datum& binding : list[1].AsList()) {
        if (!binding.is_list() || binding.AsList().size() != 2 ||
            !binding.AsList()[0].is_symbol()) {
          return InvalidArgument("tdl: let binding must be (name expr)");
        }
        auto value = Eval(binding.AsList()[1], eval_env);
        if (!value.ok()) {
          return value.status();
        }
        scope->Define(binding.AsList()[0].AsSymbol(), value.take());
      }
      return EvalBody(std::vector<Datum>(list.begin() + 2, list.end()), scope);
    }
    if (op == "lambda") {
      if (list.size() < 3 || !list[1].is_list()) {
        return InvalidArgument("tdl: lambda needs (params) body");
      }
      auto fn = std::make_shared<TdlLambda>();
      for (const Datum& p : list[1].AsList()) {
        if (!p.is_symbol()) {
          return InvalidArgument("tdl: lambda params must be symbols");
        }
        fn->params.push_back(p.AsSymbol());
      }
      fn->body.assign(list.begin() + 2, list.end());
      fn->closure = env;
      return Datum(fn);
    }
    if (op == "setq") {
      IBUS_RETURN_IF_ERROR(Arity(op, list, 2, 2));
      if (!list[1].is_symbol()) {
        return InvalidArgument("tdl: setq needs a symbol");
      }
      auto value = Eval(list[2], env);
      if (!value.ok()) {
        return value.status();
      }
      env->Set(list[1].AsSymbol(), *value);
      return value;
    }
    if (op == "progn") {
      return EvalBody(std::vector<Datum>(list.begin() + 1, list.end()), env);
    }
    if (op == "when" || op == "unless") {
      if (list.size() < 2) {
        return InvalidArgument("tdl: " + op + " needs a condition");
      }
      auto cond = Eval(list[1], env);
      if (!cond.ok()) {
        return cond.status();
      }
      bool run = op == "when" ? cond->Truthy() : !cond->Truthy();
      if (!run) {
        return Datum();
      }
      return EvalBody(std::vector<Datum>(list.begin() + 2, list.end()), env);
    }
    if (op == "dolist") {
      // (dolist (x list-expr) body...)
      if (list.size() < 2 || !list[1].is_list() || list[1].AsList().size() != 2 ||
          !list[1].AsList()[0].is_symbol()) {
        return InvalidArgument("tdl: dolist (var list) body");
      }
      auto items = Eval(list[1].AsList()[1], env);
      if (!items.ok()) {
        return items.status();
      }
      if (!items->is_list()) {
        return InvalidArgument("tdl: dolist needs a list");
      }
      auto scope = MakeEnv(env);
      const std::string& var = list[1].AsList()[0].AsSymbol();
      Datum last;
      for (const Datum& item : items->AsList()) {
        scope->Define(var, item);
        auto r = EvalBody(std::vector<Datum>(list.begin() + 2, list.end()), scope);
        if (!r.ok()) {
          return r.status();
        }
        last = r.take();
      }
      return last;
    }
    if (op == "while") {
      if (list.size() < 2) {
        return InvalidArgument("tdl: while needs a condition");
      }
      Datum last;
      int guard = 0;
      while (true) {
        auto cond = Eval(list[1], env);
        if (!cond.ok()) {
          return cond.status();
        }
        if (!cond->Truthy()) {
          break;
        }
        auto r = EvalBody(std::vector<Datum>(list.begin() + 2, list.end()), env);
        if (!r.ok()) {
          return r.status();
        }
        last = r.take();
        if (++guard > 1000000) {
          return FailedPrecondition("tdl: while iteration limit exceeded");
        }
      }
      return last;
    }
    if (op == "defun") {
      if (list.size() < 4 || !list[1].is_symbol() || !list[2].is_list()) {
        return InvalidArgument("tdl: defun name (params) body");
      }
      auto fn = std::make_shared<TdlLambda>();
      for (const Datum& p : list[2].AsList()) {
        if (!p.is_symbol()) {
          return InvalidArgument("tdl: defun params must be symbols");
        }
        fn->params.push_back(p.AsSymbol());
      }
      fn->body.assign(list.begin() + 3, list.end());
      fn->closure = global_;
      global_->Define(list[1].AsSymbol(), Datum(fn));
      return Datum::Symbol(list[1].AsSymbol());
    }
    if (op == "defclass") {
      return FormDefclass(list, env);
    }
    if (op == "defmethod") {
      return FormDefmethod(list, env);
    }

    // Not a special form: either a bound callable or a generic function.
    const Datum* bound = env->Lookup(op);
    if (bound == nullptr && generics_.count(op) > 0) {
      std::vector<Datum> args;
      for (size_t i = 1; i < list.size(); ++i) {
        auto a = Eval(list[i], env);
        if (!a.ok()) {
          return a.status();
        }
        args.push_back(a.take());
      }
      return DispatchGeneric(op, args);
    }
  }

  // Standard application: evaluate head and arguments.
  auto fn = Eval(head, env);
  if (!fn.ok()) {
    return fn.status();
  }
  std::vector<Datum> args;
  for (size_t i = 1; i < list.size(); ++i) {
    auto a = Eval(list[i], env);
    if (!a.ok()) {
      return a.status();
    }
    args.push_back(a.take());
  }
  return Apply(*fn, args);
}

Result<Datum> TdlInterp::Apply(const Datum& fn, std::vector<Datum>& args) {
  if (fn.is_native()) {
    return fn.AsNative()(args);
  }
  if (fn.is_lambda()) {
    const TdlLambda& lambda = *fn.AsLambda();
    if (args.size() != lambda.params.size()) {
      return InvalidArgument("tdl: function expects " + std::to_string(lambda.params.size()) +
                             " args, got " + std::to_string(args.size()));
    }
    auto scope = MakeEnv(lambda.closure);
    for (size_t i = 0; i < args.size(); ++i) {
      scope->Define(lambda.params[i], std::move(args[i]));
    }
    return EvalBody(lambda.body, scope);
  }
  if (fn.is_symbol() && generics_.count(fn.AsSymbol()) > 0) {
    return DispatchGeneric(fn.AsSymbol(), args);
  }
  return InvalidArgument("tdl: not callable: " + fn.ToString());
}

Result<Datum> TdlInterp::CallGeneric(const std::string& name, std::vector<Datum> args) {
  return DispatchGeneric(name, args);
}

Result<Datum> TdlInterp::DispatchGeneric(const std::string& name, std::vector<Datum>& args) {
  auto it = generics_.find(name);
  if (it == generics_.end()) {
    return NotFound("tdl: no generic function '" + name + "'");
  }
  if (args.empty()) {
    return InvalidArgument("tdl: generic '" + name + "' needs at least one argument");
  }
  // Build the class chain of the dispatch argument, most specific first.
  std::vector<std::string> chain;
  if (args[0].is_object() && args[0].AsObject() != nullptr) {
    std::string cur = args[0].AsObject()->type_name();
    while (!cur.empty()) {
      chain.push_back(cur);
      const TypeDescriptor* d = registry_->Find(cur);
      cur = d != nullptr ? d->supertype() : "";
    }
  } else {
    if (args[0].is_string()) {
      chain.push_back("string");
    } else if (args[0].is_int()) {
      chain.push_back("i64");
    } else if (args[0].is_double()) {
      chain.push_back("f64");
    } else if (args[0].is_bool()) {
      chain.push_back("bool");
    } else if (args[0].is_list()) {
      chain.push_back("list");
    }
    chain.push_back(kRootTypeName);
  }
  if (chain.empty() || chain.back() != kRootTypeName) {
    chain.push_back(kRootTypeName);
  }
  for (const std::string& cls : chain) {
    for (const Method& m : it->second) {
      if (m.specializer == cls) {
        if (args.size() != m.params.size()) {
          return InvalidArgument("tdl: method '" + name + "' expects " +
                                 std::to_string(m.params.size()) + " args");
        }
        auto scope = MakeEnv(m.closure);
        for (size_t i = 0; i < args.size(); ++i) {
          scope->Define(m.params[i], args[i]);
        }
        return EvalBody(m.body, scope);
      }
    }
  }
  return NotFound("tdl: no applicable method '" + name + "' for " +
                  (args[0].is_object() && args[0].AsObject() != nullptr
                       ? args[0].AsObject()->type_name()
                       : args[0].ToString()));
}

Result<Datum> TdlInterp::FormDefclass(const Datum::List& list, const TdlEnvPtr& /*env*/) {
  // (defclass name (supertype) ((slot :type string) (slot2 :type i32)))
  if (list.size() < 3 || !list[1].is_symbol() || !list[2].is_list()) {
    return InvalidArgument("tdl: defclass name (supertype) (slots...)");
  }
  const std::string& name = list[1].AsSymbol();
  std::string supertype = kRootTypeName;
  if (!list[2].AsList().empty()) {
    if (!list[2].AsList()[0].is_symbol()) {
      return InvalidArgument("tdl: defclass supertype must be a symbol");
    }
    supertype = list[2].AsList()[0].AsSymbol();
  }
  TypeDescriptor desc(name, supertype);
  if (list.size() > 3) {
    if (!list[3].is_list()) {
      return InvalidArgument("tdl: defclass slot list must be a list");
    }
    for (const Datum& slot : list[3].AsList()) {
      if (slot.is_symbol()) {
        desc.AddAttribute(slot.AsSymbol(), "any");
        continue;
      }
      if (!slot.is_list() || slot.AsList().empty() || !slot.AsList()[0].is_symbol()) {
        return InvalidArgument("tdl: defclass slot must be a symbol or (name :type t)");
      }
      const Datum::List& spec = slot.AsList();
      std::string slot_type = "any";
      for (size_t i = 1; i + 1 < spec.size(); i += 2) {
        if (IsKeyword(spec[i]) && spec[i].AsSymbol() == ":type" && spec[i + 1].is_symbol()) {
          slot_type = spec[i + 1].AsSymbol();
        }
      }
      desc.AddAttribute(spec[0].AsSymbol(), slot_type);
    }
  }
  Status s = registry_->Define(desc);
  if (!s.ok()) {
    return s;
  }
  return Datum::Symbol(name);
}

Result<Datum> TdlInterp::FormDefmethod(const Datum::List& list, const TdlEnvPtr& /*env*/) {
  // (defmethod name ((self class) other-param ...) body...)
  if (list.size() < 4 || !list[1].is_symbol() || !list[2].is_list() ||
      list[2].AsList().empty()) {
    return InvalidArgument("tdl: defmethod name ((self class) args...) body");
  }
  const std::string& name = list[1].AsSymbol();
  Method m;
  const Datum::List& params = list[2].AsList();
  const Datum& first = params[0];
  if (!first.is_list() || first.AsList().size() != 2 || !first.AsList()[0].is_symbol() ||
      !first.AsList()[1].is_symbol()) {
    return InvalidArgument("tdl: defmethod first parameter must be (name class)");
  }
  m.params.push_back(first.AsList()[0].AsSymbol());
  m.specializer = first.AsList()[1].AsSymbol();
  for (size_t i = 1; i < params.size(); ++i) {
    if (params[i].is_symbol()) {
      m.params.push_back(params[i].AsSymbol());
    } else if (params[i].is_list() && params[i].AsList().size() == 2 &&
               params[i].AsList()[0].is_symbol()) {
      m.params.push_back(params[i].AsList()[0].AsSymbol());  // specializer ignored: single dispatch
    } else {
      return InvalidArgument("tdl: defmethod parameter must be a symbol");
    }
  }
  m.body.assign(list.begin() + 3, list.end());
  m.closure = global_;
  // Replace an existing method with the same specializer (redefinition), else add.
  auto& methods = generics_[name];
  for (Method& existing : methods) {
    if (existing.specializer == m.specializer && existing.params.size() == m.params.size()) {
      existing = std::move(m);
      return Datum::Symbol(name);
    }
  }
  methods.push_back(std::move(m));
  return Datum::Symbol(name);
}

}  // namespace ibus
