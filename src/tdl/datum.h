// TDL runtime values. TDL (paper §3) is "a small, interpreted language based on CLOS
// ... a subset that supports a full object model, but that could be supported in a
// small, efficient run-time environment." Data objects in TDL are the same
// ibus::DataObject instances the bus carries, so classes defined in TDL are instantly
// publishable.
#ifndef SRC_TDL_DATUM_H_
#define SRC_TDL_DATUM_H_

#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/status.h"
#include "src/types/data_object.h"
#include "src/types/value.h"

namespace ibus {

class Datum;
class TdlEnv;
using TdlEnvPtr = std::shared_ptr<TdlEnv>;

// A user-defined function (lambda or method body).
struct TdlLambda {
  std::vector<std::string> params;
  std::vector<Datum> body;
  TdlEnvPtr closure;
};

struct TdlSymbol {
  std::string name;
  bool operator==(const TdlSymbol&) const = default;
};

class Datum {
 public:
  using List = std::vector<Datum>;
  using NativeFn = std::function<Result<Datum>(std::vector<Datum>& args)>;

  Datum() : v_(std::monostate{}) {}  // nil
  Datum(bool b) : v_(b) {}                                    // NOLINT
  Datum(int64_t i) : v_(i) {}                                 // NOLINT
  Datum(double d) : v_(d) {}                                  // NOLINT
  Datum(std::string s) : v_(std::move(s)) {}                  // NOLINT
  Datum(TdlSymbol s) : v_(std::move(s)) {}                    // NOLINT
  Datum(List l) : v_(std::move(l)) {}                         // NOLINT
  Datum(DataObjectPtr o) : v_(std::move(o)) {}                // NOLINT
  Datum(std::shared_ptr<TdlLambda> fn) : v_(std::move(fn)) {} // NOLINT
  Datum(std::shared_ptr<NativeFn> fn) : v_(std::move(fn)) {}  // NOLINT

  static Datum Symbol(std::string name) { return Datum(TdlSymbol{std::move(name)}); }
  static Datum Native(NativeFn fn) {
    return Datum(std::make_shared<NativeFn>(std::move(fn)));
  }

  bool is_nil() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_symbol() const { return std::holds_alternative<TdlSymbol>(v_); }
  bool is_list() const { return std::holds_alternative<List>(v_); }
  bool is_object() const { return std::holds_alternative<DataObjectPtr>(v_); }
  bool is_lambda() const { return std::holds_alternative<std::shared_ptr<TdlLambda>>(v_); }
  bool is_native() const { return std::holds_alternative<std::shared_ptr<NativeFn>>(v_); }
  bool is_callable() const { return is_lambda() || is_native(); }

  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  double NumberAsDouble() const { return is_int() ? static_cast<double>(AsInt()) : AsDouble(); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  const std::string& AsSymbol() const { return std::get<TdlSymbol>(v_).name; }
  const List& AsList() const { return std::get<List>(v_); }
  List& AsList() { return std::get<List>(v_); }
  const DataObjectPtr& AsObject() const { return std::get<DataObjectPtr>(v_); }
  const std::shared_ptr<TdlLambda>& AsLambda() const {
    return std::get<std::shared_ptr<TdlLambda>>(v_);
  }
  const NativeFn& AsNative() const { return *std::get<std::shared_ptr<NativeFn>>(v_); }

  // Lisp truthiness: everything except nil and false is true.
  bool Truthy() const { return !is_nil() && !(is_bool() && !AsBool()); }

  // Source position (1-based), stamped by the reader on every parsed form so
  // static tools (tdlcheck) can report file:line:col spans. 0 means "no source"
  // (the datum was built programmatically). Positions are metadata only: they
  // take no part in operator==, ToString, or the Value conversions, so runtime
  // behaviour and replay determinism are untouched.
  int line() const { return line_; }
  int col() const { return col_; }
  bool has_pos() const { return line_ > 0; }
  Datum& SetPos(int line, int col) {
    line_ = line;
    col_ = col;
    return *this;
  }

  bool operator==(const Datum& other) const;

  // Reader-style rendering: (defclass story ...) prints back as s-expression text.
  std::string ToString() const;

  // Conversion to/from the bus Value model (for slot values and publishing).
  Result<Value> ToValue() const;
  static Datum FromValue(const Value& v);

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, TdlSymbol, List,
               DataObjectPtr, std::shared_ptr<TdlLambda>, std::shared_ptr<NativeFn>>
      v_;
  int line_ = 0;
  int col_ = 0;
};

}  // namespace ibus

#endif  // SRC_TDL_DATUM_H_
