#include "src/tdl/parser.h"

#include <cctype>
#include <cstdlib>

namespace ibus {

namespace {

// Recursion bound for nested lists/quotes. Static tools parse untrusted
// scripts, so pathological nesting must produce a diagnostic, not a stack
// overflow (the checker's tree walk and ~Datum recurse to the same depth).
constexpr int kMaxNestingDepth = 200;

struct Lexer {
  std::string_view src;
  size_t pos = 0;
  int line = 1;
  size_t line_start = 0;  // offset of the first char of the current line
  TdlParseError* error = nullptr;

  int Col(size_t offset) const { return static_cast<int>(offset - line_start) + 1; }
  int ColHere() const { return Col(pos); }

  void NewlineAt(size_t offset) {
    ++line;
    line_start = offset + 1;
  }

  void SkipWhitespaceAndComments() {
    while (pos < src.size()) {
      char c = src[pos];
      if (c == '\n') {
        NewlineAt(pos);
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == ';') {
        while (pos < src.size() && src[pos] != '\n') {
          ++pos;
        }
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipWhitespaceAndComments();
    return pos >= src.size();
  }

  Status ErrorAt(int at_line, int at_col, const std::string& what) {
    if (error != nullptr && error->line == 0) {
      *error = TdlParseError{at_line, at_col, what};
    }
    return InvalidArgument("tdl parse error at " + std::to_string(at_line) + ":" +
                           std::to_string(at_col) + ": " + what);
  }

  Status ErrorHere(const std::string& what) { return ErrorAt(line, ColHere(), what); }
};

bool IsSymbolChar(char c) {
  return !std::isspace(static_cast<unsigned char>(c)) && c != '(' && c != ')' && c != '"' &&
         c != '\'' && c != ';';
}

Result<Datum> ParseForm(Lexer& lex, int depth);

Result<Datum> ParseList(Lexer& lex, int depth) {
  int open_line = lex.line;
  int open_col = lex.ColHere();
  ++lex.pos;  // consume '('
  Datum::List items;
  while (true) {
    lex.SkipWhitespaceAndComments();
    if (lex.pos >= lex.src.size()) {
      return lex.ErrorAt(open_line, open_col, "unterminated list");
    }
    if (lex.src[lex.pos] == ')') {
      ++lex.pos;
      Datum d(std::move(items));
      d.SetPos(open_line, open_col);
      return d;
    }
    auto item = ParseForm(lex, depth);
    if (!item.ok()) {
      return item.status();
    }
    items.push_back(item.take());
  }
}

Result<Datum> ParseString(Lexer& lex) {
  int open_line = lex.line;
  int open_col = lex.ColHere();
  ++lex.pos;  // consume opening quote
  std::string out;
  while (lex.pos < lex.src.size()) {
    char c = lex.src[lex.pos++];
    if (c == '"') {
      return Datum(std::move(out)).SetPos(open_line, open_col);
    }
    if (c == '\\') {
      if (lex.pos >= lex.src.size()) {
        break;
      }
      char esc = lex.src[lex.pos++];
      switch (esc) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case '\\':
          out += '\\';
          break;
        case '"':
          out += '"';
          break;
        default:
          out += esc;
          break;
      }
    } else {
      if (c == '\n') {
        lex.NewlineAt(lex.pos - 1);
      }
      out += c;
    }
  }
  return lex.ErrorAt(open_line, open_col, "unterminated string");
}

Result<Datum> ParseAtom(Lexer& lex) {
  int at_line = lex.line;
  int at_col = lex.ColHere();
  size_t start = lex.pos;
  while (lex.pos < lex.src.size() && IsSymbolChar(lex.src[lex.pos])) {
    ++lex.pos;
  }
  std::string token(lex.src.substr(start, lex.pos - start));
  if (token.empty()) {
    return lex.ErrorHere("unexpected character '" + std::string(1, lex.src[lex.pos]) + "'");
  }
  // Numeric?
  char* end = nullptr;
  if (token.find_first_not_of("+-0123456789") == std::string::npos && token != "+" &&
      token != "-") {
    long long v = std::strtoll(token.c_str(), &end, 10);
    if (end != nullptr && *end == '\0') {
      return Datum(static_cast<int64_t>(v)).SetPos(at_line, at_col);
    }
  }
  if (token.find_first_of("0123456789") != std::string::npos &&
      token.find_first_not_of("+-.eE0123456789") == std::string::npos) {
    double d = std::strtod(token.c_str(), &end);
    if (end != nullptr && *end == '\0') {
      return Datum(d).SetPos(at_line, at_col);
    }
  }
  if (token == "nil") {
    return Datum().SetPos(at_line, at_col);
  }
  if (token == "t") {
    return Datum(true).SetPos(at_line, at_col);
  }
  return Datum::Symbol(std::move(token)).SetPos(at_line, at_col);
}

Result<Datum> ParseForm(Lexer& lex, int depth) {
  if (depth >= kMaxNestingDepth) {
    return lex.ErrorHere("nesting deeper than " + std::to_string(kMaxNestingDepth) +
                         " levels");
  }
  lex.SkipWhitespaceAndComments();
  if (lex.pos >= lex.src.size()) {
    return lex.ErrorHere("unexpected end of input");
  }
  char c = lex.src[lex.pos];
  if (c == '(') {
    return ParseList(lex, depth + 1);
  }
  if (c == ')') {
    return lex.ErrorHere("unexpected ')'");
  }
  if (c == '"') {
    return ParseString(lex);
  }
  if (c == '\'') {
    int at_line = lex.line;
    int at_col = lex.ColHere();
    ++lex.pos;
    auto quoted = ParseForm(lex, depth + 1);
    if (!quoted.ok()) {
      return quoted.status();
    }
    return Datum(Datum::List{Datum::Symbol("quote").SetPos(at_line, at_col), quoted.take()})
        .SetPos(at_line, at_col);
  }
  return ParseAtom(lex);
}

}  // namespace

Result<std::vector<Datum>> ParseTdl(std::string_view source, TdlParseError* error) {
  Lexer lex{source};
  lex.error = error;
  std::vector<Datum> forms;
  while (!lex.AtEnd()) {
    auto form = ParseForm(lex, 0);
    if (!form.ok()) {
      return form.status();
    }
    forms.push_back(form.take());
  }
  return forms;
}

Result<Datum> ParseTdlOne(std::string_view source) {
  auto forms = ParseTdl(source);
  if (!forms.ok()) {
    return forms.status();
  }
  if (forms->size() != 1) {
    return InvalidArgument("tdl: expected exactly one form");
  }
  return (*forms)[0];
}

}  // namespace ibus
