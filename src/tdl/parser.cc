#include "src/tdl/parser.h"

#include <cctype>
#include <cstdlib>

namespace ibus {

namespace {

struct Lexer {
  std::string_view src;
  size_t pos = 0;
  int line = 1;

  void SkipWhitespaceAndComments() {
    while (pos < src.size()) {
      char c = src[pos];
      if (c == '\n') {
        ++line;
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == ';') {
        while (pos < src.size() && src[pos] != '\n') {
          ++pos;
        }
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipWhitespaceAndComments();
    return pos >= src.size();
  }

  Status ErrorHere(const std::string& what) {
    return InvalidArgument("tdl parse error (line " + std::to_string(line) + "): " + what);
  }
};

bool IsSymbolChar(char c) {
  return !std::isspace(static_cast<unsigned char>(c)) && c != '(' && c != ')' && c != '"' &&
         c != '\'' && c != ';';
}

Result<Datum> ParseForm(Lexer& lex);

Result<Datum> ParseList(Lexer& lex) {
  ++lex.pos;  // consume '('
  Datum::List items;
  while (true) {
    lex.SkipWhitespaceAndComments();
    if (lex.pos >= lex.src.size()) {
      return lex.ErrorHere("unterminated list");
    }
    if (lex.src[lex.pos] == ')') {
      ++lex.pos;
      return Datum(std::move(items));
    }
    auto item = ParseForm(lex);
    if (!item.ok()) {
      return item.status();
    }
    items.push_back(item.take());
  }
}

Result<Datum> ParseString(Lexer& lex) {
  ++lex.pos;  // consume opening quote
  std::string out;
  while (lex.pos < lex.src.size()) {
    char c = lex.src[lex.pos++];
    if (c == '"') {
      return Datum(std::move(out));
    }
    if (c == '\\') {
      if (lex.pos >= lex.src.size()) {
        break;
      }
      char esc = lex.src[lex.pos++];
      switch (esc) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case '\\':
          out += '\\';
          break;
        case '"':
          out += '"';
          break;
        default:
          out += esc;
          break;
      }
    } else {
      if (c == '\n') {
        ++lex.line;
      }
      out += c;
    }
  }
  return lex.ErrorHere("unterminated string");
}

Result<Datum> ParseAtom(Lexer& lex) {
  size_t start = lex.pos;
  while (lex.pos < lex.src.size() && IsSymbolChar(lex.src[lex.pos])) {
    ++lex.pos;
  }
  std::string token(lex.src.substr(start, lex.pos - start));
  if (token.empty()) {
    return lex.ErrorHere("unexpected character '" + std::string(1, lex.src[lex.pos]) + "'");
  }
  // Numeric?
  char* end = nullptr;
  if (token.find_first_not_of("+-0123456789") == std::string::npos && token != "+" &&
      token != "-") {
    long long v = std::strtoll(token.c_str(), &end, 10);
    if (end != nullptr && *end == '\0') {
      return Datum(static_cast<int64_t>(v));
    }
  }
  if (token.find_first_of("0123456789") != std::string::npos &&
      token.find_first_not_of("+-.eE0123456789") == std::string::npos) {
    double d = std::strtod(token.c_str(), &end);
    if (end != nullptr && *end == '\0') {
      return Datum(d);
    }
  }
  if (token == "nil") {
    return Datum();
  }
  if (token == "t") {
    return Datum(true);
  }
  return Datum::Symbol(std::move(token));
}

Result<Datum> ParseForm(Lexer& lex) {
  lex.SkipWhitespaceAndComments();
  if (lex.pos >= lex.src.size()) {
    return lex.ErrorHere("unexpected end of input");
  }
  char c = lex.src[lex.pos];
  if (c == '(') {
    return ParseList(lex);
  }
  if (c == ')') {
    return lex.ErrorHere("unexpected ')'");
  }
  if (c == '"') {
    return ParseString(lex);
  }
  if (c == '\'') {
    ++lex.pos;
    auto quoted = ParseForm(lex);
    if (!quoted.ok()) {
      return quoted.status();
    }
    return Datum(Datum::List{Datum::Symbol("quote"), quoted.take()});
  }
  return ParseAtom(lex);
}

}  // namespace

Result<std::vector<Datum>> ParseTdl(std::string_view source) {
  Lexer lex{source};
  std::vector<Datum> forms;
  while (!lex.AtEnd()) {
    auto form = ParseForm(lex);
    if (!form.ok()) {
      return form.status();
    }
    forms.push_back(form.take());
  }
  return forms;
}

Result<Datum> ParseTdlOne(std::string_view source) {
  auto forms = ParseTdl(source);
  if (!forms.ok()) {
    return forms.status();
  }
  if (forms->size() != 1) {
    return InvalidArgument("tdl: expected exactly one form");
  }
  return (*forms)[0];
}

}  // namespace ibus
