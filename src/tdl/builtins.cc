// Native builtins installed into every TdlInterp global environment.
#include <algorithm>
#include <cctype>

#include "src/tdl/interp.h"
#include "src/types/printer.h"

namespace ibus {

namespace {

bool AllNumbers(const std::vector<Datum>& args) {
  return std::all_of(args.begin(), args.end(), [](const Datum& d) { return d.is_number(); });
}

bool AllInts(const std::vector<Datum>& args) {
  return std::all_of(args.begin(), args.end(), [](const Datum& d) { return d.is_int(); });
}

std::string Display(const Datum& d) { return d.is_string() ? d.AsString() : d.ToString(); }

Result<Datum> NumericFold(const std::vector<Datum>& args, int64_t unit,
                          int64_t (*fi)(int64_t, int64_t), double (*fd)(double, double),
                          bool allow_unary_invert) {
  if (!AllNumbers(args)) {
    return InvalidArgument("tdl: arithmetic on non-number");
  }
  if (args.empty()) {
    return Datum(unit);
  }
  if (AllInts(args)) {
    int64_t acc = args[0].AsInt();
    if (args.size() == 1 && allow_unary_invert) {
      return Datum(fi(unit, acc));
    }
    for (size_t i = 1; i < args.size(); ++i) {
      acc = fi(acc, args[i].AsInt());
    }
    return Datum(acc);
  }
  double acc = args[0].NumberAsDouble();
  if (args.size() == 1 && allow_unary_invert) {
    return Datum(fd(static_cast<double>(unit), acc));
  }
  for (size_t i = 1; i < args.size(); ++i) {
    acc = fd(acc, args[i].NumberAsDouble());
  }
  return Datum(acc);
}

Result<Datum> Compare(const std::vector<Datum>& args, bool (*cmp)(double, double)) {
  if (args.size() < 2 || !AllNumbers(args)) {
    return InvalidArgument("tdl: comparison needs 2+ numbers");
  }
  for (size_t i = 0; i + 1 < args.size(); ++i) {
    if (!cmp(args[i].NumberAsDouble(), args[i + 1].NumberAsDouble())) {
      return Datum(false);
    }
  }
  return Datum(true);
}

}  // namespace

void TdlInterp::InstallBuiltins() {
  DefineNative("+", [](std::vector<Datum>& a) {
    return NumericFold(a, 0, [](int64_t x, int64_t y) { return x + y; },
                       [](double x, double y) { return x + y; }, false);
  });
  DefineNative("-", [](std::vector<Datum>& a) {
    return NumericFold(a, 0, [](int64_t x, int64_t y) { return x - y; },
                       [](double x, double y) { return x - y; }, true);
  });
  DefineNative("*", [](std::vector<Datum>& a) {
    return NumericFold(a, 1, [](int64_t x, int64_t y) { return x * y; },
                       [](double x, double y) { return x * y; }, false);
  });
  DefineNative("/", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 2 || !AllNumbers(a)) {
      return InvalidArgument("tdl: / takes two numbers");
    }
    if (a[1].NumberAsDouble() == 0.0) {
      return InvalidArgument("tdl: division by zero");
    }
    if (AllInts(a)) {
      return Datum(a[0].AsInt() / a[1].AsInt());
    }
    return Datum(a[0].NumberAsDouble() / a[1].NumberAsDouble());
  });
  DefineNative("mod", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 2 || !AllInts(a) || a[1].AsInt() == 0) {
      return InvalidArgument("tdl: mod takes two non-zero integers");
    }
    return Datum(a[0].AsInt() % a[1].AsInt());
  });
  DefineNative("=", [](std::vector<Datum>& a) {
    return Compare(a, [](double x, double y) { return x == y; });
  });
  DefineNative("<", [](std::vector<Datum>& a) {
    return Compare(a, [](double x, double y) { return x < y; });
  });
  DefineNative(">", [](std::vector<Datum>& a) {
    return Compare(a, [](double x, double y) { return x > y; });
  });
  DefineNative("<=", [](std::vector<Datum>& a) {
    return Compare(a, [](double x, double y) { return x <= y; });
  });
  DefineNative(">=", [](std::vector<Datum>& a) {
    return Compare(a, [](double x, double y) { return x >= y; });
  });
  DefineNative("eq", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 2) {
      return InvalidArgument("tdl: eq takes two args");
    }
    return Datum(a[0] == a[1]);
  });
  DefineNative("not", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 1) {
      return InvalidArgument("tdl: not takes one arg");
    }
    return Datum(!a[0].Truthy());
  });

  // --- Lists ------------------------------------------------------------------------
  DefineNative("list", [](std::vector<Datum>& a) -> Result<Datum> {
    return Datum(Datum::List(a.begin(), a.end()));
  });
  DefineNative("first", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 1 || !a[0].is_list()) {
      return InvalidArgument("tdl: first takes a list");
    }
    return a[0].AsList().empty() ? Datum() : a[0].AsList().front();
  });
  DefineNative("rest", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 1 || !a[0].is_list()) {
      return InvalidArgument("tdl: rest takes a list");
    }
    const Datum::List& l = a[0].AsList();
    return Datum(l.empty() ? Datum::List{} : Datum::List(l.begin() + 1, l.end()));
  });
  DefineNative("cons", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 2 || !a[1].is_list()) {
      return InvalidArgument("tdl: cons takes a value and a list");
    }
    Datum::List out{a[0]};
    out.insert(out.end(), a[1].AsList().begin(), a[1].AsList().end());
    return Datum(std::move(out));
  });
  DefineNative("append", [](std::vector<Datum>& a) -> Result<Datum> {
    Datum::List out;
    for (const Datum& d : a) {
      if (!d.is_list()) {
        return InvalidArgument("tdl: append takes lists");
      }
      out.insert(out.end(), d.AsList().begin(), d.AsList().end());
    }
    return Datum(std::move(out));
  });
  DefineNative("length", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 1) {
      return InvalidArgument("tdl: length takes one arg");
    }
    if (a[0].is_list()) {
      return Datum(static_cast<int64_t>(a[0].AsList().size()));
    }
    if (a[0].is_string()) {
      return Datum(static_cast<int64_t>(a[0].AsString().size()));
    }
    return InvalidArgument("tdl: length takes a list or string");
  });
  DefineNative("nth", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 2 || !a[0].is_int() || !a[1].is_list()) {
      return InvalidArgument("tdl: nth takes an index and a list");
    }
    int64_t i = a[0].AsInt();
    const Datum::List& l = a[1].AsList();
    if (i < 0 || static_cast<size_t>(i) >= l.size()) {
      return Datum();
    }
    return l[static_cast<size_t>(i)];
  });
  DefineNative("reverse", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 1 || !a[0].is_list()) {
      return InvalidArgument("tdl: reverse takes a list");
    }
    Datum::List out(a[0].AsList().rbegin(), a[0].AsList().rend());
    return Datum(std::move(out));
  });
  DefineNative("mapcar", [this](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 2 || !a[1].is_list()) {
      return InvalidArgument("tdl: mapcar takes a function and a list");
    }
    Datum::List out;
    for (const Datum& item : a[1].AsList()) {
      std::vector<Datum> call_args{item};
      auto r = Apply(a[0], call_args);
      if (!r.ok()) {
        return r.status();
      }
      out.push_back(r.take());
    }
    return Datum(std::move(out));
  });
  DefineNative("filter", [this](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 2 || !a[1].is_list()) {
      return InvalidArgument("tdl: filter takes a predicate and a list");
    }
    Datum::List out;
    for (const Datum& item : a[1].AsList()) {
      std::vector<Datum> call_args{item};
      auto r = Apply(a[0], call_args);
      if (!r.ok()) {
        return r.status();
      }
      if (r->Truthy()) {
        out.push_back(item);
      }
    }
    return Datum(std::move(out));
  });

  DefineNative("second", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 1 || !a[0].is_list()) {
      return InvalidArgument("tdl: second takes a list");
    }
    const Datum::List& l = a[0].AsList();
    return l.size() < 2 ? Datum() : l[1];
  });
  DefineNative("last", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 1 || !a[0].is_list()) {
      return InvalidArgument("tdl: last takes a list");
    }
    const Datum::List& l = a[0].AsList();
    return l.empty() ? Datum() : l.back();
  });
  DefineNative("assoc", [](std::vector<Datum>& a) -> Result<Datum> {
    // (assoc key ((k1 v1) (k2 v2) ...)) -> (k v) or nil
    if (a.size() != 2 || !a[1].is_list()) {
      return InvalidArgument("tdl: assoc takes a key and an association list");
    }
    for (const Datum& pair : a[1].AsList()) {
      if (pair.is_list() && !pair.AsList().empty() && pair.AsList()[0] == a[0]) {
        return pair;
      }
    }
    return Datum();
  });
  DefineNative("min", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.empty() || !AllNumbers(a)) {
      return InvalidArgument("tdl: min takes numbers");
    }
    Datum best = a[0];
    for (const Datum& d : a) {
      if (d.NumberAsDouble() < best.NumberAsDouble()) {
        best = d;
      }
    }
    return best;
  });
  DefineNative("max", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.empty() || !AllNumbers(a)) {
      return InvalidArgument("tdl: max takes numbers");
    }
    Datum best = a[0];
    for (const Datum& d : a) {
      if (d.NumberAsDouble() > best.NumberAsDouble()) {
        best = d;
      }
    }
    return best;
  });
  DefineNative("abs", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 1 || !a[0].is_number()) {
      return InvalidArgument("tdl: abs takes a number");
    }
    if (a[0].is_int()) {
      return Datum(a[0].AsInt() < 0 ? -a[0].AsInt() : a[0].AsInt());
    }
    return Datum(a[0].AsDouble() < 0 ? -a[0].AsDouble() : a[0].AsDouble());
  });

  // --- Strings ------------------------------------------------------------------------
  DefineNative("string-split", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 2 || !a[0].is_string() || !a[1].is_string() || a[1].AsString().empty()) {
      return InvalidArgument("tdl: string-split takes a string and a non-empty separator");
    }
    const std::string& s = a[0].AsString();
    const std::string& sep = a[1].AsString();
    Datum::List out;
    size_t start = 0;
    while (true) {
      size_t pos = s.find(sep, start);
      if (pos == std::string::npos) {
        out.push_back(Datum(s.substr(start)));
        break;
      }
      out.push_back(Datum(s.substr(start, pos - start)));
      start = pos + sep.size();
    }
    return Datum(std::move(out));
  });
  DefineNative("concat", [](std::vector<Datum>& a) -> Result<Datum> {
    std::string out;
    for (const Datum& d : a) {
      out += Display(d);
    }
    return Datum(std::move(out));
  });
  DefineNative("to-string", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 1) {
      return InvalidArgument("tdl: to-string takes one arg");
    }
    return Datum(Display(a[0]));
  });
  DefineNative("string-contains", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 2 || !a[0].is_string() || !a[1].is_string()) {
      return InvalidArgument("tdl: string-contains takes two strings");
    }
    return Datum(a[0].AsString().find(a[1].AsString()) != std::string::npos);
  });
  DefineNative("string-downcase", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 1 || !a[0].is_string()) {
      return InvalidArgument("tdl: string-downcase takes a string");
    }
    std::string s = a[0].AsString();
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return Datum(std::move(s));
  });

  // --- Objects and the meta-object protocol ----------------------------------------
  DefineNative("make-instance", [this](std::vector<Datum>& a) -> Result<Datum> {
    if (a.empty() || !a[0].is_symbol()) {
      return InvalidArgument("tdl: make-instance needs a class name");
    }
    auto obj = registry_->NewInstance(a[0].AsSymbol());
    if (!obj.ok()) {
      return obj.status();
    }
    // Keyword initializers: :slot value pairs.
    for (size_t i = 1; i + 1 < a.size(); i += 2) {
      if (!a[i].is_symbol() || a[i].AsSymbol().empty() || a[i].AsSymbol()[0] != ':') {
        return InvalidArgument("tdl: make-instance initializers must be :slot value pairs");
      }
      std::string slot = a[i].AsSymbol().substr(1);
      auto v = a[i + 1].ToValue();
      if (!v.ok()) {
        return v.status();
      }
      Status s = (*obj)->Set(slot, v.take());
      if (!s.ok()) {
        return s;
      }
    }
    return Datum(*obj);
  });
  DefineNative("slot-value", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 2 || !a[0].is_object() || a[0].AsObject() == nullptr ||
        !a[1].is_symbol()) {
      return InvalidArgument("tdl: slot-value takes an object and a slot symbol");
    }
    return Datum::FromValue(a[0].AsObject()->Get(a[1].AsSymbol()));
  });
  DefineNative("set-slot-value!", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 3 || !a[0].is_object() || a[0].AsObject() == nullptr ||
        !a[1].is_symbol()) {
      return InvalidArgument("tdl: set-slot-value! takes object, slot, value");
    }
    auto v = a[2].ToValue();
    if (!v.ok()) {
      return v.status();
    }
    Status s = a[0].AsObject()->Set(a[1].AsSymbol(), v.take());
    if (!s.ok()) {
      return s;
    }
    return a[2];
  });
  DefineNative("type-of", [](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 1) {
      return InvalidArgument("tdl: type-of takes one arg");
    }
    if (a[0].is_object() && a[0].AsObject() != nullptr) {
      return Datum::Symbol(a[0].AsObject()->type_name());
    }
    if (a[0].is_string()) {
      return Datum::Symbol("string");
    }
    if (a[0].is_int()) {
      return Datum::Symbol("i64");
    }
    if (a[0].is_double()) {
      return Datum::Symbol("f64");
    }
    if (a[0].is_bool()) {
      return Datum::Symbol("bool");
    }
    if (a[0].is_list()) {
      return Datum::Symbol("list");
    }
    return Datum::Symbol("null");
  });
  DefineNative("isa?", [this](std::vector<Datum>& a) -> Result<Datum> {
    if (a.size() != 2 || !a[0].is_object() || a[0].AsObject() == nullptr ||
        !a[1].is_symbol()) {
      return InvalidArgument("tdl: isa? takes an object and a class symbol");
    }
    return Datum(registry_->IsSubtype(a[0].AsObject()->type_name(), a[1].AsSymbol()));
  });
  DefineNative("attributes", [this](std::vector<Datum>& a) -> Result<Datum> {
    // Introspection: (attributes obj-or-class) -> ((name type) ...)
    if (a.size() != 1) {
      return InvalidArgument("tdl: attributes takes one arg");
    }
    std::string type_name;
    if (a[0].is_object() && a[0].AsObject() != nullptr) {
      type_name = a[0].AsObject()->type_name();
    } else if (a[0].is_symbol()) {
      type_name = a[0].AsSymbol();
    } else {
      return InvalidArgument("tdl: attributes takes an object or class symbol");
    }
    auto attrs = registry_->AllAttributes(type_name);
    if (!attrs.ok()) {
      return attrs.status();
    }
    Datum::List out;
    for (const AttributeDef& attr : *attrs) {
      out.push_back(Datum(Datum::List{Datum::Symbol(attr.name), Datum::Symbol(attr.type_name)}));
    }
    return Datum(std::move(out));
  });
  DefineNative("describe", [this](std::vector<Datum>& a) -> Result<Datum> {
    // The generic print utility, bound into TDL.
    if (a.size() != 1 || !a[0].is_object() || a[0].AsObject() == nullptr) {
      return InvalidArgument("tdl: describe takes an object");
    }
    PrintOptions opt;
    opt.registry = registry_;
    return Datum(PrintObject(*a[0].AsObject(), opt));
  });
  DefineNative("print", [this](std::vector<Datum>& a) -> Result<Datum> {
    std::string line;
    for (size_t i = 0; i < a.size(); ++i) {
      if (i != 0) {
        line += ' ';
      }
      line += Display(a[i]);
    }
    output_ += line + "\n";
    return a.empty() ? Datum() : a.back();
  });
}

}  // namespace ibus
