#include "src/tdl/datum.h"

namespace ibus {

bool Datum::operator==(const Datum& other) const {
  if (v_.index() != other.v_.index()) {
    return false;
  }
  if (is_object()) {
    const DataObjectPtr& a = AsObject();
    const DataObjectPtr& b = other.AsObject();
    if (a == b) {
      return true;
    }
    return a != nullptr && b != nullptr && *a == *b;
  }
  if (is_lambda() || is_native()) {
    return false;  // functions compare by identity only (handled by index+ptr above)
  }
  return v_ == other.v_;
}

std::string Datum::ToString() const {
  if (is_nil()) {
    return "nil";
  }
  if (is_bool()) {
    return AsBool() ? "t" : "nil";
  }
  if (is_int()) {
    return std::to_string(AsInt());
  }
  if (is_double()) {
    return std::to_string(AsDouble());
  }
  if (is_string()) {
    return "\"" + AsString() + "\"";
  }
  if (is_symbol()) {
    return AsSymbol();
  }
  if (is_list()) {
    std::string out = "(";
    const List& l = AsList();
    for (size_t i = 0; i < l.size(); ++i) {
      if (i != 0) {
        out += ' ';
      }
      out += l[i].ToString();
    }
    out += ')';
    return out;
  }
  if (is_object()) {
    const DataObjectPtr& o = AsObject();
    return o == nullptr ? "#<object nil>" : "#<" + o->type_name() + ">";
  }
  if (is_lambda()) {
    return "#<lambda>";
  }
  return "#<native>";
}

Result<Value> Datum::ToValue() const {
  if (is_nil()) {
    return Value();
  }
  if (is_bool()) {
    return Value(AsBool());
  }
  if (is_int()) {
    return Value(AsInt());
  }
  if (is_double()) {
    return Value(AsDouble());
  }
  if (is_string()) {
    return Value(AsString());
  }
  if (is_symbol()) {
    return Value(AsSymbol());  // symbols become strings on the bus
  }
  if (is_object()) {
    return Value(AsObject());
  }
  if (is_list()) {
    Value::List out;
    for (const Datum& d : AsList()) {
      auto v = d.ToValue();
      if (!v.ok()) {
        return v.status();
      }
      out.push_back(v.take());
    }
    return Value(std::move(out));
  }
  return InvalidArgument("tdl: functions cannot be converted to bus values");
}

Datum Datum::FromValue(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return Datum();
    case ValueKind::kBool:
      return Datum(v.AsBool());
    case ValueKind::kI32:
      return Datum(static_cast<int64_t>(v.AsI32()));
    case ValueKind::kI64:
      return Datum(v.AsI64());
    case ValueKind::kF64:
      return Datum(v.AsF64());
    case ValueKind::kString:
      return Datum(v.AsString());
    case ValueKind::kBytes: {
      const Bytes& b = v.AsBytes();
      return Datum(std::string(b.begin(), b.end()));
    }
    case ValueKind::kList: {
      Datum::List out;
      for (const Value& e : v.AsList()) {
        out.push_back(FromValue(e));
      }
      return Datum(std::move(out));
    }
    case ValueKind::kObject:
      return Datum(v.AsObject());
  }
  return Datum();
}

}  // namespace ibus
