// TDL reader: tokenizes and parses s-expression source text into Datum trees.
// Supports integers, floats, strings with escapes, symbols, t/nil literals, quote
// ('x => (quote x)), and ; line comments.
//
// Every parsed Datum is stamped with its 1-based line:col source position (see
// Datum::line()/col()), and parse errors carry the position of the offending
// token: "tdl parse error at <line>:<col>: <what>". Static tools (tdlcheck,
// buslint's tdl-string rule) rely on both.
#ifndef SRC_TDL_PARSER_H_
#define SRC_TDL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/tdl/datum.h"

namespace ibus {

// Structured form of a parse failure, for tools that render their own
// file:line:col diagnostics instead of showing the Status message verbatim.
struct TdlParseError {
  int line = 0;
  int col = 0;
  std::string what;
};

// Parses a whole program: a sequence of top-level forms. On failure, `error`
// (when non-null) receives the position and message of the first parse error.
Result<std::vector<Datum>> ParseTdl(std::string_view source,
                                    TdlParseError* error = nullptr);

// Parses exactly one form (convenience for REPL-style use).
Result<Datum> ParseTdlOne(std::string_view source);

}  // namespace ibus

#endif  // SRC_TDL_PARSER_H_
