// TDL reader: tokenizes and parses s-expression source text into Datum trees.
// Supports integers, floats, strings with escapes, symbols, t/nil literals, quote
// ('x => (quote x)), and ; line comments.
#ifndef SRC_TDL_PARSER_H_
#define SRC_TDL_PARSER_H_

#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/tdl/datum.h"

namespace ibus {

// Parses a whole program: a sequence of top-level forms.
Result<std::vector<Datum>> ParseTdl(std::string_view source);

// Parses exactly one form (convenience for REPL-style use).
Result<Datum> ParseTdlOne(std::string_view source);

}  // namespace ibus

#endif  // SRC_TDL_PARSER_H_
