// Marshalling of Values and DataObjects to the wire. Objects travel fully
// self-describing: type name, attribute names, kind-tagged values, and attached
// properties — so any receiver can inspect and print an instance without the class
// definition (paper P2). Operation metadata travels separately via TypeDescriptor.
#ifndef SRC_TYPES_CODEC_H_
#define SRC_TYPES_CODEC_H_

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/types/data_object.h"
#include "src/types/value.h"
#include "src/wire/wire.h"

namespace ibus {

void MarshalValue(const Value& v, WireWriter* w);
Result<Value> UnmarshalValue(WireReader* r);

void MarshalObject(const DataObject& obj, WireWriter* w);
Result<DataObjectPtr> UnmarshalObject(WireReader* r);

Bytes MarshalObject(const DataObject& obj);
Result<DataObjectPtr> UnmarshalObject(const Bytes& b);

}  // namespace ibus

#endif  // SRC_TYPES_CODEC_H_
