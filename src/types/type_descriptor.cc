#include "src/types/type_descriptor.h"

namespace ibus {

bool IsFundamentalTypeName(const std::string& name) {
  return name == "i32" || name == "i64" || name == "f64" || name == "bool" ||
         name == "string" || name == "bytes" || name == "list" || name == "any" ||
         name == "null";
}

std::string OperationDef::Signature() const {
  std::string s = name + "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i != 0) {
      s += ", ";
    }
    s += params[i].type_name + " " + params[i].name;
  }
  s += ") -> " + result_type;
  return s;
}

const AttributeDef* TypeDescriptor::FindAttribute(const std::string& name) const {
  for (const AttributeDef& a : attrs_) {
    if (a.name == name) {
      return &a;
    }
  }
  return nullptr;
}

const OperationDef* TypeDescriptor::FindOperation(const std::string& name) const {
  for (const OperationDef& o : ops_) {
    if (o.name == name) {
      return &o;
    }
  }
  return nullptr;
}

// wirecheck: codec(type_descriptor, version=0)
void TypeDescriptor::ToWire(WireWriter* w) const {
  w->PutString(name_);
  w->PutString(supertype_);
  w->PutU32(version_);
  w->PutVarint(attrs_.size());
  for (const AttributeDef& a : attrs_) {
    w->PutString(a.name);
    w->PutString(a.type_name);
  }
  w->PutVarint(ops_.size());
  for (const OperationDef& o : ops_) {
    w->PutString(o.name);
    w->PutString(o.result_type);
    w->PutVarint(o.params.size());
    for (const ParamDef& p : o.params) {
      w->PutString(p.name);
      w->PutString(p.type_name);
    }
  }
}

// wirecheck: codec(type_descriptor, version=0)
Result<TypeDescriptor> TypeDescriptor::FromWire(WireReader* r) {
  auto name = r->ReadString();
  if (!name.ok()) {
    return name.status();
  }
  auto supertype = r->ReadString();
  if (!supertype.ok()) {
    return supertype.status();
  }
  auto version = r->ReadU32();
  if (!version.ok()) {
    return version.status();
  }
  TypeDescriptor d(*name, *supertype);
  d.set_version(*version);
  auto attr_count = r->ReadVarint();
  if (!attr_count.ok()) {
    return attr_count.status();
  }
  if (*attr_count > r->remaining()) {
    return DataLoss("descriptor: implausible attribute count");
  }
  for (uint64_t i = 0; i < *attr_count; ++i) {
    auto an = r->ReadString();
    auto at = r->ReadString();
    if (!an.ok() || !at.ok()) {
      return DataLoss("descriptor: truncated attribute");
    }
    d.AddAttribute(*an, *at);
  }
  auto op_count = r->ReadVarint();
  if (!op_count.ok()) {
    return op_count.status();
  }
  if (*op_count > r->remaining()) {
    return DataLoss("descriptor: implausible operation count");
  }
  for (uint64_t i = 0; i < *op_count; ++i) {
    OperationDef op;
    auto on = r->ReadString();
    auto ot = r->ReadString();
    auto pc = r->ReadVarint();
    if (!on.ok() || !ot.ok() || !pc.ok()) {
      return DataLoss("descriptor: truncated operation");
    }
    op.name = *on;
    op.result_type = *ot;
    if (*pc > r->remaining()) {
      return DataLoss("descriptor: implausible parameter count");
    }
    for (uint64_t j = 0; j < *pc; ++j) {
      auto pn = r->ReadString();
      auto pt = r->ReadString();
      if (!pn.ok() || !pt.ok()) {
        return DataLoss("descriptor: truncated parameter");
      }
      op.params.push_back(ParamDef{*pn, *pt});
    }
    d.AddOperation(std::move(op));
  }
  return d;
}

Bytes TypeDescriptor::Marshal() const {
  WireWriter w;
  ToWire(&w);
  return w.Take();
}

Result<TypeDescriptor> TypeDescriptor::Unmarshal(const Bytes& b) {
  WireReader r(b);
  return FromWire(&r);
}

}  // namespace ibus
