#include "src/types/codec.h"

namespace ibus {

namespace {
// Recursion guard against hostile or corrupt buffers.
constexpr int kMaxDepth = 64;

Result<Value> UnmarshalValueDepth(WireReader* r, int depth);
Result<DataObjectPtr> UnmarshalObjectDepth(WireReader* r, int depth);
}  // namespace

// wirecheck: codec(value, version=0)
void MarshalValue(const Value& v, WireWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      w->PutBool(v.AsBool());
      break;
    case ValueKind::kI32:
      w->PutU32(static_cast<uint32_t>(v.AsI32()));
      break;
    case ValueKind::kI64:
      w->PutI64(v.AsI64());
      break;
    case ValueKind::kF64:
      w->PutF64(v.AsF64());
      break;
    case ValueKind::kString:
      w->PutString(v.AsString());
      break;
    case ValueKind::kBytes:
      w->PutBytes(v.AsBytes());
      break;
    case ValueKind::kList: {
      const Value::List& l = v.AsList();
      w->PutVarint(l.size());
      for (const Value& e : l) {
        MarshalValue(e, w);
      }
      break;
    }
    case ValueKind::kObject:
      if (v.AsObject() == nullptr) {
        // A nil object marshals as a zero marker so it round-trips to nil.
        w->PutU8(0);
      } else {
        w->PutU8(1);
        MarshalObject(*v.AsObject(), w);
      }
      break;
  }
}

namespace {

// wirecheck: codec(value, version=0)
Result<Value> UnmarshalValueDepth(WireReader* r, int depth) {
  if (depth > kMaxDepth) {
    return DataLoss("value: nesting too deep");
  }
  auto tag = r->ReadU8();
  if (!tag.ok()) {
    return tag.status();
  }
  switch (static_cast<ValueKind>(*tag)) {
    case ValueKind::kNull:
      return Value();
    case ValueKind::kBool: {
      auto v = r->ReadBool();
      if (!v.ok()) {
        return v.status();
      }
      return Value(*v);
    }
    case ValueKind::kI32: {
      auto v = r->ReadU32();
      if (!v.ok()) {
        return v.status();
      }
      return Value(static_cast<int32_t>(*v));
    }
    case ValueKind::kI64: {
      auto v = r->ReadI64();
      if (!v.ok()) {
        return v.status();
      }
      return Value(*v);
    }
    case ValueKind::kF64: {
      auto v = r->ReadF64();
      if (!v.ok()) {
        return v.status();
      }
      return Value(*v);
    }
    case ValueKind::kString: {
      auto v = r->ReadString();
      if (!v.ok()) {
        return v.status();
      }
      return Value(*v);
    }
    case ValueKind::kBytes: {
      auto v = r->ReadBytes();
      if (!v.ok()) {
        return v.status();
      }
      return Value(*v);
    }
    case ValueKind::kList: {
      auto count = r->ReadVarint();
      if (!count.ok()) {
        return count.status();
      }
      if (*count > r->remaining()) {
        return DataLoss("value: implausible list length");
      }
      Value::List l;
      l.reserve(*count);
      for (uint64_t i = 0; i < *count; ++i) {
        auto e = UnmarshalValueDepth(r, depth + 1);
        if (!e.ok()) {
          return e.status();
        }
        l.push_back(e.take());
      }
      return Value(std::move(l));
    }
    case ValueKind::kObject: {
      auto marker = r->ReadU8();
      if (!marker.ok()) {
        return marker.status();
      }
      if (*marker == 0) {
        return Value(DataObjectPtr());
      }
      auto obj = UnmarshalObjectDepth(r, depth + 1);
      if (!obj.ok()) {
        return obj.status();
      }
      return Value(obj.take());
    }
  }
  return DataLoss("value: unknown kind tag");
}

// wirecheck: codec(data_object, version=0)
Result<DataObjectPtr> UnmarshalObjectDepth(WireReader* r, int depth) {
  if (depth > kMaxDepth) {
    return DataLoss("object: nesting too deep");
  }
  auto type_name = r->ReadString();
  if (!type_name.ok()) {
    return type_name.status();
  }
  auto attr_count = r->ReadVarint();
  if (!attr_count.ok()) {
    return attr_count.status();
  }
  if (*attr_count > r->remaining()) {
    return DataLoss("object: implausible attribute count");
  }
  auto obj = std::make_shared<DataObject>(*type_name);
  for (uint64_t i = 0; i < *attr_count; ++i) {
    auto name = r->ReadString();
    if (!name.ok()) {
      return name.status();
    }
    auto value = UnmarshalValueDepth(r, depth + 1);
    if (!value.ok()) {
      return value.status();
    }
    obj->AddAttribute(*name, value.take());
  }
  auto prop_count = r->ReadVarint();
  if (!prop_count.ok()) {
    return prop_count.status();
  }
  if (*prop_count > r->remaining()) {
    return DataLoss("object: implausible property count");
  }
  for (uint64_t i = 0; i < *prop_count; ++i) {
    auto name = r->ReadString();
    if (!name.ok()) {
      return name.status();
    }
    auto value = UnmarshalValueDepth(r, depth + 1);
    if (!value.ok()) {
      return value.status();
    }
    obj->SetProperty(*name, value.take());
  }
  return obj;
}

}  // namespace

Result<Value> UnmarshalValue(WireReader* r) { return UnmarshalValueDepth(r, 0); }

// wirecheck: codec(data_object, version=0)
void MarshalObject(const DataObject& obj, WireWriter* w) {
  w->PutString(obj.type_name());
  w->PutVarint(obj.attributes().size());
  for (const auto& [name, value] : obj.attributes()) {
    w->PutString(name);
    MarshalValue(value, w);
  }
  w->PutVarint(obj.properties().size());
  for (const auto& [name, value] : obj.properties()) {
    w->PutString(name);
    MarshalValue(value, w);
  }
}

Result<DataObjectPtr> UnmarshalObject(WireReader* r) { return UnmarshalObjectDepth(r, 0); }

Bytes MarshalObject(const DataObject& obj) {
  WireWriter w;
  MarshalObject(obj, &w);
  return w.Take();
}

Result<DataObjectPtr> UnmarshalObject(const Bytes& b) {
  WireReader r(b);
  auto obj = UnmarshalObject(&r);
  if (obj.ok() && !r.AtEnd()) {
    return DataLoss("object: trailing bytes");
  }
  return obj;
}

}  // namespace ibus
