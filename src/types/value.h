// Dynamically typed values carried by data objects. A Value is either a fundamental
// (null, bool, i32, i64, f64, string, bytes), a list of values, or a nested data
// object. The generic tools (printer, Object Repository, application builder) operate
// on Values plus metadata only — they never need compile-time knowledge of a type.
#ifndef SRC_TYPES_VALUE_H_
#define SRC_TYPES_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace ibus {

class DataObject;
using DataObjectPtr = std::shared_ptr<DataObject>;

enum class ValueKind : uint8_t {
  kNull = 0,
  kBool = 1,
  kI32 = 2,
  kI64 = 3,
  kF64 = 4,
  kString = 5,
  kBytes = 6,
  kList = 7,
  kObject = 8,
};

// Name of a value kind ("i32", "string", ...), matching attribute type names.
const char* ValueKindName(ValueKind kind);

class Value {
 public:
  using List = std::vector<Value>;

  Value() : v_(std::monostate{}) {}
  Value(bool b) : v_(b) {}                        // NOLINT: implicit by design
  Value(int32_t i) : v_(i) {}                     // NOLINT
  Value(int64_t i) : v_(i) {}                     // NOLINT
  Value(double d) : v_(d) {}                      // NOLINT
  Value(const char* s) : v_(std::string(s)) {}    // NOLINT
  Value(std::string s) : v_(std::move(s)) {}      // NOLINT
  Value(Bytes b) : v_(std::move(b)) {}            // NOLINT
  Value(List l) : v_(std::move(l)) {}             // NOLINT
  Value(DataObjectPtr o) : v_(std::move(o)) {}    // NOLINT

  ValueKind kind() const { return static_cast<ValueKind>(v_.index()); }
  const char* kind_name() const { return ValueKindName(kind()); }

  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_i32() const { return kind() == ValueKind::kI32; }
  bool is_i64() const { return kind() == ValueKind::kI64; }
  bool is_f64() const { return kind() == ValueKind::kF64; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_bytes() const { return kind() == ValueKind::kBytes; }
  bool is_list() const { return kind() == ValueKind::kList; }
  bool is_object() const { return kind() == ValueKind::kObject; }
  bool is_number() const { return is_i32() || is_i64() || is_f64(); }

  bool AsBool() const { return std::get<bool>(v_); }
  int32_t AsI32() const { return std::get<int32_t>(v_); }
  int64_t AsI64() const { return std::get<int64_t>(v_); }
  double AsF64() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  const Bytes& AsBytes() const { return std::get<Bytes>(v_); }
  const List& AsList() const { return std::get<List>(v_); }
  List& AsList() { return std::get<List>(v_); }
  const DataObjectPtr& AsObject() const { return std::get<DataObjectPtr>(v_); }

  // Numeric widening: any of i32/i64/f64 read as i64 or double.
  int64_t NumberAsI64() const;
  double NumberAsF64() const;

  // Deep structural equality (object attributes compared recursively).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Single-line rendering for diagnostics; the metadata-driven printer produces the
  // full recursive form.
  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int32_t, int64_t, double, std::string, Bytes, List,
               DataObjectPtr>
      v_;
};

}  // namespace ibus

#endif  // SRC_TYPES_VALUE_H_
