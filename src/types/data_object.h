// Self-describing data objects (paper P2). Every instance carries its type name and
// its attribute names alongside the attribute values, so a receiver can inspect an
// object it has never seen the class definition for. Objects also carry dynamically
// attached Properties (OMG-style name/value pairs, paper §5.2).
#ifndef SRC_TYPES_DATA_OBJECT_H_
#define SRC_TYPES_DATA_OBJECT_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/types/value.h"

namespace ibus {

class DataObject {
 public:
  explicit DataObject(std::string type_name) : type_name_(std::move(type_name)) {}

  const std::string& type_name() const { return type_name_; }

  // --- Attributes -----------------------------------------------------------------
  // Ordered list of (name, value); order is the declaration order when created via
  // TypeRegistry::NewInstance.
  const std::vector<std::pair<std::string, Value>>& attributes() const { return attrs_; }

  bool HasAttribute(std::string_view name) const { return FindIndex(name) >= 0; }

  // Null value when absent (mirrors introspective access: callers that care should
  // consult metadata first).
  const Value& Get(std::string_view name) const;

  // Sets an existing attribute. Fails with kNotFound if the attribute was never added.
  Status Set(std::string_view name, Value value);

  // Adds a new attribute slot (used by NewInstance and by unmarshalling).
  void AddAttribute(std::string name, Value value = Value());

  size_t attribute_count() const { return attrs_.size(); }

  // --- Properties (dynamic name/value annotations) ---------------------------------
  const std::vector<std::pair<std::string, Value>>& properties() const { return props_; }
  const Value& GetProperty(std::string_view name) const;
  void SetProperty(std::string_view name, Value value);
  bool HasProperty(std::string_view name) const;

  // Deep copy (attribute objects cloned recursively).
  DataObjectPtr Clone() const;

  bool operator==(const DataObject& other) const;

 private:
  int FindIndex(std::string_view name) const;

  std::string type_name_;
  std::vector<std::pair<std::string, Value>> attrs_;
  std::vector<std::pair<std::string, Value>> props_;
};

// Convenience builder for ad-hoc objects in tests and adapters:
//   MakeObject("story", {{"headline", "x"}, {"body", "y"}});
DataObjectPtr MakeObject(std::string type_name,
                         std::vector<std::pair<std::string, Value>> attrs = {});

}  // namespace ibus

#endif  // SRC_TYPES_DATA_OBJECT_H_
