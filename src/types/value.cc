#include "src/types/value.h"

#include <cmath>

#include "src/types/data_object.h"

namespace ibus {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kI32:
      return "i32";
    case ValueKind::kI64:
      return "i64";
    case ValueKind::kF64:
      return "f64";
    case ValueKind::kString:
      return "string";
    case ValueKind::kBytes:
      return "bytes";
    case ValueKind::kList:
      return "list";
    case ValueKind::kObject:
      return "object";
  }
  return "unknown";
}

int64_t Value::NumberAsI64() const {
  switch (kind()) {
    case ValueKind::kI32:
      return AsI32();
    case ValueKind::kI64:
      return AsI64();
    case ValueKind::kF64:
      return static_cast<int64_t>(std::llround(AsF64()));
    default:
      return 0;
  }
}

double Value::NumberAsF64() const {
  switch (kind()) {
    case ValueKind::kI32:
      return AsI32();
    case ValueKind::kI64:
      return static_cast<double>(AsI64());
    case ValueKind::kF64:
      return AsF64();
    default:
      return 0.0;
  }
}

bool Value::operator==(const Value& other) const {
  if (kind() != other.kind()) {
    return false;
  }
  if (kind() == ValueKind::kObject) {
    const DataObjectPtr& a = AsObject();
    const DataObjectPtr& b = other.AsObject();
    if (a == b) {
      return true;
    }
    if (a == nullptr || b == nullptr) {
      return false;
    }
    return *a == *b;
  }
  return v_ == other.v_;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
    case ValueKind::kI32:
      return std::to_string(AsI32());
    case ValueKind::kI64:
      return std::to_string(AsI64());
    case ValueKind::kF64: {
      std::string s = std::to_string(AsF64());
      return s;
    }
    case ValueKind::kString:
      return "\"" + AsString() + "\"";
    case ValueKind::kBytes:
      return "bytes[" + std::to_string(AsBytes().size()) + "]";
    case ValueKind::kList: {
      std::string s = "[";
      const List& l = AsList();
      for (size_t i = 0; i < l.size(); ++i) {
        if (i != 0) {
          s += ", ";
        }
        s += l[i].ToString();
      }
      s += "]";
      return s;
    }
    case ValueKind::kObject: {
      const DataObjectPtr& o = AsObject();
      if (o == nullptr) {
        return "object(nil)";
      }
      std::string s = o->type_name() + "{";
      bool first = true;
      for (const auto& [name, value] : o->attributes()) {
        if (!first) {
          s += ", ";
        }
        first = false;
        s += name + "=" + value.ToString();
      }
      s += "}";
      return s;
    }
  }
  return "?";
}

}  // namespace ibus
