#include "src/types/registry.h"

#include <unordered_set>

namespace ibus {

TypeRegistry::TypeRegistry() {
  // The root type and the built-in Property type (paper §5.2) always exist.
  TypeDescriptor root(kRootTypeName, "");
  types_.emplace(kRootTypeName, root);

  TypeDescriptor property("property", kRootTypeName);
  property.AddAttribute("object_ref", "string");  // identity of the referenced object
  property.AddAttribute("name", "string");
  property.AddAttribute("value", "any");
  types_.emplace("property", property);
}

Status TypeRegistry::Define(const TypeDescriptor& desc) {
  if (desc.name().empty()) {
    return InvalidArgument("type: empty name");
  }
  if (desc.name() == kRootTypeName) {
    return InvalidArgument("type: cannot redefine root type");
  }
  if (IsFundamentalTypeName(desc.name())) {
    return InvalidArgument("type: '" + desc.name() + "' is a reserved fundamental type");
  }
  if (desc.supertype().empty() || types_.count(desc.supertype()) == 0) {
    return FailedPrecondition("type " + desc.name() + ": unknown supertype '" +
                              desc.supertype() + "'");
  }
  // Attribute names must be unique across the whole inheritance chain.
  std::unordered_set<std::string> seen;
  auto inherited = AllAttributes(desc.supertype());
  if (inherited.ok()) {
    for (const AttributeDef& a : *inherited) {
      seen.insert(a.name);
    }
  }
  for (const AttributeDef& a : desc.attributes()) {
    if (a.name.empty()) {
      return InvalidArgument("type " + desc.name() + ": empty attribute name");
    }
    if (!seen.insert(a.name).second) {
      return InvalidArgument("type " + desc.name() + ": duplicate attribute '" + a.name + "'");
    }
  }
  auto it = types_.find(desc.name());
  if (it != types_.end()) {
    if (it->second == desc) {
      return OkStatus();  // idempotent re-definition
    }
    if (desc.version() <= it->second.version()) {
      return AlreadyExists("type " + desc.name() +
                           ": conflicting definition at same or older version");
    }
    // Versioned evolution: the new descriptor replaces the old one.
  }
  types_[desc.name()] = desc;
  for (const DefineObserver& obs : observers_) {
    obs(desc);
  }
  return OkStatus();
}

Status TypeRegistry::DefineFromWire(const Bytes& marshalled) {
  auto desc = TypeDescriptor::Unmarshal(marshalled);
  if (!desc.ok()) {
    return desc.status();
  }
  return Define(*desc);
}

const TypeDescriptor* TypeRegistry::Find(const std::string& name) const {
  auto it = types_.find(name);
  return it == types_.end() ? nullptr : &it->second;
}

Result<std::vector<AttributeDef>> TypeRegistry::AllAttributes(const std::string& name) const {
  // Walk up the supertype chain, then emit supertype-first.
  std::vector<const TypeDescriptor*> chain;
  std::string cur = name;
  while (!cur.empty()) {
    const TypeDescriptor* d = Find(cur);
    if (d == nullptr) {
      return NotFound("type '" + cur + "' not registered");
    }
    chain.push_back(d);
    cur = d->supertype();
  }
  std::vector<AttributeDef> out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const AttributeDef& a : (*it)->attributes()) {
      out.push_back(a);
    }
  }
  return out;
}

Result<std::vector<OperationDef>> TypeRegistry::AllOperations(const std::string& name) const {
  std::vector<const TypeDescriptor*> chain;
  std::string cur = name;
  while (!cur.empty()) {
    const TypeDescriptor* d = Find(cur);
    if (d == nullptr) {
      return NotFound("type '" + cur + "' not registered");
    }
    chain.push_back(d);
    cur = d->supertype();
  }
  std::vector<OperationDef> out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const OperationDef& o : (*it)->operations()) {
      out.push_back(o);
    }
  }
  return out;
}

bool TypeRegistry::IsSubtype(const std::string& name, const std::string& ancestor) const {
  std::string cur = name;
  while (!cur.empty()) {
    if (cur == ancestor) {
      return true;
    }
    const TypeDescriptor* d = Find(cur);
    if (d == nullptr) {
      return false;
    }
    cur = d->supertype();
  }
  return false;
}

std::vector<std::string> TypeRegistry::SubtypeClosure(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [n, d] : types_) {
    if (IsSubtype(n, name)) {
      out.push_back(n);
    }
  }
  return out;
}

Result<DataObjectPtr> TypeRegistry::NewInstance(const std::string& type_name) const {
  auto attrs = AllAttributes(type_name);
  if (!attrs.ok()) {
    return attrs.status();
  }
  auto obj = std::make_shared<DataObject>(type_name);
  for (const AttributeDef& a : *attrs) {
    obj->AddAttribute(a.name);
  }
  return obj;
}

Status TypeRegistry::Validate(const DataObject& obj) const {
  auto attrs = AllAttributes(obj.type_name());
  if (!attrs.ok()) {
    return attrs.status();
  }
  for (const AttributeDef& a : *attrs) {
    if (!obj.HasAttribute(a.name)) {
      return FailedPrecondition("object of type " + obj.type_name() + " missing attribute '" +
                                a.name + "'");
    }
    const Value& v = obj.Get(a.name);
    if (v.is_null()) {
      continue;  // null permitted everywhere
    }
    if (a.type_name == "any" || a.type_name == "list" || !IsFundamentalTypeName(a.type_name)) {
      // Non-fundamental attribute types are class names; structural check is that the
      // value is an object (or list of them) — enforced loosely by design.
      continue;
    }
    if (std::string(v.kind_name()) != a.type_name) {
      return FailedPrecondition("object of type " + obj.type_name() + ": attribute '" + a.name +
                                "' has kind " + v.kind_name() + ", expected " + a.type_name);
    }
  }
  return OkStatus();
}

Status DeriveTypeFromInstance(TypeRegistry* registry, const DataObject& obj) {
  if (registry->Has(obj.type_name())) {
    return OkStatus();
  }
  TypeDescriptor desc(obj.type_name(), kRootTypeName);
  for (const auto& [name, value] : obj.attributes()) {
    switch (value.kind()) {
      case ValueKind::kBool:
        desc.AddAttribute(name, "bool");
        break;
      case ValueKind::kI32:
        desc.AddAttribute(name, "i32");
        break;
      case ValueKind::kI64:
        desc.AddAttribute(name, "i64");
        break;
      case ValueKind::kF64:
        desc.AddAttribute(name, "f64");
        break;
      case ValueKind::kString:
        desc.AddAttribute(name, "string");
        break;
      case ValueKind::kBytes:
        desc.AddAttribute(name, "bytes");
        break;
      case ValueKind::kList:
        desc.AddAttribute(name, "list");
        break;
      default:
        desc.AddAttribute(name, "any");
        break;
    }
  }
  return registry->Define(desc);
}

std::vector<std::string> TypeRegistry::TypeNames() const {
  std::vector<std::string> out;
  out.reserve(types_.size());
  for (const auto& [n, d] : types_) {
    out.push_back(n);
  }
  return out;
}

}  // namespace ibus
