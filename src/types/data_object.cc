#include "src/types/data_object.h"

namespace ibus {

namespace {
const Value kNullValue;
}  // namespace

int DataObject::FindIndex(std::string_view name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].first == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const Value& DataObject::Get(std::string_view name) const {
  int idx = FindIndex(name);
  return idx < 0 ? kNullValue : attrs_[static_cast<size_t>(idx)].second;
}

Status DataObject::Set(std::string_view name, Value value) {
  int idx = FindIndex(name);
  if (idx < 0) {
    return NotFound("object " + type_name_ + " has no attribute '" + std::string(name) + "'");
  }
  attrs_[static_cast<size_t>(idx)].second = std::move(value);
  return OkStatus();
}

void DataObject::AddAttribute(std::string name, Value value) {
  attrs_.emplace_back(std::move(name), std::move(value));
}

const Value& DataObject::GetProperty(std::string_view name) const {
  for (const auto& [n, v] : props_) {
    if (n == name) {
      return v;
    }
  }
  return kNullValue;
}

void DataObject::SetProperty(std::string_view name, Value value) {
  for (auto& [n, v] : props_) {
    if (n == name) {
      v = std::move(value);
      return;
    }
  }
  props_.emplace_back(std::string(name), std::move(value));
}

bool DataObject::HasProperty(std::string_view name) const {
  for (const auto& [n, v] : props_) {
    if (n == name) {
      return true;
    }
  }
  return false;
}

namespace {

Value CloneValue(const Value& v) {
  if (v.is_object() && v.AsObject() != nullptr) {
    return Value(v.AsObject()->Clone());
  }
  if (v.is_list()) {
    Value::List out;
    out.reserve(v.AsList().size());
    for (const Value& e : v.AsList()) {
      out.push_back(CloneValue(e));
    }
    return Value(std::move(out));
  }
  return v;
}

}  // namespace

DataObjectPtr DataObject::Clone() const {
  auto copy = std::make_shared<DataObject>(type_name_);
  for (const auto& [name, value] : attrs_) {
    copy->AddAttribute(name, CloneValue(value));
  }
  for (const auto& [name, value] : props_) {
    copy->SetProperty(name, CloneValue(value));
  }
  return copy;
}

bool DataObject::operator==(const DataObject& other) const {
  return type_name_ == other.type_name_ && attrs_ == other.attrs_ && props_ == other.props_;
}

DataObjectPtr MakeObject(std::string type_name,
                         std::vector<std::pair<std::string, Value>> attrs) {
  auto obj = std::make_shared<DataObject>(std::move(type_name));
  for (auto& [name, value] : attrs) {
    obj->AddAttribute(std::move(name), std::move(value));
  }
  return obj;
}

}  // namespace ibus
