// TypeRegistry: the dynamic classing service (paper P3). New types can be defined at
// run-time — from local code, from TDL `defclass` forms, or from descriptors learned
// off the bus — and instances created immediately. The registry also answers the
// introspective queries (P2): attribute lists with inheritance, subtype tests, and
// subtype closures (used by the Object Repository to answer hierarchy-aware queries).
#ifndef SRC_TYPES_REGISTRY_H_
#define SRC_TYPES_REGISTRY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/types/data_object.h"
#include "src/types/type_descriptor.h"

namespace ibus {

class TypeRegistry {
 public:
  TypeRegistry();

  // Defines a new type. The supertype must already be registered. Redefining an
  // identical descriptor is idempotent; redefining with a higher version replaces the
  // old descriptor (dynamic evolution); any other conflict is an error.
  Status Define(const TypeDescriptor& desc);

  // Defines a type from its wire form (used when a descriptor is learned off the bus).
  Status DefineFromWire(const Bytes& marshalled);

  bool Has(const std::string& name) const { return types_.count(name) > 0; }
  const TypeDescriptor* Find(const std::string& name) const;

  // All attributes including inherited ones, supertype-first.
  Result<std::vector<AttributeDef>> AllAttributes(const std::string& name) const;

  // All operations including inherited ones, supertype-first.
  Result<std::vector<OperationDef>> AllOperations(const std::string& name) const;

  // True when `name` equals `ancestor` or is a (transitive) subtype of it.
  bool IsSubtype(const std::string& name, const std::string& ancestor) const;

  // `name` plus every registered transitive subtype.
  std::vector<std::string> SubtypeClosure(const std::string& name) const;

  // Creates an instance with every (inherited + own) attribute present, initialized to
  // null values.
  Result<DataObjectPtr> NewInstance(const std::string& type_name) const;

  // Verifies an object structurally conforms to its registered type: every declared
  // attribute present and fundamental attribute kinds consistent (null always allowed).
  Status Validate(const DataObject& obj) const;

  std::vector<std::string> TypeNames() const;
  size_t size() const { return types_.size(); }

  // Observer invoked after each successful (re)definition; used to push new types to
  // interested components (repository schema generation, bus type announcements).
  using DefineObserver = std::function<void(const TypeDescriptor&)>;
  void AddDefineObserver(DefineObserver observer) {
    observers_.push_back(std::move(observer));
  }

 private:
  std::unordered_map<std::string, TypeDescriptor> types_;
  std::vector<DefineObserver> observers_;
};

// Derives a TypeDescriptor from a self-describing instance (attribute types from the
// value kinds) and registers it. Used when a component receives an object whose type
// it has never seen a descriptor for (pure P2: the instance is the description).
// No-op if the type is already registered.
Status DeriveTypeFromInstance(TypeRegistry* registry, const DataObject& obj);

}  // namespace ibus

#endif  // SRC_TYPES_REGISTRY_H_
