// The generic "print" utility from paper §3 (P2): accepts an object of any type and
// produces a text description by recursively descending through its metadata. It only
// understands fundamental kinds but prints instances of arbitrary composed types.
#ifndef SRC_TYPES_PRINTER_H_
#define SRC_TYPES_PRINTER_H_

#include <string>

#include "src/types/data_object.h"
#include "src/types/registry.h"
#include "src/types/value.h"

namespace ibus {

struct PrintOptions {
  int indent_width = 2;
  int max_depth = 16;
  // When a registry is available the printer also annotates each attribute with its
  // declared type and the object with its supertype chain.
  const TypeRegistry* registry = nullptr;
};

std::string PrintValue(const Value& v, const PrintOptions& options = PrintOptions());
std::string PrintObject(const DataObject& obj, const PrintOptions& options = PrintOptions());

}  // namespace ibus

#endif  // SRC_TYPES_PRINTER_H_
