// Type descriptors: the metadata half of the meta-object protocol (paper P2). A type
// is an interface — named attributes and operation signatures — arranged in a
// supertype/subtype hierarchy. Descriptors marshal to the wire so types defined in one
// process can be learned by any other at run-time (paper P3, dynamic classing).
#ifndef SRC_TYPES_TYPE_DESCRIPTOR_H_
#define SRC_TYPES_TYPE_DESCRIPTOR_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/wire/wire.h"

namespace ibus {

// Root of the type hierarchy; every type is ultimately a subtype of "object".
inline constexpr char kRootTypeName[] = "object";

// Fundamental attribute type names understood by every generic tool.
bool IsFundamentalTypeName(const std::string& name);  // i32,i64,f64,bool,string,bytes,list,any

struct AttributeDef {
  std::string name;
  // Fundamental type name, "list", "any", or the name of another (possibly
  // dynamically defined) type.
  std::string type_name;

  bool operator==(const AttributeDef&) const = default;
};

struct ParamDef {
  std::string name;
  std::string type_name;

  bool operator==(const ParamDef&) const = default;
};

struct OperationDef {
  std::string name;
  std::string result_type;  // "null" for void
  std::vector<ParamDef> params;

  bool operator==(const OperationDef&) const = default;
  std::string Signature() const;  // "summarize(story s) -> string"
};

class TypeDescriptor {
 public:
  TypeDescriptor() = default;
  TypeDescriptor(std::string name, std::string supertype)
      : name_(std::move(name)), supertype_(std::move(supertype)) {}

  const std::string& name() const { return name_; }
  const std::string& supertype() const { return supertype_; }
  uint32_t version() const { return version_; }
  void set_version(uint32_t v) { version_ = v; }

  const std::vector<AttributeDef>& attributes() const { return attrs_; }
  const std::vector<OperationDef>& operations() const { return ops_; }

  TypeDescriptor& AddAttribute(std::string name, std::string type_name) {
    attrs_.push_back(AttributeDef{std::move(name), std::move(type_name)});
    return *this;
  }
  TypeDescriptor& AddOperation(OperationDef op) {
    ops_.push_back(std::move(op));
    return *this;
  }

  const AttributeDef* FindAttribute(const std::string& name) const;
  const OperationDef* FindOperation(const std::string& name) const;

  bool operator==(const TypeDescriptor&) const = default;

  // Wire form, used to gossip type definitions across the bus.
  void ToWire(WireWriter* w) const;
  static Result<TypeDescriptor> FromWire(WireReader* r);
  Bytes Marshal() const;
  static Result<TypeDescriptor> Unmarshal(const Bytes& b);

 private:
  std::string name_;
  std::string supertype_ = kRootTypeName;
  uint32_t version_ = 1;
  std::vector<AttributeDef> attrs_;
  std::vector<OperationDef> ops_;
};

}  // namespace ibus

#endif  // SRC_TYPES_TYPE_DESCRIPTOR_H_
