#include "src/types/printer.h"

namespace ibus {

namespace {

void Indent(std::string* out, int depth, const PrintOptions& opt) {
  out->append(static_cast<size_t>(depth * opt.indent_width), ' ');
}

void PrintValueRec(const Value& v, int depth, const PrintOptions& opt, std::string* out);

void PrintObjectRec(const DataObject& obj, int depth, const PrintOptions& opt,
                    std::string* out) {
  *out += obj.type_name();
  if (opt.registry != nullptr) {
    const TypeDescriptor* d = opt.registry->Find(obj.type_name());
    if (d != nullptr && !d->supertype().empty()) {
      *out += " (isa " + d->supertype() + ")";
    }
  }
  *out += " {\n";
  if (depth >= opt.max_depth) {
    Indent(out, depth + 1, opt);
    *out += "...\n";
  } else {
    for (const auto& [name, value] : obj.attributes()) {
      Indent(out, depth + 1, opt);
      *out += name;
      if (opt.registry != nullptr) {
        const TypeDescriptor* d = opt.registry->Find(obj.type_name());
        // Search the whole chain for the declared attribute type.
        std::string cur = obj.type_name();
        while (d != nullptr && !cur.empty()) {
          const AttributeDef* a = d->FindAttribute(name);
          if (a != nullptr) {
            *out += " : " + a->type_name;
            break;
          }
          cur = d->supertype();
          d = cur.empty() ? nullptr : opt.registry->Find(cur);
        }
      }
      *out += " = ";
      PrintValueRec(value, depth + 1, opt, out);
      *out += "\n";
    }
    for (const auto& [name, value] : obj.properties()) {
      Indent(out, depth + 1, opt);
      *out += "@" + name + " = ";
      PrintValueRec(value, depth + 1, opt, out);
      *out += "\n";
    }
  }
  Indent(out, depth, opt);
  *out += "}";
}

void PrintValueRec(const Value& v, int depth, const PrintOptions& opt, std::string* out) {
  switch (v.kind()) {
    case ValueKind::kObject:
      if (v.AsObject() == nullptr) {
        *out += "nil";
      } else {
        PrintObjectRec(*v.AsObject(), depth, opt, out);
      }
      break;
    case ValueKind::kList: {
      if (v.AsList().empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (const Value& e : v.AsList()) {
        Indent(out, depth + 1, opt);
        PrintValueRec(e, depth + 1, opt, out);
        *out += "\n";
      }
      Indent(out, depth, opt);
      *out += "]";
      break;
    }
    default:
      *out += v.ToString();
      break;
  }
}

}  // namespace

std::string PrintValue(const Value& v, const PrintOptions& options) {
  std::string out;
  PrintValueRec(v, 0, options, &out);
  return out;
}

std::string PrintObject(const DataObject& obj, const PrintOptions& options) {
  std::string out;
  PrintObjectRec(obj, 0, options, &out);
  return out;
}

}  // namespace ibus
