#include "src/common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ibus {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("IBUS_LOG");
  if (env == nullptr) {
    return LogLevel::kOff;
  }
  if (std::strcmp(env, "trace") == 0) {
    return LogLevel::kTrace;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warn") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "error") == 0) {
    return LogLevel::kError;
  }
  return LogLevel::kOff;
}

LogLevel g_level = InitialLevel();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (level < g_level) {
    return;
  }
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, message.c_str());
}

}  // namespace ibus
