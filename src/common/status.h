// Status and Result<T>: the error-handling vocabulary used across the Information Bus
// libraries. The core never throws; fallible operations return Status or Result<T>.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace ibus {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,      // peer down, partitioned, or not yet discovered
  kDeadlineExceeded, // timed out waiting for a reply
  kDataLoss,         // framing/checksum failure or unrecoverable gap
  kUnimplemented,
  kInternal,
};

// Human-readable name for a status code ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

// A cheap value type carrying success or (code, message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such table".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string m) {
  return Status(StatusCode::kInvalidArgument, std::move(m));
}
inline Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
inline Status AlreadyExists(std::string m) {
  return Status(StatusCode::kAlreadyExists, std::move(m));
}
inline Status FailedPrecondition(std::string m) {
  return Status(StatusCode::kFailedPrecondition, std::move(m));
}
inline Status OutOfRange(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
inline Status Unavailable(std::string m) { return Status(StatusCode::kUnavailable, std::move(m)); }
inline Status DeadlineExceeded(std::string m) {
  return Status(StatusCode::kDeadlineExceeded, std::move(m));
}
inline Status DataLoss(std::string m) { return Status(StatusCode::kDataLoss, std::move(m)); }
inline Status Unimplemented(std::string m) {
  return Status(StatusCode::kUnimplemented, std::move(m));
}
inline Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }

// Result<T> holds either a value or a non-OK status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT: implicit by design

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T&& take() { return std::move(*value_); }

  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }

  // Returns the contained value or `fallback` when this result holds an error.
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define IBUS_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::ibus::Status _s = (expr);           \
    if (!_s.ok()) {                       \
      return _s;                          \
    }                                     \
  } while (0)

// `lhs` may be a declaration (`auto x`), so it cannot be parenthesized.
// NOLINTNEXTLINE(bugprone-macro-parentheses)
#define IBUS_ASSIGN_OR_RETURN(lhs, expr)  \
  auto _result_##__LINE__ = (expr);       \
  if (!_result_##__LINE__.ok()) {         \
    return _result_##__LINE__.status();   \
  }                                       \
  lhs = _result_##__LINE__.take();

}  // namespace ibus

#endif  // SRC_COMMON_STATUS_H_
