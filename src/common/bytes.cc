#include "src/common/bytes.h"

#include <array>
#include <cstdio>

namespace ibus {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string HexDump(const Bytes& b, size_t max_bytes) {
  std::string out;
  size_t n = b.size() < max_bytes ? b.size() : max_bytes;
  char buf[4] = {0};
  for (size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "%02x", b[i]);
    if (i != 0) {
      out += ' ';
    }
    out += buf;
  }
  if (n < b.size()) {
    out += " ...";
  }
  return out;
}

}  // namespace ibus
