// Minimal leveled logging. Quiet by default so tests and benchmarks stay clean;
// raise the level with ibus::SetLogLevel or the IBUS_LOG environment variable.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ibus {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

namespace log_internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define IBUS_LOG(level)                                         \
  if (::ibus::GetLogLevel() <= ::ibus::LogLevel::level)         \
  ::ibus::log_internal::LogLine(::ibus::LogLevel::level, __FILE__, __LINE__)

#define IBUS_TRACE() IBUS_LOG(kTrace)
#define IBUS_DEBUG() IBUS_LOG(kDebug)
#define IBUS_INFO() IBUS_LOG(kInfo)
#define IBUS_WARN() IBUS_LOG(kWarn)
#define IBUS_ERROR() IBUS_LOG(kError)

}  // namespace ibus

#endif  // SRC_COMMON_LOGGING_H_
