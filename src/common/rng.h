// Deterministic pseudo-random number generator (SplitMix64 seeding + xoshiro256**).
// Every stochastic component (fault injection, workload generators) draws from an
// explicitly seeded Rng so that simulations replay bit-identically.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>

namespace ibus {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_{};
};

}  // namespace ibus

#endif  // SRC_COMMON_RNG_H_
