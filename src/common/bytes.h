// Byte-buffer helpers shared by the wire format, the protocols, and the simulator.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ibus {

using Bytes = std::vector<uint8_t>;

inline Bytes ToBytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

inline std::string ToString(const Bytes& b) { return std::string(b.begin(), b.end()); }

// CRC32 (IEEE 802.3 polynomial, reflected), used by the frame layer to detect corruption.
uint32_t Crc32(const uint8_t* data, size_t len);
inline uint32_t Crc32(const Bytes& b) { return Crc32(b.data(), b.size()); }

// Hex dump for diagnostics: "de ad be ef".
std::string HexDump(const Bytes& b, size_t max_bytes = 64);

}  // namespace ibus

#endif  // SRC_COMMON_BYTES_H_
