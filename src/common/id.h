// Small unique-id helpers. Ids are process-local monotonic counters combined with a
// caller-supplied space (e.g. the simulated host), which keeps them deterministic
// across runs (no wall clock, no real randomness).
#ifndef SRC_COMMON_ID_H_
#define SRC_COMMON_ID_H_

#include <cstdint>
#include <string>

namespace ibus {

// A 64-bit unique id: high 16 bits name the space, low 48 bits count up.
class IdGenerator {
 public:
  explicit IdGenerator(uint16_t space) : space_(space) {}

  uint64_t Next() { return (static_cast<uint64_t>(space_) << 48) | ++counter_; }

  // "s<space>-<counter>" — human-readable form used for inbox subjects and stream names.
  std::string NextString(const std::string& prefix) {
    return prefix + std::to_string(space_) + "-" + std::to_string(++counter_);
  }

 private:
  uint16_t space_;
  uint64_t counter_ = 0;
};

}  // namespace ibus

#endif  // SRC_COMMON_ID_H_
