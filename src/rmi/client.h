// RMI client (paper §3.3, Figure 2): (1) discover servers by publishing a query on the
// service's subject; (2) pick one (or all) according to a selection policy; (3) open a
// point-to-point connection and exchange request/reply. Calls are exactly-once under
// normal operation and at-most-once under failure: a timeout or broken connection
// surfaces as an error, never as a blind retry.
#ifndef SRC_RMI_CLIENT_H_
#define SRC_RMI_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/bus/client.h"
#include "src/rmi/protocol.h"
#include "src/telemetry/metrics.h"

namespace ibus {

// How to choose among multiple servers answering on the same subject (paper: "our
// system allows an application to choose between several different policies").
enum class ServerSelection {
  kFirst,        // lowest-latency responder
  kLeastLoaded,  // minimize reported load
};

struct RmiClientConfig {
  SimTime discovery_timeout_us = 100 * 1000;
  SimTime call_timeout_us = 2 * 1000 * 1000;
  ServerSelection selection = ServerSelection::kFirst;
};

// A bound, connected remote service. Obtained via RmiClient::Connect.
class RemoteService {
 public:
  using CallDone = std::function<void(Result<Value>)>;

  ~RemoteService();
  RemoteService(const RemoteService&) = delete;
  RemoteService& operator=(const RemoteService&) = delete;

  const RmiAdvert& advert() const { return advert_; }
  // Introspection without a network round trip: the interface learned at discovery.
  const TypeDescriptor& interface() const { return advert_.interface; }
  bool connected() const { return conn_ != nullptr && conn_->open(); }

  // Invokes `operation`; `done` receives the result or an error (timeout, closed
  // connection, remote fault).
  void Call(const std::string& operation, std::vector<Value> args, CallDone done);

  // Fetches the interface over the wire (exercises remote introspection).
  void Describe(std::function<void(Result<TypeDescriptor>)> done);

  // Round-trip latency of completed calls (request sent -> reply handled). Only
  // populated when telemetry is compiled in; always safe to read.
  const telemetry::LatencyHistogram& rtt_histogram() const { return rtt_hist_; }

 private:
  friend class RmiClient;
  RemoteService(Simulator* sim, RmiAdvert advert, ConnectionPtr conn, SimTime call_timeout);

  void HandleReply(const Bytes& bytes);
  void FailAll(const Status& status);

  Simulator* sim_;
  RmiAdvert advert_;
  ConnectionPtr conn_;
  SimTime call_timeout_;
  uint64_t next_request_ = 1;
  struct PendingCall {
    CallDone done;
    EventId timeout_event = 0;
    bool describe = false;
    SimTime sent_at = 0;
  };
  std::unordered_map<uint64_t, PendingCall> pending_;
  telemetry::LatencyHistogram rtt_hist_;
  std::shared_ptr<bool> alive_;
};

class RmiClient {
 public:
  using ConnectDone = std::function<void(Result<std::shared_ptr<RemoteService>>)>;
  using DiscoverDone = std::function<void(std::vector<RmiAdvert>)>;

  // Full discover+select+connect pipeline.
  static Status Connect(BusClient* bus, const std::string& subject,
                        const RmiClientConfig& config, ConnectDone done);

  // Discovery only: every server currently answering on the subject ("the client can
  // receive every response from all of the servers and then decide").
  static Status Discover(BusClient* bus, const std::string& subject,
                         const RmiClientConfig& config, DiscoverDone done);

  // Connects to an already-known advert (e.g. chosen from Discover results).
  static void ConnectTo(BusClient* bus, const RmiAdvert& advert, const RmiClientConfig& config,
                        ConnectDone done);
};

// The layer the paper sketches above standard RMI (§3.3): "Customer-specific
// requirements such as exactly-once semantics ... can be built on a layer above
// standard RMI." RetryingCall re-discovers and re-invokes on failure, surviving a
// server crash mid-call when a replacement answers the same subject (e.g. an election
// backup). Semantics are at-least-once — exactly-once when the operation is
// idempotent, which is the caller's contract to uphold.
void RetryingCall(BusClient* bus, const std::string& subject, const std::string& operation,
                  std::vector<Value> args, int max_attempts, const RmiClientConfig& config,
                  RemoteService::CallDone done);

}  // namespace ibus

#endif  // SRC_RMI_CLIENT_H_
