#include "src/rmi/server.h"

#include <algorithm>

#include "src/wire/wire.h"

namespace ibus {

namespace {
Port g_next_port_base = 0;  // sim-local helper to spread default listen ports
}  // namespace

Result<std::unique_ptr<RmiServer>> RmiServer::Create(BusClient* bus, const std::string& subject,
                                                     std::shared_ptr<ServiceObject> service,
                                                     const RmiServerConfig& config) {
  auto server =
      std::unique_ptr<RmiServer>(new RmiServer(bus, subject, std::move(service), config));
  Network* net = bus->network();
  Port port = config.listen_port;
  Result<std::unique_ptr<Listener>> listener = Status();
  if (port != 0) {
    listener = net->Listen(bus->host(), port,
                           [s = server.get()](ConnectionPtr c) { s->Accept(std::move(c)); });
  } else {
    // Probe for a free port in the 9000+ range.
    for (Port candidate = static_cast<Port>(9000 + (g_next_port_base++ % 1000));;
         ++candidate) {
      listener = net->Listen(bus->host(), candidate,
                             [s = server.get()](ConnectionPtr c) { s->Accept(std::move(c)); });
      if (listener.ok() || candidate > 20000) {
        break;
      }
    }
  }
  if (!listener.ok()) {
    return listener.status();
  }
  server->listener_ = listener.take();

  auto describe = [s = server.get()](const Message&) {
    if (!s->answering_) {
      return Bytes();  // gated off (e.g. election backup): stay silent
    }
    RmiAdvert advert;
    advert.server_name = s->bus_->name();
    advert.subject = s->subject_;
    advert.host = s->bus_->host();
    advert.port = s->listener_->port();
    advert.load = s->in_flight_;
    advert.interface = s->service_->interface();
    return advert.Marshal();
  };
  auto responder = DiscoveryResponder::Create(bus, subject, describe);
  if (!responder.ok()) {
    return responder.status();
  }
  server->responder_ = responder.take();
  if (config.advertise_in_directory) {
    auto dir = DiscoveryResponder::Create(bus, kServiceDirectorySubject, describe);
    if (!dir.ok()) {
      return dir.status();
    }
    server->directory_responder_ = dir.take();
  }
  return server;
}

void RmiServer::Accept(ConnectionPtr conn) {
  stats_.connections_accepted++;
  Connection* raw = conn.get();
  raw->SetMessageHandler([this, raw](const Bytes& bytes) {
    // Find the shared handle for the raw pointer (kept in connections_).
    for (const ConnectionPtr& c : connections_) {
      if (c.get() == raw) {
        HandleRequest(c, bytes);
        return;
      }
    }
  });
  raw->SetCloseHandler([this, raw]() {
    connections_.erase(std::remove_if(connections_.begin(), connections_.end(),
                                      [raw](const ConnectionPtr& c) { return c.get() == raw; }),
                       connections_.end());
  });
  connections_.push_back(std::move(conn));
}

void RmiServer::HandleRequest(const ConnectionPtr& conn, const Bytes& bytes) {
  auto frame = ParseFrame(bytes);
  if (!frame.ok() || frame->frame_type != kRmiRequestFrame) {
    return;
  }
  auto request = RmiRequest::Unmarshal(frame->payload);
  if (!request.ok()) {
    return;
  }
  stats_.requests++;
  in_flight_++;
  const uint64_t id = request->request_id;

  RmiReply reply;
  reply.request_id = id;
  if (request->call == RmiCall::kDescribe) {
    WireWriter w;
    service_->interface().ToWire(&w);
    reply.result = Value(w.Take());
  } else {
    auto result = service_->Invoke(request->operation, request->args);
    if (result.ok()) {
      reply.result = result.take();
    } else {
      reply.code = result.status().code();
      reply.error_message = result.status().message();
      stats_.errors++;
    }
  }
  // Charge the configured service time, then reply (exactly-once under normal
  // operation; a crash before the reply leaves the client with at-most-once).
  bus_->sim()->ScheduleAfter(
      config_.service_time_us,
      [this, conn, reply = std::move(reply), alive = alive_]() {
        if (!*alive) {
          return;
        }
        in_flight_--;
        if (conn->open()) {
          conn->Send(FrameMessage(kRmiReplyFrame, reply.Marshal()));
        }
      },
      "rmi.service_time");
}

}  // namespace ibus
