// RMI server (paper §3.3): "Servers are named with subjects." The server answers
// discovery queries on its subject with a point-to-point address and current load,
// then serves request/reply traffic over accepted connections. Several servers may
// share a subject for load balancing or fault tolerance; selection is the client's
// policy.
#ifndef SRC_RMI_SERVER_H_
#define SRC_RMI_SERVER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/bus/client.h"
#include "src/bus/discovery.h"
#include "src/rmi/protocol.h"
#include "src/rmi/service.h"

namespace ibus {

struct RmiServerConfig {
  // Listening port for point-to-point traffic; 0 picks 9000 + a per-host counter.
  Port listen_port = 0;
  // Simulated execution time charged per invocation before the reply is sent.
  SimTime service_time_us = 200;
  // Also answer discovery queries on the bus-wide directory subject, so generic tools
  // (application builder, monitors) can enumerate available services (paper §5.1).
  bool advertise_in_directory = true;
};

// Directory subject every advertising RmiServer responds on.
inline constexpr char kServiceDirectorySubject[] = "_svc.directory";

struct RmiServerStats {
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t connections_accepted = 0;
};

class RmiServer {
 public:
  static Result<std::unique_ptr<RmiServer>> Create(BusClient* bus, const std::string& subject,
                                                   std::shared_ptr<ServiceObject> service,
                                                   const RmiServerConfig& config = {});
  ~RmiServer() = default;
  RmiServer(const RmiServer&) = delete;
  RmiServer& operator=(const RmiServer&) = delete;

  const std::string& subject() const { return subject_; }
  Port port() const { return listener_->port(); }
  uint64_t load() const { return in_flight_; }
  const RmiServerStats& stats() const { return stats_; }

  // Gates discovery responses. A server in a fault-tolerant group answers only while
  // it holds leadership (see rmi/election.h); accepted connections keep working either
  // way, so a demoted primary drains its outstanding requests.
  void set_answering(bool answering) { answering_ = answering; }
  bool answering() const { return answering_; }

 private:
  RmiServer(BusClient* bus, std::string subject, std::shared_ptr<ServiceObject> service,
            const RmiServerConfig& config)
      : bus_(bus),
        subject_(std::move(subject)),
        service_(std::move(service)),
        config_(config),
        alive_(std::make_shared<bool>(true)) {}

  void Accept(ConnectionPtr conn);
  void HandleRequest(const ConnectionPtr& conn, const Bytes& bytes);

  BusClient* bus_;
  std::string subject_;
  std::shared_ptr<ServiceObject> service_;
  RmiServerConfig config_;
  std::unique_ptr<Listener> listener_;
  std::unique_ptr<DiscoveryResponder> responder_;
  std::unique_ptr<DiscoveryResponder> directory_responder_;
  std::vector<ConnectionPtr> connections_;
  bool answering_ = true;
  uint64_t in_flight_ = 0;
  RmiServerStats stats_;
  std::shared_ptr<bool> alive_;
};

}  // namespace ibus

#endif  // SRC_RMI_SERVER_H_
