// Leader election over publish/subscribe, for fault-tolerant server groups. The paper
// (§3.3): "More than one server can respond to requests on a subject. Several server
// objects can be used to provide load balancing or fault-tolerance ... The servers can
// decide among themselves which one will respond to a request from the client."
//
// This is the "decide among themselves" policy: members of a group run a bully-style
// election on a control subject ("_ibus.elect.<group>"); the member with the highest
// id leads and heartbeats; when its heartbeats stop (crash, partition), the remaining
// members elect a successor. An RmiServer gated on election answers discovery only
// while leading, so clients always reach exactly one (live) primary — and fail over
// transparently, by subject alone (P4).
#ifndef SRC_RMI_ELECTION_H_
#define SRC_RMI_ELECTION_H_

#include <functional>
#include <memory>
#include <string>

#include "src/bus/client.h"
#include "src/telemetry/flight_recorder.h"

namespace ibus {

struct ElectionConfig {
  SimTime candidacy_window_us = 50 * 1000;   // collect rival candidacies this long
  SimTime heartbeat_interval_us = 100 * 1000;
  SimTime leader_timeout_us = 350 * 1000;    // silence after which the leader is dead
  // Optional: election state transitions (candidacy, leadership, step-down) are
  // recorded here, typically the host daemon's flight recorder.
  telemetry::FlightRecorder* recorder = nullptr;
};

class Election {
 public:
  // `on_change` fires with true when this member becomes leader and false when it
  // loses leadership (a higher id appeared, e.g. after a partition heals).
  using LeadershipFn = std::function<void(bool is_leader)>;

  static Result<std::unique_ptr<Election>> Join(BusClient* bus, const std::string& group,
                                                uint64_t member_id, LeadershipFn on_change,
                                                const ElectionConfig& config = {});
  ~Election();
  Election(const Election&) = delete;
  Election& operator=(const Election&) = delete;

  bool is_leader() const { return is_leader_; }
  uint64_t leader_id() const { return leader_id_; }
  uint64_t member_id() const { return member_id_; }

 private:
  Election(BusClient* bus, std::string group, uint64_t member_id, LeadershipFn on_change,
           const ElectionConfig& config)
      : bus_(bus),
        group_(std::move(group)),
        member_id_(member_id),
        on_change_(std::move(on_change)),
        config_(config),
        alive_(std::make_shared<bool>(true)) {}

  std::string Subject() const { return kReservedElectPrefix + group_; }
  void StartElection();
  void HandleMessage(const Message& m);
  void BecomeLeader();
  void StepDown(uint64_t new_leader);
  void SendHeartbeat();
  void WatchLeader();

  BusClient* bus_;
  std::string group_;
  uint64_t member_id_;
  LeadershipFn on_change_;
  ElectionConfig config_;

  uint64_t sub_ = 0;
  bool is_leader_ = false;
  bool electing_ = false;
  uint64_t highest_seen_ = 0;   // highest rival candidacy during the window
  uint64_t leader_id_ = 0;
  SimTime last_leader_heartbeat_ = 0;
  std::shared_ptr<bool> alive_;
};

}  // namespace ibus

#endif  // SRC_RMI_ELECTION_H_
