// Service objects (paper §3): large-grained objects that encapsulate resources and are
// invoked where they reside via remote method invocation. Every service is
// self-describing — it exposes a TypeDescriptor listing its operations, which lets
// generic tools (the application builder, the News Monitor's service menus) construct
// interactions with services they have never been compiled against.
#ifndef SRC_RMI_SERVICE_H_
#define SRC_RMI_SERVICE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/types/type_descriptor.h"
#include "src/types/value.h"

namespace ibus {

class ServiceObject {
 public:
  virtual ~ServiceObject() = default;

  // The meta-object protocol for services: name, operations, signatures.
  virtual const TypeDescriptor& interface() const = 0;

  // Executes an operation. Argument count/kinds are the callee's responsibility to
  // validate (the dispatcher checks the operation exists).
  virtual Result<Value> Invoke(const std::string& operation,
                               const std::vector<Value>& args) = 0;
};

// A service assembled at run-time from individual operation handlers; the common way
// to implement services in this library (and the only way from TDL).
class DynamicService : public ServiceObject {
 public:
  using OperationFn = std::function<Result<Value>(const std::vector<Value>& args)>;

  explicit DynamicService(std::string type_name, std::string supertype = "object")
      : interface_(std::move(type_name), std::move(supertype)) {}

  // Registers an operation with its signature and implementation.
  DynamicService& AddOperation(OperationDef def, OperationFn fn) {
    handlers_[def.name] = std::move(fn);
    interface_.AddOperation(std::move(def));
    return *this;
  }

  const TypeDescriptor& interface() const override { return interface_; }

  Result<Value> Invoke(const std::string& operation, const std::vector<Value>& args) override {
    auto it = handlers_.find(operation);
    if (it == handlers_.end()) {
      return NotFound("service " + interface_.name() + ": no operation '" + operation + "'");
    }
    return it->second(args);
  }

 private:
  TypeDescriptor interface_;
  std::unordered_map<std::string, OperationFn> handlers_;
};

}  // namespace ibus

#endif  // SRC_RMI_SERVICE_H_
