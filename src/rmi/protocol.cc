#include "src/rmi/protocol.h"

#include "src/types/codec.h"
#include "src/wire/wire.h"

namespace ibus {

// wirecheck: codec(rmi_advert, version=0)
Bytes RmiAdvert::Marshal() const {
  WireWriter w;
  w.PutString(server_name);
  w.PutString(subject);
  w.PutU32(host);
  w.PutU16(port);
  w.PutU64(load);
  interface.ToWire(&w);
  return w.Take();
}

// wirecheck: codec(rmi_advert, version=0)
Result<RmiAdvert> RmiAdvert::Unmarshal(const Bytes& b) {
  WireReader r(b);
  RmiAdvert a;
  auto name = r.ReadString();
  auto subject = r.ReadString();
  auto host = r.ReadU32();
  auto port = r.ReadU16();
  auto load = r.ReadU64();
  if (!name.ok() || !subject.ok() || !host.ok() || !port.ok() || !load.ok()) {
    return DataLoss("rmi advert: truncated");
  }
  a.server_name = name.take();
  a.subject = subject.take();
  a.host = *host;
  a.port = *port;
  a.load = *load;
  auto iface = TypeDescriptor::FromWire(&r);
  if (!iface.ok()) {
    return iface.status();
  }
  a.interface = iface.take();
  if (!r.AtEnd()) {
    return DataLoss("rmi advert: trailing bytes");
  }
  return a;
}

// wirecheck: codec(rmi_request, version=0)
Bytes RmiRequest::Marshal() const {
  WireWriter w;
  w.PutU64(request_id);
  w.PutU8(static_cast<uint8_t>(call));
  w.PutString(operation);
  w.PutVarint(args.size());
  for (const Value& v : args) {
    MarshalValue(v, &w);
  }
  return w.Take();
}

// wirecheck: codec(rmi_request, version=0)
Result<RmiRequest> RmiRequest::Unmarshal(const Bytes& b) {
  WireReader r(b);
  RmiRequest req;
  auto id = r.ReadU64();
  auto call = r.ReadU8();
  auto op = r.ReadString();
  auto argc = r.ReadVarint();
  if (!id.ok() || !call.ok() || !op.ok() || !argc.ok()) {
    return DataLoss("rmi request: truncated");
  }
  req.request_id = *id;
  req.call = static_cast<RmiCall>(*call);
  req.operation = op.take();
  if (*argc > r.remaining()) {
    return DataLoss("rmi request: implausible arg count");
  }
  for (uint64_t i = 0; i < *argc; ++i) {
    auto v = UnmarshalValue(&r);
    if (!v.ok()) {
      return v.status();
    }
    req.args.push_back(v.take());
  }
  if (!r.AtEnd()) {
    return DataLoss("rmi request: trailing bytes");
  }
  return req;
}

// wirecheck: codec(rmi_reply, version=0)
Bytes RmiReply::Marshal() const {
  WireWriter w;
  w.PutU64(request_id);
  w.PutU8(static_cast<uint8_t>(code));
  w.PutString(error_message);
  MarshalValue(result, &w);
  return w.Take();
}

// wirecheck: codec(rmi_reply, version=0)
Result<RmiReply> RmiReply::Unmarshal(const Bytes& b) {
  WireReader r(b);
  RmiReply rep;
  auto id = r.ReadU64();
  auto code = r.ReadU8();
  auto msg = r.ReadString();
  if (!id.ok() || !code.ok() || !msg.ok()) {
    return DataLoss("rmi reply: truncated");
  }
  rep.request_id = *id;
  rep.code = static_cast<StatusCode>(*code);
  rep.error_message = msg.take();
  auto v = UnmarshalValue(&r);
  if (!v.ok()) {
    return v.status();
  }
  rep.result = v.take();
  if (!r.AtEnd()) {
    return DataLoss("rmi reply: trailing bytes");
  }
  return rep;
}

}  // namespace ibus
