#include "src/rmi/client.h"

#include <algorithm>

#include "src/bus/discovery.h"
#include "src/wire/wire.h"

namespace ibus {

// ---------------------------------------------------------------------------------
// RemoteService
// ---------------------------------------------------------------------------------

RemoteService::RemoteService(Simulator* sim, RmiAdvert advert, ConnectionPtr conn,
                             SimTime call_timeout)
    : sim_(sim),
      advert_(std::move(advert)),
      conn_(std::move(conn)),
      call_timeout_(call_timeout),
      alive_(std::make_shared<bool>(true)) {
  conn_->SetMessageHandler([this](const Bytes& bytes) { HandleReply(bytes); });
  conn_->SetCloseHandler([this]() { FailAll(Unavailable("connection to server lost")); });
}

RemoteService::~RemoteService() {
  *alive_ = false;
  if (conn_ != nullptr) {
    conn_->SetMessageHandler(nullptr);
    conn_->SetCloseHandler(nullptr);
    conn_->Close();
  }
  // Surface an error to every caller still waiting rather than dropping them.
  FailAll(Unavailable("remote service released"));
}

void RemoteService::Call(const std::string& operation, std::vector<Value> args, CallDone done) {
  if (!connected()) {
    done(Unavailable("not connected"));
    return;
  }
  RmiRequest req;
  req.request_id = next_request_++;
  req.call = RmiCall::kInvoke;
  req.operation = operation;
  req.args = std::move(args);

  PendingCall pending;
  pending.done = std::move(done);
  pending.sent_at = sim_->Now();
  const uint64_t id = req.request_id;
  pending.timeout_event = sim_->ScheduleAfter(
      call_timeout_,
      [this, id, alive = alive_]() {
        if (!*alive) {
          return;
        }
        auto it = pending_.find(id);
        if (it != pending_.end()) {
          CallDone done = std::move(it->second.done);
          pending_.erase(it);
          done(DeadlineExceeded("rmi call timed out"));
        }
      },
      "rmi.call_timeout");
  pending_.emplace(id, std::move(pending));
  Status s = conn_->Send(FrameMessage(kRmiRequestFrame, req.Marshal()));
  if (!s.ok()) {
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      sim_->Cancel(it->second.timeout_event);
      CallDone done = std::move(it->second.done);
      pending_.erase(it);
      done(s);
    }
  }
}

void RemoteService::Describe(std::function<void(Result<TypeDescriptor>)> done) {
  if (!connected()) {
    done(Unavailable("not connected"));
    return;
  }
  RmiRequest req;
  req.request_id = next_request_++;
  req.call = RmiCall::kDescribe;
  PendingCall pending;
  pending.describe = true;
  pending.sent_at = sim_->Now();
  pending.done = [done = std::move(done)](Result<Value> r) {
    if (!r.ok()) {
      done(r.status());
      return;
    }
    if (!r->is_bytes()) {
      done(Status(DataLoss("describe: unexpected payload")));
      return;
    }
    done(TypeDescriptor::Unmarshal(r->AsBytes()));
  };
  const uint64_t id = req.request_id;
  pending.timeout_event = sim_->ScheduleAfter(
      call_timeout_,
      [this, id, alive = alive_]() {
        if (!*alive) {
          return;
        }
        auto it = pending_.find(id);
        if (it != pending_.end()) {
          CallDone done = std::move(it->second.done);
          pending_.erase(it);
          done(DeadlineExceeded("rmi describe timed out"));
        }
      },
      "rmi.call_timeout");
  pending_.emplace(id, std::move(pending));
  conn_->Send(FrameMessage(kRmiRequestFrame, req.Marshal()));
}

void RemoteService::HandleReply(const Bytes& bytes) {
  auto frame = ParseFrame(bytes);
  if (!frame.ok() || frame->frame_type != kRmiReplyFrame) {
    return;
  }
  auto reply = RmiReply::Unmarshal(frame->payload);
  if (!reply.ok()) {
    return;
  }
  auto it = pending_.find(reply->request_id);
  if (it == pending_.end()) {
    return;  // reply after timeout: dropped (at-most-once)
  }
  sim_->Cancel(it->second.timeout_event);
  rtt_hist_.Record(sim_->Now() - it->second.sent_at);
  CallDone done = std::move(it->second.done);
  pending_.erase(it);
  if (reply->code == StatusCode::kOk) {
    done(std::move(reply->result));
  } else {
    done(Status(reply->code, reply->error_message));
  }
}

void RemoteService::FailAll(const Status& status) {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [id, call] : pending) {
    sim_->Cancel(call.timeout_event);
    call.done(status);
  }
}

// ---------------------------------------------------------------------------------
// RmiClient
// ---------------------------------------------------------------------------------

Status RmiClient::Discover(BusClient* bus, const std::string& subject,
                           const RmiClientConfig& config, DiscoverDone done) {
  return DiscoveryQuery::Run(
      bus, subject, config.discovery_timeout_us,
      [done = std::move(done)](std::vector<Message> responses) {
        std::vector<RmiAdvert> adverts;
        for (const Message& m : responses) {
          auto advert = RmiAdvert::Unmarshal(m.payload);
          if (advert.ok()) {
            adverts.push_back(advert.take());
          }
        }
        done(std::move(adverts));
      });
}

void RmiClient::ConnectTo(BusClient* bus, const RmiAdvert& advert, const RmiClientConfig& config,
                          ConnectDone done) {
  Simulator* sim = bus->sim();
  SimTime call_timeout = config.call_timeout_us;
  bus->network()->Connect(
      bus->host(), advert.host, advert.port,
      [sim, advert, call_timeout, done = std::move(done)](Result<ConnectionPtr> conn) {
        if (!conn.ok()) {
          done(conn.status());
          return;
        }
        done(std::shared_ptr<RemoteService>(
            new RemoteService(sim, advert, conn.take(), call_timeout)));
      });
}

Status RmiClient::Connect(BusClient* bus, const std::string& subject,
                          const RmiClientConfig& config, ConnectDone done) {
  return Discover(bus, subject, config,
                  [bus, config, done = std::move(done)](std::vector<RmiAdvert> adverts) {
                    if (adverts.empty()) {
                      done(Unavailable("no server answered on subject"));
                      return;
                    }
                    const RmiAdvert* chosen = &adverts[0];
                    if (config.selection == ServerSelection::kLeastLoaded) {
                      chosen = &*std::min_element(adverts.begin(), adverts.end(),
                                                  [](const RmiAdvert& a, const RmiAdvert& b) {
                                                    return a.load < b.load;
                                                  });
                    }
                    ConnectTo(bus, *chosen, config, std::move(done));
                  });
}

namespace {

struct RetryState {
  BusClient* bus;
  std::string subject;
  std::string operation;
  std::vector<Value> args;
  RmiClientConfig config;
  RemoteService::CallDone done;
  int attempts_left = 0;
  Status last_error;
};

void RetryAttempt(std::shared_ptr<RetryState> state) {
  if (state->attempts_left <= 0) {
    state->done(state->last_error.ok() ? Status(Unavailable("no attempts made"))
                                       : state->last_error);
    return;
  }
  state->attempts_left--;
  Status s = RmiClient::Connect(
      state->bus, state->subject, state->config,
      [state](Result<std::shared_ptr<RemoteService>> r) {
        if (!r.ok()) {
          state->last_error = r.status();
          RetryAttempt(state);
          return;
        }
        std::shared_ptr<RemoteService> service = r.take();
        service->Call(state->operation, state->args, [state, service](Result<Value> v) {
          if (v.ok()) {
            state->done(std::move(v));
            return;
          }
          state->last_error = v.status();
          RetryAttempt(state);  // the next attempt re-discovers from scratch
        });
      });
  if (!s.ok()) {
    state->last_error = s;
    RetryAttempt(state);
  }
}

}  // namespace

void RetryingCall(BusClient* bus, const std::string& subject, const std::string& operation,
                  std::vector<Value> args, int max_attempts, const RmiClientConfig& config,
                  RemoteService::CallDone done) {
  auto state = std::make_shared<RetryState>();
  state->bus = bus;
  state->subject = subject;
  state->operation = operation;
  state->args = std::move(args);
  state->config = config;
  state->done = std::move(done);
  state->attempts_left = max_attempts;
  RetryAttempt(std::move(state));
}

}  // namespace ibus
