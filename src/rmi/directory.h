// Service directory: "It is possible to examine the list of available services on the
// Information Bus by using various name services. Services are self-describing, so
// users can inspect the interface description for each service." (paper §5.1)
//
// There is no central registry: listing services is just a discovery query on the
// shared directory subject, answered by every advertising RmiServer (P4 preserved).
#ifndef SRC_RMI_DIRECTORY_H_
#define SRC_RMI_DIRECTORY_H_

#include <functional>
#include <vector>

#include "src/rmi/client.h"
#include "src/rmi/server.h"

namespace ibus {

class ServiceDirectory {
 public:
  using ListDone = std::function<void(std::vector<RmiAdvert>)>;

  // Collects every service advert heard within the timeout.
  static Status List(BusClient* bus, SimTime timeout_us, ListDone done) {
    RmiClientConfig config;
    config.discovery_timeout_us = timeout_us;
    return RmiClient::Discover(bus, kServiceDirectorySubject, config, std::move(done));
  }
};

}  // namespace ibus

#endif  // SRC_RMI_DIRECTORY_H_
