#include "src/rmi/election.h"

#include "src/wire/wire.h"

namespace ibus {

namespace {
constexpr char kCandidacyType[] = "_elect.candidacy";
constexpr char kHeartbeatType[] = "_elect.heartbeat";

// wirecheck: codec(election_id, version=0)
Bytes IdPayload(uint64_t id) {
  WireWriter w;
  w.PutU64(id);
  return w.Take();
}

// wirecheck: codec(election_id, version=0)
uint64_t ReadId(const Bytes& b) {
  WireReader r(b);
  auto id = r.ReadU64();
  if (!id.ok() || !r.AtEnd()) {
    return 0;  // malformed or trailing bytes: treat as "no id"
  }
  return *id;
}
}  // namespace

Result<std::unique_ptr<Election>> Election::Join(BusClient* bus, const std::string& group,
                                                 uint64_t member_id, LeadershipFn on_change,
                                                 const ElectionConfig& config) {
  if (member_id == 0) {
    return InvalidArgument("election: member id 0 is reserved");
  }
  auto election = std::unique_ptr<Election>(
      new Election(bus, group, member_id, std::move(on_change), config));
  auto sub = bus->Subscribe(election->Subject(),
                            [e = election.get()](const Message& m) { e->HandleMessage(m); });
  if (!sub.ok()) {
    return sub.status();
  }
  election->sub_ = *sub;
  election->StartElection();
  return election;
}

Election::~Election() {
  *alive_ = false;
  if (sub_ != 0) {
    bus_->Unsubscribe(sub_);
  }
}

void Election::StartElection() {
  if (electing_) {
    return;
  }
  electing_ = true;
  highest_seen_ = 0;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(bus_->sim()->Now(), telemetry::FlightEventKind::kElection,
                             Subject(), "candidacy id=" + std::to_string(member_id_));
  }
  Message m;
  m.subject = Subject();
  m.type_name = kCandidacyType;
  m.payload = IdPayload(member_id_);
  bus_->PublishInternal(std::move(m));
  bus_->sim()->ScheduleAfter(
      config_.candidacy_window_us,
      [this, alive = alive_]() {
        if (!*alive) {
          return;
        }
        electing_ = false;
        if (highest_seen_ <= member_id_) {
          BecomeLeader();
        } else {
          // A rival with a higher id is out there; wait for its heartbeats.
          leader_id_ = highest_seen_;
          last_leader_heartbeat_ = bus_->sim()->Now();
          WatchLeader();
        }
      },
      "rmi.election");
}

void Election::HandleMessage(const Message& m) {
  uint64_t id = ReadId(m.payload);
  if (id == 0 || id == member_id_) {
    return;  // our own publication looped back
  }
  if (m.type_name == kCandidacyType) {
    highest_seen_ = std::max(highest_seen_, id);
    if (is_leader_) {
      if (id > member_id_) {
        StepDown(id);
      } else {
        SendHeartbeat();  // a lower-id candidate joined: assert leadership promptly
      }
    } else if (!electing_ && id > std::max(leader_id_, member_id_)) {
      leader_id_ = id;  // a stronger member joined
      last_leader_heartbeat_ = bus_->sim()->Now();
      WatchLeader();
    }
    return;
  }
  if (m.type_name == kHeartbeatType) {
    if (id > member_id_) {
      if (is_leader_) {
        StepDown(id);  // e.g. a healed partition reveals a higher leader
      }
      leader_id_ = id;
      last_leader_heartbeat_ = bus_->sim()->Now();
    } else if (is_leader_ && id < member_id_) {
      SendHeartbeat();  // the weaker leader will observe us and step down
    }
  }
}

void Election::BecomeLeader() {
  if (is_leader_) {
    return;
  }
  is_leader_ = true;
  leader_id_ = member_id_;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(bus_->sim()->Now(), telemetry::FlightEventKind::kElection,
                             Subject(), "leader id=" + std::to_string(member_id_));
  }
  SendHeartbeat();
  if (on_change_) {
    on_change_(true);
  }
}

void Election::StepDown(uint64_t new_leader) {
  if (!is_leader_) {
    return;
  }
  is_leader_ = false;
  leader_id_ = new_leader;
  if (config_.recorder != nullptr) {
    config_.recorder->Record(bus_->sim()->Now(), telemetry::FlightEventKind::kElection,
                             Subject(), "step_down to=" + std::to_string(new_leader));
  }
  last_leader_heartbeat_ = bus_->sim()->Now();
  WatchLeader();
  if (on_change_) {
    on_change_(false);
  }
}

void Election::SendHeartbeat() {
  Message m;
  m.subject = Subject();
  m.type_name = kHeartbeatType;
  m.payload = IdPayload(member_id_);
  bus_->PublishInternal(std::move(m));
  bus_->sim()->ScheduleAfter(
      config_.heartbeat_interval_us,
      [this, alive = alive_]() {
        if (*alive && is_leader_) {
          SendHeartbeat();
        }
      },
      "rmi.election");
}

void Election::WatchLeader() {
  bus_->sim()->ScheduleAfter(
      config_.leader_timeout_us,
      [this, alive = alive_]() {
        if (!*alive || is_leader_ || electing_) {
          return;
        }
        if (bus_->sim()->Now() - last_leader_heartbeat_ >= config_.leader_timeout_us) {
          StartElection();  // the leader went silent
        } else {
          WatchLeader();
        }
      },
      "rmi.election");
}

}  // namespace ibus
