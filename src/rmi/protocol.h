// Wire schemas for the RMI request/reply protocol and the discovery "I am" payload.
#ifndef SRC_RMI_PROTOCOL_H_
#define SRC_RMI_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/sim/network.h"
#include "src/types/type_descriptor.h"
#include "src/types/value.h"

namespace ibus {

// Frame types for RMI traffic over point-to-point connections.
inline constexpr uint8_t kRmiRequestFrame = 40;
inline constexpr uint8_t kRmiReplyFrame = 41;

// Discovery response payload: where to connect and how loaded the server is.
struct RmiAdvert {
  std::string server_name;
  std::string subject;  // the subject the service answers on (set by directory adverts)
  HostId host = kNoHost;
  Port port = 0;
  uint64_t load = 0;  // currently executing + queued requests
  TypeDescriptor interface;

  Bytes Marshal() const;
  static Result<RmiAdvert> Unmarshal(const Bytes& b);
};

enum class RmiCall : uint8_t {
  kInvoke = 1,
  kDescribe = 2,  // returns the service interface (introspection over the wire)
};

struct RmiRequest {
  uint64_t request_id = 0;
  RmiCall call = RmiCall::kInvoke;
  std::string operation;
  std::vector<Value> args;

  Bytes Marshal() const;
  static Result<RmiRequest> Unmarshal(const Bytes& b);
};

struct RmiReply {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string error_message;
  Value result;

  Bytes Marshal() const;
  static Result<RmiReply> Unmarshal(const Bytes& b);
};

}  // namespace ibus

#endif  // SRC_RMI_PROTOCOL_H_
