// Graphical Application Builder (paper §5.1), headless reproduction: "an
// interpreter-driven, user interface toolkit ... All high-level application behavior
// is encoded in the interpreted language; only low-level behavior that is common to
// many applications is actually compiled."
//
// AppBuilder embeds a TDL interpreter and binds it to the Information Bus:
//   (bus-publish "subject" obj)                  publish a data object
//   (bus-subscribe "pattern" (lambda (subj obj) ...))   event-driven handlers
//   (bus-invoke "svc.x" "op" (list ...) (lambda (status result) ...))   call services
//   (list-services (lambda (services) ...))      enumerate services on the bus
//   (define-service "svc.x" instance (list 'op1 'op2))   serve an object over RMI:
//       each op becomes an operation dispatched to the TDL generic (opN instance
//       args...), so whole services are written in the interpreted language (P3)
// plus UI generation from self-describing service interfaces: "menus listing the
// operations in the interface can be popped up, and dialogue boxes that are based on
// the operations' signatures can lead the user through interactions" (§5.2).
#ifndef SRC_APPBUILDER_APP_BUILDER_H_
#define SRC_APPBUILDER_APP_BUILDER_H_

#include <map>
#include <memory>
#include <string>

#include "src/bus/client.h"
#include "src/rmi/client.h"
#include "src/rmi/directory.h"
#include "src/rmi/server.h"
#include "src/tdl/interp.h"

namespace ibus {

class AppBuilder {
 public:
  AppBuilder(BusClient* bus, TypeRegistry* registry);
  ~AppBuilder();
  AppBuilder(const AppBuilder&) = delete;
  AppBuilder& operator=(const AppBuilder&) = delete;

  TdlInterp* interp() { return &interp_; }

  // Evaluates an application script. Handlers registered by the script keep firing
  // as bus traffic arrives (the simulator drives them).
  Result<Datum> RunScript(std::string_view source) { return interp_.EvalProgram(source); }

  // Text the script produced via (print ...).
  std::string TakeOutput() { return interp_.TakeOutput(); }

  // --- Generic service UI generation (no compilation involved) ---------------------
  // A numbered menu of every operation in the interface.
  static std::string BuildMenu(const TypeDescriptor& iface);
  // A "dialogue box": one prompt per parameter, derived from the signature.
  static std::string BuildDialog(const OperationDef& op);

 private:
  void InstallBusBindings();

  BusClient* bus_;
  TypeRegistry* registry_;
  TdlInterp interp_;
  std::vector<uint64_t> subs_;
  // Cached connections per service subject (scripts call repeatedly).
  std::map<std::string, std::shared_ptr<RemoteService>> services_;
  // RMI servers created by scripts via (define-service ...), kept alive with the app.
  std::vector<std::unique_ptr<RmiServer>> script_servers_;
  std::shared_ptr<bool> alive_;
};

}  // namespace ibus

#endif  // SRC_APPBUILDER_APP_BUILDER_H_
