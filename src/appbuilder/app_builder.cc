#include "src/appbuilder/app_builder.h"

namespace ibus {

AppBuilder::AppBuilder(BusClient* bus, TypeRegistry* registry)
    : bus_(bus), registry_(registry), interp_(registry), alive_(std::make_shared<bool>(true)) {
  InstallBusBindings();
}

AppBuilder::~AppBuilder() {
  *alive_ = false;
  for (uint64_t sub : subs_) {
    bus_->Unsubscribe(sub);
  }
}

void AppBuilder::InstallBusBindings() {
  interp_.DefineNative("bus-publish", [this](std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 2 || !args[0].is_string() || !args[1].is_object() ||
        args[1].AsObject() == nullptr) {
      return InvalidArgument("(bus-publish \"subject\" obj)");
    }
    Status s = bus_->PublishObject(args[0].AsString(), *args[1].AsObject());
    if (!s.ok()) {
      return s;
    }
    return Datum(true);
  });

  interp_.DefineNative("bus-subscribe", [this](std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 2 || !args[0].is_string() || !args[1].is_callable()) {
      return InvalidArgument("(bus-subscribe \"pattern\" handler)");
    }
    Datum handler = args[1];
    auto sub = bus_->SubscribeObjects(
        args[0].AsString(),
        [this, handler, alive = alive_](const Message& m, const DataObjectPtr& obj) {
          if (!*alive || obj == nullptr) {
            return;
          }
          std::vector<Datum> call_args{Datum(m.subject), Datum(obj)};
          interp_.Apply(handler, call_args);
        });
    if (!sub.ok()) {
      return sub.status();
    }
    subs_.push_back(*sub);
    return Datum(static_cast<int64_t>(*sub));
  });

  interp_.DefineNative("bus-invoke", [this](std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 4 || !args[0].is_string() || !args[1].is_string() ||
        !args[2].is_list() || !args[3].is_callable()) {
      return InvalidArgument("(bus-invoke \"subject\" \"op\" (list args) callback)");
    }
    std::string subject = args[0].AsString();
    std::string op = args[1].AsString();
    std::vector<Value> call_args;
    for (const Datum& d : args[2].AsList()) {
      auto v = d.ToValue();
      if (!v.ok()) {
        return v.status();
      }
      call_args.push_back(v.take());
    }
    Datum callback = args[3];

    auto run_call = [this, op, call_args, callback](std::shared_ptr<RemoteService> service) {
      service->Call(op, call_args, [this, callback, alive = alive_](Result<Value> r) {
        if (!*alive) {
          return;
        }
        std::vector<Datum> cb_args;
        if (r.ok()) {
          cb_args = {Datum(true), Datum::FromValue(*r)};
        } else {
          cb_args = {Datum(false), Datum(r.status().ToString())};
        }
        interp_.Apply(callback, cb_args);
      });
    };

    auto cached = services_.find(subject);
    if (cached != services_.end() && cached->second->connected()) {
      run_call(cached->second);
      return Datum(true);
    }
    Status s = RmiClient::Connect(
        bus_, subject, RmiClientConfig{},
        [this, subject, run_call, callback, alive = alive_](
            Result<std::shared_ptr<RemoteService>> r) {
          if (!*alive) {
            return;
          }
          if (!r.ok()) {
            std::vector<Datum> cb_args{Datum(false), Datum(r.status().ToString())};
            interp_.Apply(callback, cb_args);
            return;
          }
          // Another concurrent bus-invoke may have connected first; keep the existing
          // (possibly busy) service rather than destroying it mid-call.
          auto& slot = services_[subject];
          if (slot == nullptr || !slot->connected()) {
            slot = *r;
          }
          run_call(slot);
        });
    if (!s.ok()) {
      return s;
    }
    return Datum(true);
  });

  interp_.DefineNative("define-service", [this](std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 3 || !args[0].is_string() || !args[1].is_object() ||
        args[1].AsObject() == nullptr || !args[2].is_list()) {
      return InvalidArgument("(define-service \"subject\" instance (list 'op...))");
    }
    const std::string& subject = args[0].AsString();
    DataObjectPtr instance = args[1].AsObject();
    auto service =
        std::make_shared<DynamicService>(instance->type_name() + "_service");
    for (const Datum& op_name : args[2].AsList()) {
      if (!op_name.is_symbol()) {
        return InvalidArgument("define-service: operation names must be symbols");
      }
      const std::string op = op_name.AsSymbol();
      OperationDef def;
      def.name = op;
      def.result_type = "any";
      def.params = {ParamDef{"args", "list"}};
      service->AddOperation(
          def, [this, op, instance, alive = alive_](
                   const std::vector<Value>& call_args) -> Result<Value> {
            if (!*alive) {
              return Unavailable("application gone");
            }
            // Dispatch to the TDL generic: (op instance arg1 arg2 ...).
            std::vector<Datum> tdl_args{Datum(instance)};
            for (const Value& v : call_args) {
              tdl_args.push_back(Datum::FromValue(v));
            }
            auto r = interp_.CallGeneric(op, std::move(tdl_args));
            if (!r.ok()) {
              return r.status();
            }
            return r->ToValue();
          });
    }
    auto server = RmiServer::Create(bus_, subject, std::move(service));
    if (!server.ok()) {
      return server.status();
    }
    script_servers_.push_back(server.take());
    return Datum(true);
  });

  interp_.DefineNative("list-services", [this](std::vector<Datum>& args) -> Result<Datum> {
    if (args.size() != 1 || !args[0].is_callable()) {
      return InvalidArgument("(list-services callback)");
    }
    Datum callback = args[0];
    Status s = ServiceDirectory::List(
        bus_, 100 * kMillisecond,
        [this, callback, alive = alive_](std::vector<RmiAdvert> adverts) {
          if (!*alive) {
            return;
          }
          Datum::List services;
          for (const RmiAdvert& a : adverts) {
            services.push_back(Datum(Datum::List{Datum(a.subject), Datum(a.server_name),
                                                 Datum(a.interface.name())}));
          }
          std::vector<Datum> cb_args{Datum(std::move(services))};
          interp_.Apply(callback, cb_args);
        });
    if (!s.ok()) {
      return s;
    }
    return Datum(true);
  });
}

std::string AppBuilder::BuildMenu(const TypeDescriptor& iface) {
  std::string out = "=== " + iface.name() + " ===\n";
  int i = 1;
  for (const OperationDef& op : iface.operations()) {
    out += "  " + std::to_string(i++) + ". " + op.Signature() + "\n";
  }
  if (iface.operations().empty()) {
    out += "  (no operations)\n";
  }
  return out;
}

std::string AppBuilder::BuildDialog(const OperationDef& op) {
  std::string out = "--- " + op.name + " ---\n";
  for (const ParamDef& p : op.params) {
    out += "  " + p.name + " (" + p.type_name + "): _____\n";
  }
  out += "  [OK] -> " + op.result_type + "\n";
  return out;
}

}  // namespace ibus
