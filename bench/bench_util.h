// Shared harness for the appendix-figure reproductions: the paper's testbed topology
// (fifteen hosts on one lightly loaded 10 Mbit/s Ethernet, one publisher, up to
// fourteen consumers, one daemon per host) plus simple statistics helpers.
//
// Calibration: host_cpu_us_per_frame models the SunOS-4.1.1 UDP send path that capped
// the authors' throughput near 300 KB/s on a 10 Mbit medium (paper appendix). All
// numbers reported by these benches are *simulated* time, so results are exactly
// reproducible on any machine.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace ibus {
namespace bench {

// The 1993 testbed knob: ~4.3 ms of protocol-stack time per frame reproduces the
// ~300 KB/s raw-UDP ceiling the authors report ("it is difficult to drive more than
// 300 Kb/sec through Ethernet with a raw UDP socket").
constexpr double kSunOsCpuUsPerFrame = 4300;

// Seeded per-frame medium jitter for the latency benches. A perfectly quiet
// simulated Ethernet delivers every same-sized message in the exact same time, which
// collapses the sample distribution to a point (p50 == p90 == p99) and makes the
// percentile columns meaningless. A "lightly loaded" shared medium is not quiet;
// this uniform [0, 250]µs delay (drawn from the Network's seeded RNG, so still
// exactly reproducible) restores a real distribution without moving the means.
constexpr SimTime kBenchLanJitterUs = 250;

struct Testbed {
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  SegmentId lan = 0;
  std::vector<HostId> hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  std::vector<std::unique_ptr<BusClient>> clients;  // clients[0] = publisher
  BusConfig bus_config;

  BusClient* publisher() { return clients[0].get(); }
};

inline Testbed MakeTestbed(int n_hosts, bool batching, int n_clients = -1,
                           double cpu_us_per_frame = kSunOsCpuUsPerFrame,
                           SimTime lan_jitter_us = 0) {
  Testbed tb;
  tb.sim = std::make_unique<Simulator>();
  tb.net = std::make_unique<Network>(tb.sim.get());
  SegmentConfig seg;
  seg.host_cpu_us_per_frame = cpu_us_per_frame;
  tb.lan = tb.net->AddSegment(seg);
  if (lan_jitter_us > 0) {
    FaultPlan plan;
    plan.jitter_us = lan_jitter_us;
    tb.net->SetFaultPlan(tb.lan, plan);
  }
  tb.bus_config.reliable.batching_enabled = batching;
  // Don't flood the control plane during setup-heavy benches.
  tb.bus_config.announce_subscriptions = false;
  for (int i = 0; i < n_hosts; ++i) {
    tb.hosts.push_back(tb.net->AddHost("host" + std::to_string(i), tb.lan));
    auto daemon = BusDaemon::Start(tb.net.get(), tb.hosts.back(), tb.bus_config);
    tb.daemons.push_back(daemon.take());
  }
  if (n_clients < 0) {
    n_clients = n_hosts;
  }
  for (int i = 0; i < n_clients; ++i) {
    auto client = BusClient::Connect(tb.net.get(), tb.hosts[static_cast<size_t>(i)],
                                     "client" + std::to_string(i), tb.bus_config);
    tb.clients.push_back(client.take());
  }
  tb.sim->RunFor(50 * kMillisecond);
  return tb;
}

struct Stats {
  double mean = 0;
  double stddev = 0;
  double variance = 0;
  double ci99_half = 0;  // half-width of the 99% confidence interval
  size_t n = 0;
};

inline Stats Summarize(const std::vector<double>& xs) {
  Stats s;
  s.n = xs.size();
  if (xs.empty()) {
    return s;
  }
  double sum = 0;
  for (double x : xs) {
    sum += x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double sq = 0;
  for (double x : xs) {
    sq += (x - s.mean) * (x - s.mean);
  }
  s.variance = xs.size() > 1 ? sq / static_cast<double>(xs.size() - 1) : 0;
  s.stddev = std::sqrt(s.variance);
  // z=2.576 for 99% (large-sample normal approximation, as in the paper's figures).
  s.ci99_half = 2.576 * s.stddev / std::sqrt(static_cast<double>(xs.size()));
  return s;
}

// Encodes the send timestamp at the head of a payload of `size` bytes (>= 8).
inline Bytes TimestampedPayload(SimTime now, size_t size) {
  Bytes b(std::max<size_t>(size, 8), 0xA5);
  for (int i = 0; i < 8; ++i) {
    b[static_cast<size_t>(i)] = static_cast<uint8_t>(now >> (8 * i));
  }
  return b;
}

inline SimTime DecodeTimestamp(const Bytes& b) {
  SimTime t = 0;
  for (int i = 7; i >= 0; --i) {
    t = (t << 8) | b[static_cast<size_t>(i)];
  }
  return t;
}

// The message sizes swept in Figures 5-8.
inline std::vector<size_t> FigureSizes() {
  return {64, 128, 256, 512, 1024, 2048, 4096, 5000, 8192, 10000};
}

// Exact (sort-based, linearly interpolated) percentile over raw samples. This is
// independent of the telemetry histograms on purpose: bench output stays exact and
// works identically under -DIB_TELEMETRY=OFF.
inline double Percentile(std::vector<double> xs, double q) {
  if (xs.empty()) {
    return 0;
  }
  std::sort(xs.begin(), xs.end());
  double rank = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

// One machine-readable result row for scripts/bench.sh (schema BENCH_8): latency
// percentiles are in microseconds of simulated time; msgs_per_sec may be 0 for
// latency-only benches.
struct BenchResult {
  std::string name;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double msgs_per_sec = 0;
  double bytes_per_sec = 0;  // nonzero only for byte-throughput benches (fig7)
};

inline BenchResult MakeLatencyResult(const std::string& name,
                                     const std::vector<double>& latencies_us,
                                     double msgs_per_sec = 0) {
  BenchResult r;
  r.name = name;
  r.p50_us = Percentile(latencies_us, 0.50);
  r.p90_us = Percentile(latencies_us, 0.90);
  r.p99_us = Percentile(latencies_us, 0.99);
  r.msgs_per_sec = msgs_per_sec;
  return r;
}

// Appends `results` as JSON lines to the file named by $BENCH_JSON (no-op when the
// variable is unset). scripts/bench.sh assembles the lines into BENCH_8.json.
inline void EmitBenchJson(const std::vector<BenchResult>& results) {
  const char* path = std::getenv("BENCH_JSON");
  if (path == nullptr || results.empty()) {
    return;
  }
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    return;
  }
  for (const BenchResult& r : results) {
    std::fprintf(f,
                 "{\"name\": \"%s\", \"p50_us\": %.3f, \"p90_us\": %.3f, "
                 "\"p99_us\": %.3f, \"msgs_per_sec\": %.3f, \"bytes_per_sec\": %.3f}\n",
                 r.name.c_str(), r.p50_us, r.p90_us, r.p99_us, r.msgs_per_sec,
                 r.bytes_per_sec);
  }
  std::fclose(f);
}

}  // namespace bench
}  // namespace ibus

#endif  // BENCH_BENCH_UTIL_H_
