// Allocation accounting for the publish->deliver hot path. hotlint proves the
// path *reaches* no banned allocation sites; this bench measures what actually
// hits the heap per message in steady state, so scripts/bench_diff.py can gate
// allocation regressions the same way it gates latency ones.
//
// The instrumented global operator new/delete live in THIS bench binary only —
// no other target links this translation unit, so the library and the tests run
// on the stock allocator. The counter is a plain integer because the simulator
// is single-threaded by construction.
#include <cstdio>
#include <cstdlib>
#include <new>  // buslint: allow(raw-new-delete) -- header name, not an allocation site

#include "bench/bench_util.h"

namespace {

unsigned long long g_allocs = 0;
bool g_counting = false;

}  // namespace

// The replaceable global operator new/delete pair below IS the counting hook;
// the raw new/delete tokens are the functions' names, not allocation sites.
// GCC's -Wmismatched-new-delete pairs free() against the replaced operator new[]
// at call sites it inlines, even though both forms route through malloc/free —
// silence the false positive for the hook definitions only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {  // buslint: allow(raw-new-delete) -- counting-hook definition
  if (g_counting) {
    ++g_allocs;
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }  // buslint: allow(raw-new-delete) -- array form of the counting hook

void operator delete(void* p) noexcept { std::free(p); }    // buslint: allow(raw-new-delete) -- counting-hook pair
void operator delete[](void* p) noexcept { std::free(p); }  // buslint: allow(raw-new-delete) -- counting-hook pair
void operator delete(void* p, std::size_t) noexcept { std::free(p); }    // buslint: allow(raw-new-delete) -- sized form
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }  // buslint: allow(raw-new-delete) -- sized form

namespace ibus {
namespace bench {
namespace {

constexpr int kWarmupMessages = 200;
constexpr int kMeasuredMessages = 500;
constexpr size_t kPayloadBytes = 128;

void Run() {
  std::printf("=== Hot-path allocation accounting (publish -> deliver) ===\n");
  std::printf("topology: 1 publisher, 1 consumer, 2 hosts; batching OFF; "
              "%d warmup + %d measured messages of %zu bytes\n\n",
              kWarmupMessages, kMeasuredMessages, kPayloadBytes);

  Testbed tb = MakeTestbed(2, /*batching=*/false, 2);
  int delivered = 0;
  tb.clients[1]
      ->Subscribe("bench.hot", [&delivered](const Message&) { ++delivered; })
      .ok();
  tb.sim->RunFor(50 * kMillisecond);

  // Warm-up drives every amortized first-touch allocation (flow-map entries,
  // trie match buffers, reliability windows, reserved vectors) to steady state.
  Bytes payload = TimestampedPayload(tb.sim->Now(), kPayloadBytes);
  for (int i = 0; i < kWarmupMessages; ++i) {
    tb.publisher()->Publish("bench.hot", payload).ok();
    tb.sim->RunFor(5 * kMillisecond);
  }
  tb.sim->RunFor(1 * kSecond);

  const int delivered_before = delivered;
  g_allocs = 0;
  g_counting = true;
  for (int i = 0; i < kMeasuredMessages; ++i) {
    tb.publisher()->Publish("bench.hot", payload).ok();
    tb.sim->RunFor(5 * kMillisecond);
  }
  tb.sim->RunFor(1 * kSecond);
  g_counting = false;

  const int measured = delivered - delivered_before;
  const double per_msg = measured > 0
                             ? static_cast<double>(g_allocs) / static_cast<double>(measured)
                             : static_cast<double>(g_allocs);
  std::printf("%22s %12s %16s\n", "delivered msgs", "heap allocs", "allocs/msg");
  std::printf("%22d %12llu %16.3f\n\n", measured, g_allocs, per_msg);
  std::printf("(counts every global operator new in the process during the measured "
              "window:\nclient marshal, daemon dispatch, reliable delivery, sim "
              "transport, consumer upcall)\n");

  // Hand-emitted row: carries the extra allocs_per_msg key that EmitBenchJson's
  // fixed schema does not know about. bench_diff.py gates on it when both sides
  // of a comparison have it.
  if (const char* path = std::getenv("BENCH_JSON")) {
    if (std::FILE* f = std::fopen(path, "a")) {
      std::fprintf(f,
                   "{\"name\": \"hot_path_allocs/steady\", \"p50_us\": 0.000, "
                   "\"p90_us\": 0.000, \"p99_us\": 0.000, \"msgs_per_sec\": 0.000, "
                   "\"allocs_per_msg\": %.3f}\n",
                   per_msg);
      std::fclose(f);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  ibus::bench::Run();
  return 0;
}
