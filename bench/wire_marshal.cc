// Ablation A7b (google-benchmark, wall-clock): marshalling cost of self-describing
// objects — the price of P2 on the wire. Attribute names and kind tags travel with
// every instance; this measures encode/decode rates for realistic story objects.
#include <benchmark/benchmark.h>

#include "src/bus/message.h"
#include "src/types/codec.h"
#include "src/types/data_object.h"

namespace ibus {
namespace {

DataObjectPtr SampleStory(int body_words) {
  std::string body;
  for (int i = 0; i < body_words; ++i) {
    body += "word ";
  }
  auto source = MakeObject("source", {{"agency", Value("DJ")}, {"desk", Value("detroit")}});
  return MakeObject("dj_story",
                    {{"serial", Value(int64_t{123456})},
                     {"category", Value("equity")},
                     {"ticker", Value("gmc")},
                     {"headline", Value("GM announces record quarter")},
                     {"industries", Value(Value::List{Value("auto"), Value("mfg")})},
                     {"body", Value(body)},
                     {"origin", Value(source)}});
}

void BM_MarshalObject(benchmark::State& state) {
  auto story = SampleStory(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    Bytes b = MarshalObject(*story);
    bytes = b.size();
    benchmark::DoNotOptimize(b);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MarshalObject)->Arg(10)->Arg(100)->Arg(1000);

void BM_UnmarshalObject(benchmark::State& state) {
  auto story = SampleStory(static_cast<int>(state.range(0)));
  Bytes b = MarshalObject(*story);
  for (auto _ : state) {
    auto obj = UnmarshalObject(b);
    benchmark::DoNotOptimize(obj);
  }
  state.SetBytesProcessed(static_cast<int64_t>(b.size()) * state.iterations());
}
BENCHMARK(BM_UnmarshalObject)->Arg(10)->Arg(100)->Arg(1000);

void BM_MessageRoundTrip(benchmark::State& state) {
  auto story = SampleStory(100);
  Message m = Message::ForObject("news.equity.gmc", *story);
  for (auto _ : state) {
    Bytes b = m.Marshal();
    auto back = Message::Unmarshal(b);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_MessageRoundTrip);

}  // namespace
}  // namespace ibus

BENCHMARK_MAIN();
