// Ablation A5: RMI round-trip latency versus payload size, plus the one-time cost of
// publish/subscribe discovery (paper §3.3, Figure 2: discovery happens once; requests
// then flow over a point-to-point connection).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/rmi/client.h"
#include "src/rmi/server.h"

namespace ibus {
namespace bench {
namespace {

std::shared_ptr<DynamicService> EchoService() {
  auto svc = std::make_shared<DynamicService>("echo");
  OperationDef op;
  op.name = "echo";
  op.result_type = "bytes";
  op.params = {ParamDef{"data", "bytes"}};
  svc->AddOperation(op, [](const std::vector<Value>& args) -> Result<Value> {
    return args.empty() ? Value() : args[0];
  });
  return svc;
}

void Run() {
  std::printf("=== Ablation A5: RMI round-trip latency ===\n\n");
  // Seeded medium jitter so the percentile spread is real (see kBenchLanJitterUs).
  Testbed tb = MakeTestbed(2, /*batching=*/false, 2, kSunOsCpuUsPerFrame, kBenchLanJitterUs);
  RmiServerConfig server_cfg;
  server_cfg.service_time_us = 200;
  auto server = RmiServer::Create(tb.clients[1].get(), "svc.echo", EchoService(), server_cfg);
  tb.sim->RunFor(50 * kMillisecond);

  // Discovery + connect, timed once.
  SimTime t0 = tb.sim->Now();
  SimTime connected_at = 0;
  std::shared_ptr<RemoteService> remote;
  RmiClientConfig cfg;
  cfg.discovery_timeout_us = 20 * kMillisecond;
  RmiClient::Connect(tb.publisher(), "svc.echo", cfg, [&](auto r) {
    remote = r.take();
    connected_at = tb.sim->Now();
  });
  tb.sim->RunFor(5 * kSecond);
  std::printf("discovery + connect: %.3f ms (dominated by the discovery collection "
              "window of %.1f ms)\n\n",
              static_cast<double>(connected_at - t0) / 1000.0, 20.0);

  std::printf("%12s %20s\n", "arg bytes", "round trip (ms)");
  std::vector<BenchResult> results;
  for (size_t size : {size_t{16}, size_t{256}, size_t{1024}, size_t{4096}, size_t{10000}}) {
    std::vector<double> rtts_us;
    for (int i = 0; i < 30; ++i) {
      SimTime start = tb.sim->Now();
      bool done = false;
      remote->Call("echo", {Value(Bytes(size, 0x7E))}, [&](Result<Value> /*r*/) {
        done = true;
        rtts_us.push_back(static_cast<double>(tb.sim->Now() - start));
      });
      tb.sim->RunFor(2 * kSecond);
      if (!done) {
        std::printf("call lost!\n");
        return;
      }
    }
    std::vector<double> rtts_ms;
    for (double us : rtts_us) {
      rtts_ms.push_back(us / 1000.0);
    }
    std::printf("%12zu %20.3f\n", size, Summarize(rtts_ms).mean);
    results.push_back(MakeLatencyResult("rmi_latency/" + std::to_string(size), rtts_us));
  }
  // Cross-check: the client's own telemetry histogram saw the same population (the
  // bucketed p50 is an upper bound on the exact p50). Compiled out under
  // -DIB_TELEMETRY=OFF, where count() reads 0.
  if (remote->rtt_histogram().count() > 0) {
    std::printf("\ntelemetry rtt histogram: count=%llu p50<=%lldus p99<=%lldus\n",
                static_cast<unsigned long long>(remote->rtt_histogram().count()),
                static_cast<long long>(remote->rtt_histogram().p50()),
                static_cast<long long>(remote->rtt_histogram().p99()));
  }
  EmitBenchJson(results);
  std::printf("\nShape check: round trip grows with payload (request frames +"
              " serialization both ways)\nabove a fixed floor of propagation +"
              " service time.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  ibus::bench::Run();
  return 0;
}
