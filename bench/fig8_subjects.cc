// Figure 8 reproduction: effect of the number of subjects on throughput. "the
// publisher published on ten thousand different subjects instead of one, and the
// fourteen consumers subscribed to all ten thousand subjects. ... the number of
// subjects has an insignificant influence on the throughput." The subscription trie
// in every daemon is what makes dispatch insensitive to subject count.
#include <cstdio>

#include "bench/throughput_common.h"

namespace ibus {
namespace bench {
namespace {

std::vector<std::string> ManySubjects(int n) {
  std::vector<std::string> subjects;
  subjects.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    subjects.push_back("bench.s" + std::to_string(i));
  }
  return subjects;
}

void Run() {
  std::printf("=== Figure 8: Throughput - Effect of the Number of Subjects ===\n");
  std::printf("topology: 1 publisher cycling over N subjects, 14 consumers subscribed "
              "to all N, batching ON\n\n");
  std::printf("%10s %12s %14s %16s\n", "subjects", "msg bytes", "msgs/sec", "bytes/sec");
  std::vector<BenchResult> results;
  for (int n_subjects : {1, 100, 1000, 10000}) {
    std::vector<std::string> subjects = ManySubjects(n_subjects);
    for (size_t size : {size_t{512}, size_t{2048}}) {
      ThroughputResult r = MeasureThroughput(14, size, 1000, subjects);
      std::printf("%10d %12zu %14.1f %16.0f\n", n_subjects, size, r.msgs_per_sec,
                  r.bytes_per_sec);
      // Percentile columns carry the per-window delivery rates (msgs/s), not latency.
      results.push_back(MakeLatencyResult("fig8_subjects/" + std::to_string(n_subjects) +
                                              "x" + std::to_string(size),
                                          r.window_rates, r.msgs_per_sec));
    }
  }
  EmitBenchJson(results);
  std::printf("\n(subscription setup time is excluded, as in the paper: \"these requests"
              " are performed once at start-up time\")\n");
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  ibus::bench::Run();
  return 0;
}
