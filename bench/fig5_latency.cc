// Figure 5 reproduction: publish/subscribe latency versus message size.
// Topology per the paper's appendix: one publisher and fourteen consumers spread over
// fifteen hosts on a 10 Mbit/s Ethernet; batching OFF ("the batch parameter was
// turned off to avoid intentionally delaying the publications"); reliable delivery.
// Also reproduces the claim "latency is independent of the number of consumers".
#include <cstdio>

#include "bench/bench_util.h"

namespace ibus {
namespace bench {
namespace {

struct LatencyResult {
  Stats ms;
  std::vector<double> samples_us;
};

LatencyResult MeasureLatency(int n_consumers, size_t msg_size, int n_messages) {
  // Seeded medium jitter so the percentile spread is real (see kBenchLanJitterUs).
  Testbed tb = MakeTestbed(15, /*batching=*/false, 1 + n_consumers, kSunOsCpuUsPerFrame,
                           kBenchLanJitterUs);
  std::vector<double> latencies_ms;
  std::vector<double> latencies_us;
  for (int i = 1; i <= n_consumers; ++i) {
    tb.clients[static_cast<size_t>(i)]
        ->Subscribe("bench.latency",
                    [&, sim = tb.sim.get()](const Message& m) {
                      double us =
                          static_cast<double>(sim->Now() - DecodeTimestamp(m.payload));
                      latencies_us.push_back(us);
                      latencies_ms.push_back(us / 1000.0);
                    })
        .ok();
  }
  tb.sim->RunFor(50 * kMillisecond);
  for (int i = 0; i < n_messages; ++i) {
    tb.publisher()->Publish("bench.latency", TimestampedPayload(tb.sim->Now(), msg_size)).ok();
    // Space publications out so queueing never contaminates the latency measurement.
    tb.sim->RunFor(173 * kMillisecond);
  }
  tb.sim->RunFor(1 * kSecond);
  return LatencyResult{Summarize(latencies_ms), std::move(latencies_us)};
}

void Run() {
  std::printf("=== Figure 5: Latency of Publish/Subscribe Paradigm (millisec) ===\n");
  std::printf("topology: 1 publisher, 14 consumers, 15 hosts, 10 Mbit/s Ethernet, "
              "batching OFF\n\n");
  std::printf("%10s %14s %16s %14s\n", "msg bytes", "latency (ms)", "99%-CI +/- (ms)",
              "variance");
  std::vector<BenchResult> results;
  for (size_t size : FigureSizes()) {
    LatencyResult r = MeasureLatency(14, size, 30);
    std::printf("%10zu %14.3f %16.3f %14.5f\n", size, r.ms.mean, r.ms.ci99_half, r.ms.variance);
    results.push_back(MakeLatencyResult("fig5_latency/" + std::to_string(size), r.samples_us));
  }
  EmitBenchJson(results);

  std::printf("\n--- Claim: latency is independent of the number of consumers ---\n");
  std::printf("%12s %14s\n", "consumers", "latency (ms)");
  for (int consumers : {1, 2, 4, 8, 14}) {
    LatencyResult r = MeasureLatency(consumers, 1024, 30);
    std::printf("%12d %14.3f\n", consumers, r.ms.mean);
  }
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  ibus::bench::Run();
  return 0;
}
