// Figure 6 reproduction: throughput in messages/second versus message size, one
// publisher on one subject, fourteen consumers, batching ON. Also verifies the
// appendix claim that the publication rate is independent of the number of
// subscribers (cumulative throughput proportional to subscriber count).
#include <cstdio>

#include "bench/throughput_common.h"

namespace ibus {
namespace bench {
namespace {

void Run() {
  std::printf("=== Figure 6: Throughput of Publish/Subscribe Paradigm (Msgs/Sec) ===\n");
  std::printf("topology: 1 publisher, 1 subject, 14 consumers, batching ON\n\n");
  std::printf("%10s %14s %16s\n", "msg bytes", "msgs/sec", "variance");
  std::vector<BenchResult> results;
  for (size_t size : FigureSizes()) {
    int n = size <= 512 ? 3000 : (size <= 4096 ? 1200 : 600);
    ThroughputResult r = MeasureThroughput(14, size, n, {"bench.throughput"});
    std::printf("%10zu %14.1f %16.2f\n", size, r.msgs_per_sec, r.variance_msgs);
    // Percentile columns carry the per-window delivery rates (msgs/s), not latency.
    BenchResult b = MakeLatencyResult("fig6_throughput_msgs/" + std::to_string(size),
                                      r.window_rates, r.msgs_per_sec);
    results.push_back(b);
  }
  EmitBenchJson(results);

  std::printf("\n--- Claim: cumulative throughput proportional to #subscribers ---\n");
  std::printf("%12s %16s %22s\n", "subscribers", "per-sub msgs/s", "cumulative msgs/s");
  for (int subs : {1, 2, 4, 8, 14}) {
    ThroughputResult r = MeasureThroughput(subs, 1024, 1500, {"bench.throughput"});
    std::printf("%12d %16.1f %22.1f\n", subs, r.msgs_per_sec, r.cumulative_msgs_per_sec);
  }
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  ibus::bench::Run();
  return 0;
}
