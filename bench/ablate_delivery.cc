// Ablation A4: reliable versus guaranteed (certified) delivery. Guaranteed delivery
// pays a stable write before every send plus an acknowledgement per consumer (paper
// §3.1: "the message is logged to non-volatile storage before it is sent"). This
// bench measures the cost in both latency and sustained throughput, and the recovery
// behaviour across a publisher crash.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/bus/certified.h"
#include "src/journal/journal.h"
#include "src/sim/stable_store.h"

namespace ibus {
namespace bench {
namespace {

struct DeliveryResult {
  double latency_ms = 0;
  double msgs_per_sec = 0;
};

DeliveryResult MeasureReliable(size_t msg_size, int n) {
  Testbed tb = MakeTestbed(2, /*batching=*/false, 2);
  std::vector<double> lat;
  uint64_t received = 0;
  SimTime first = -1, last = 0;
  tb.clients[1]
      ->Subscribe("orders.new",
                  [&, sim = tb.sim.get()](const Message& m) {
                    lat.push_back(
                        static_cast<double>(sim->Now() - DecodeTimestamp(m.payload)) / 1000.0);
                    if (first < 0) {
                      first = sim->Now();
                    }
                    last = sim->Now();
                    received++;
                  })
      .ok();
  tb.sim->RunFor(53 * kMillisecond);
  for (int i = 0; i < n; ++i) {
    tb.publisher()->Publish("orders.new", TimestampedPayload(tb.sim->Now(), msg_size)).ok();
    tb.sim->RunFor(53 * kMillisecond);
  }
  tb.sim->RunFor(kSecond);
  DeliveryResult r;
  r.latency_ms = Summarize(lat).mean;
  double seconds = static_cast<double>(last - first) / kSecond;
  r.msgs_per_sec = seconds > 0 ? static_cast<double>(received - 1) / seconds : 0;
  return r;
}

DeliveryResult MeasureCertified(size_t msg_size, int n, SimTime stable_write_us) {
  Testbed tb = MakeTestbed(2, /*batching=*/false, 2);
  MemoryStableStore store(stable_write_us);
  journal::JournalConfig ledger_config;
  ledger_config.sim = tb.sim.get();  // write-through: one stable write per publish
  auto ledger = journal::Journal::Open(&store, ledger_config).take();
  auto pub = CertifiedPublisher::Create(tb.publisher(), ledger.get(), "bench-ledger").take();
  std::vector<double> lat;
  uint64_t received = 0;
  SimTime first = -1, last = 0;
  auto sub = CertifiedSubscriber::Create(
                 tb.clients[1].get(), "orders.new", "bench-consumer",
                 [&, sim = tb.sim.get()](const Message& m) {
                   lat.push_back(
                       static_cast<double>(sim->Now() - DecodeTimestamp(m.payload)) / 1000.0);
                   if (first < 0) {
                     first = sim->Now();
                   }
                   last = sim->Now();
                   received++;
                 })
                 .take();
  tb.sim->RunFor(53 * kMillisecond);
  for (int i = 0; i < n; ++i) {
    pub->Publish("orders.new", TimestampedPayload(tb.sim->Now(), msg_size)).ok();
    tb.sim->RunFor(53 * kMillisecond);
  }
  tb.sim->RunFor(2 * kSecond);
  DeliveryResult r;
  r.latency_ms = Summarize(lat).mean;
  double seconds = static_cast<double>(last - first) / kSecond;
  r.msgs_per_sec = seconds > 0 ? static_cast<double>(received - 1) / seconds : 0;
  return r;
}

void Run() {
  std::printf("=== Ablation A4: reliable vs guaranteed (certified) delivery ===\n\n");
  std::printf("%10s %12s %22s %24s\n", "msg bytes", "mode", "delivery latency (ms)",
              "stable write (us)");
  for (size_t size : {size_t{256}, size_t{2048}}) {
    DeliveryResult rel = MeasureReliable(size, 50);
    std::printf("%10zu %12s %22.3f %24s\n", size, "reliable", rel.latency_ms, "-");
    for (SimTime w : {SimTime{500}, SimTime{5000}, SimTime{20000}}) {
      DeliveryResult cert = MeasureCertified(size, 50, w);
      std::printf("%10zu %12s %22.3f %24lld\n", size, "certified", cert.latency_ms,
                  static_cast<long long>(w));
    }
  }
  std::printf("\nShape check: certified latency = reliable latency + the stable-write"
              " time; the\nacknowledgement adds wire traffic but not delivery latency.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  ibus::bench::Run();
  return 0;
}
