// Ablation A2 (google-benchmark, wall-clock): subject dispatch cost — the
// subscription trie versus a naive linear pattern scan versus Linda-style attribute
// qualification (paper §6: "subject-based addressing scales more easily, and has
// better performance, than attribute qualification").
#include <benchmark/benchmark.h>

#include "src/baseline/attribute_matcher.h"
#include "src/subject/subject.h"
#include "src/subject/trie.h"
#include "src/types/data_object.h"

namespace ibus {
namespace {

std::vector<std::string> MakeSubjects(int n) {
  std::vector<std::string> subjects;
  subjects.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    subjects.push_back("fab" + std::to_string(i % 10) + ".cc.station" + std::to_string(i) +
                       ".reading");
  }
  return subjects;
}

void BM_TrieMatch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<std::string> subjects = MakeSubjects(n);
  SubjectTrie trie;
  for (int i = 0; i < n; ++i) {
    trie.Insert(subjects[static_cast<size_t>(i)], static_cast<uint64_t>(i)).ok();
  }
  size_t i = 0;
  std::vector<uint64_t> hits;
  for (auto _ : state) {
    hits.clear();
    trie.Match(subjects[i++ % subjects.size()], &hits);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieMatch)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LinearMatch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<std::string> subjects = MakeSubjects(n);
  size_t i = 0;
  std::vector<uint64_t> hits;
  for (auto _ : state) {
    hits.clear();
    const std::string& subject = subjects[i++ % subjects.size()];
    for (size_t p = 0; p < subjects.size(); ++p) {
      if (SubjectMatches(subjects[p], subject)) {
        hits.push_back(p);
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearMatch)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AttributeQualification(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  AttributeMatcher matcher;
  for (int i = 0; i < n; ++i) {
    matcher.Insert(static_cast<uint64_t>(i),
                   AttributeQuery()
                       .Where("station", AttributeQuery::Op::kEq,
                              Value("station" + std::to_string(i)))
                       .Where("fab", AttributeQuery::Op::kEq,
                              Value("fab" + std::to_string(i % 10))));
  }
  auto obj = MakeObject("reading", {{"station", Value("station7")},
                                    {"fab", Value("fab7")},
                                    {"thickness", Value(8.1)}});
  for (auto _ : state) {
    auto hits = matcher.Match(*obj);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttributeQualification)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace ibus

BENCHMARK_MAIN();
