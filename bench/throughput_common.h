// Shared measurement for Figures 6, 7 and 8: sustained publish/subscribe throughput
// on the paper's testbed (1 publisher, 14 consumers, batching ON).
#ifndef BENCH_THROUGHPUT_COMMON_H_
#define BENCH_THROUGHPUT_COMMON_H_

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace ibus {
namespace bench {

struct ThroughputResult {
  double msgs_per_sec = 0;   // per subscriber (equal across subscribers)
  double bytes_per_sec = 0;  // payload bytes per subscriber
  double cumulative_msgs_per_sec = 0;  // across all subscribers
  double variance_msgs = 0;  // across per-window rates
  std::vector<double> window_rates;  // per-100ms delivery rates at consumer 0 (msgs/s)
};

// Publishes `n_messages` of `msg_size` bytes as fast as the bus accepts them, cycling
// over `subjects` (all of which every consumer subscribes to), and measures the
// steady-state delivery rate at the consumers.
inline ThroughputResult MeasureThroughput(int n_consumers, size_t msg_size, int n_messages,
                                          const std::vector<std::string>& subjects) {
  Testbed tb = MakeTestbed(15, /*batching=*/true, 1 + n_consumers);
  std::vector<uint64_t> received(static_cast<size_t>(n_consumers), 0);
  std::vector<SimTime> first_at(static_cast<size_t>(n_consumers), -1);
  std::vector<SimTime> last_at(static_cast<size_t>(n_consumers), 0);
  // Per-100ms-window delivery counts at consumer 0, for the variance the paper plots.
  std::vector<double> window_rates;
  uint64_t window_count = 0;
  SimTime window_start = 0;

  for (int i = 0; i < n_consumers; ++i) {
    size_t idx = static_cast<size_t>(i);
    for (const std::string& subject : subjects) {
      tb.clients[idx + 1]
          ->Subscribe(subject,
                      [&, idx, sim = tb.sim.get()](const Message&) {
                        if (first_at[idx] < 0) {
                          first_at[idx] = sim->Now();
                        }
                        last_at[idx] = sim->Now();
                        received[idx]++;
                        if (idx == 0) {
                          if (sim->Now() - window_start >= 100 * kMillisecond) {
                            if (window_start != 0) {
                              window_rates.push_back(static_cast<double>(window_count) /
                                                     0.1);
                            }
                            window_start = sim->Now();
                            window_count = 0;
                          }
                          window_count++;
                        }
                      })
          .ok();
    }
  }
  tb.sim->RunFor(100 * kMillisecond);

  Bytes payload(msg_size, 0x5A);
  for (int i = 0; i < n_messages; ++i) {
    tb.publisher()->Publish(subjects[static_cast<size_t>(i) % subjects.size()], payload).ok();
  }
  // Drain everything (generously).
  tb.sim->RunFor(600 * kSecond);

  ThroughputResult r;
  double per_sub_rates = 0;
  for (int i = 0; i < n_consumers; ++i) {
    size_t idx = static_cast<size_t>(i);
    double seconds =
        static_cast<double>(last_at[idx] - first_at[idx]) / static_cast<double>(kSecond);
    if (seconds <= 0 || received[idx] < 2) {
      continue;
    }
    per_sub_rates += static_cast<double>(received[idx] - 1) / seconds;
  }
  r.msgs_per_sec = per_sub_rates / n_consumers;
  r.bytes_per_sec = r.msgs_per_sec * static_cast<double>(msg_size);
  r.cumulative_msgs_per_sec = per_sub_rates;
  r.variance_msgs = Summarize(window_rates).variance;
  r.window_rates = std::move(window_rates);
  return r;
}

}  // namespace bench
}  // namespace ibus

#endif  // BENCH_THROUGHPUT_COMMON_H_
