// Figure 7 reproduction: throughput in bytes/second versus message size (same data
// collection as Figure 6, reported in bytes). The paper's shape: rising with message
// size, then saturating near the raw-UDP ceiling (~300 KB/s on their testbed) for
// messages >= 5000 bytes — "the device bandwidth becomes the limiting factor ...
// suggesting that the Information Bus represents a low overhead."
#include <cstdio>

#include "bench/throughput_common.h"

namespace ibus {
namespace bench {
namespace {

void Run() {
  std::printf("=== Figure 7: Throughput of Publish/Subscribe Paradigm (Bytes/Sec) ===\n");
  std::printf("topology: 1 publisher, 1 subject, 14 consumers, batching ON\n");
  std::printf("raw-UDP ceiling of the modelled testbed: ~300 KB/s\n\n");
  std::printf("%10s %16s %14s\n", "msg bytes", "bytes/sec", "KB/sec");
  std::vector<BenchResult> results;
  for (size_t size : FigureSizes()) {
    int n = size <= 512 ? 3000 : (size <= 4096 ? 1200 : 600);
    ThroughputResult r = MeasureThroughput(14, size, n, {"bench.throughput"});
    std::printf("%10zu %16.0f %14.1f\n", size, r.bytes_per_sec, r.bytes_per_sec / 1024.0);
    // Percentile columns carry the per-window delivery rates (msgs/s), not latency.
    BenchResult row = MakeLatencyResult("fig7_throughput_bytes/" + std::to_string(size),
                                        r.window_rates, r.msgs_per_sec);
    row.bytes_per_sec = r.bytes_per_sec;  // this figure's headline number
    results.push_back(row);
  }
  EmitBenchJson(results);
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  ibus::bench::Run();
  return 0;
}
