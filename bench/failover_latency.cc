// Service-availability ablation (R1): how long does a client-visible outage last when
// the primary of a fault-tolerant server pair crashes? Measures, in simulated time,
// the window between the primary's death and the first successful call served by the
// elected backup — as a function of the election's leader timeout.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/rmi/client.h"
#include "src/rmi/election.h"
#include "src/rmi/server.h"

namespace ibus {
namespace bench {
namespace {

std::shared_ptr<DynamicService> PingService() {
  auto svc = std::make_shared<DynamicService>("ping");
  OperationDef op;
  op.name = "ping";
  op.result_type = "string";
  svc->AddOperation(op, [](const std::vector<Value>&) -> Result<Value> {
    return Value(std::string("pong"));
  });
  return svc;
}

// Returns the outage window in ms, or a negative value on failure.
double MeasureFailover(SimTime leader_timeout_us) {
  Testbed tb = MakeTestbed(3, /*batching=*/false, 3);
  auto server1 = RmiServer::Create(tb.clients[0].get(), "svc.ft", PingService()).take();
  auto server2 = RmiServer::Create(tb.clients[1].get(), "svc.ft", PingService()).take();
  server1->set_answering(false);
  server2->set_answering(false);
  ElectionConfig ecfg;
  ecfg.leader_timeout_us = leader_timeout_us;
  auto elect1 = Election::Join(tb.clients[0].get(), "svc.ft", 100,
                               [s = server1.get()](bool lead) { s->set_answering(lead); },
                               ecfg)
                    .take();
  auto elect2 = Election::Join(tb.clients[1].get(), "svc.ft", 50,
                               [s = server2.get()](bool lead) { s->set_answering(lead); },
                               ecfg)
                    .take();
  tb.sim->RunFor(2 * kSecond);
  if (!elect1->is_leader()) {
    return -1;
  }

  // Kill the primary, then poll the subject until a call succeeds again.
  SimTime crash_at = tb.sim->Now();
  tb.net->SetHostUp(tb.hosts[0], false);

  RmiClientConfig ccfg;
  ccfg.discovery_timeout_us = 20 * kMillisecond;
  ccfg.call_timeout_us = 100 * kMillisecond;
  SimTime recovered_at = -1;
  while (tb.sim->Now() - crash_at < 30 * kSecond) {
    bool round_done = false;
    bool ok = false;
    RmiClient::Connect(tb.clients[2].get(), "svc.ft", ccfg,
                       [&](Result<std::shared_ptr<RemoteService>> r) {
                         if (!r.ok()) {
                           round_done = true;
                           return;
                         }
                         auto service = r.take();
                         service->Call("ping", {}, [&, service](Result<Value> v) {
                           ok = v.ok();
                           round_done = true;
                         });
                       });
    while (!round_done) {
      tb.sim->RunFor(10 * kMillisecond);
    }
    if (ok) {
      recovered_at = tb.sim->Now();
      break;
    }
    tb.sim->RunFor(20 * kMillisecond);
  }
  if (recovered_at < 0) {
    return -2;
  }
  return static_cast<double>(recovered_at - crash_at) / 1000.0;
}

void Run() {
  std::printf("=== Failover latency: fault-tolerant server pair (R1) ===\n");
  std::printf("primary crashes; backup is elected and answers on the same subject\n\n");
  std::printf("%24s %24s\n", "leader timeout (ms)", "client outage (ms)");
  for (SimTime timeout : {150 * kMillisecond, 350 * kMillisecond, 1000 * kMillisecond}) {
    double outage = MeasureFailover(timeout);
    if (outage < 0) {
      std::printf("%24lld %24s\n", static_cast<long long>(timeout / 1000), "FAILED");
    } else {
      std::printf("%24lld %24.1f\n", static_cast<long long>(timeout / 1000), outage);
    }
  }
  std::printf("\nShape check: the outage tracks the election's leader timeout (detection"
              " dominates;\nre-election and re-discovery add tens of milliseconds).\n");
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  ibus::bench::Run();
  return 0;
}
