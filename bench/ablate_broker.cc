// Ablation A3: decentralized Ethernet broadcast (the Information Bus) versus a
// centralized broker (the Zephyr-style "subscription multicasting" of paper §6).
// The broadcast bus pays one frame per message regardless of fan-out; the broker pays
// one inbound unicast plus one outbound unicast per subscriber, all through one host.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/central_broker.h"

namespace ibus {
namespace bench {
namespace {

double BusCumulativeMsgsPerSec(int n_consumers, size_t msg_size, int n) {
  Testbed tb = MakeTestbed(16, /*batching=*/false, 1 + n_consumers);
  std::vector<uint64_t> received(static_cast<size_t>(n_consumers), 0);
  SimTime first = -1, last = 0;
  for (int i = 0; i < n_consumers; ++i) {
    size_t idx = static_cast<size_t>(i);
    tb.clients[idx + 1]
        ->Subscribe("bench.fanout",
                    [&, idx, sim = tb.sim.get()](const Message&) {
                      if (first < 0) {
                        first = sim->Now();
                      }
                      last = sim->Now();
                      received[idx]++;
                    })
        .ok();
  }
  tb.sim->RunFor(50 * kMillisecond);
  Bytes payload(msg_size, 1);
  for (int i = 0; i < n; ++i) {
    tb.publisher()->Publish("bench.fanout", payload).ok();
  }
  tb.sim->RunFor(600 * kSecond);
  uint64_t total = 0;
  for (uint64_t r : received) {
    total += r;
  }
  double seconds = static_cast<double>(last - first) / kSecond;
  return seconds > 0 ? static_cast<double>(total) / seconds : 0;
}

double BrokerCumulativeMsgsPerSec(int n_consumers, size_t msg_size, int n) {
  Simulator sim;
  Network net(&sim);
  SegmentConfig seg;
  seg.host_cpu_us_per_frame = kSunOsCpuUsPerFrame;
  SegmentId lan = net.AddSegment(seg);
  HostId broker_host = net.AddHost("broker", lan);
  auto broker = CentralBroker::Start(&net, broker_host, 7000).take();

  HostId pub_host = net.AddHost("pub", lan);
  std::vector<std::unique_ptr<BrokerClient>> subs;
  uint64_t total = 0;
  SimTime first = -1, last = 0;
  for (int i = 0; i < n_consumers; ++i) {
    HostId h = net.AddHost("sub" + std::to_string(i), lan);
    auto c = BrokerClient::Connect(&net, h, broker_host, 7000).take();
    c->SetHandler([&](const std::string&, const Bytes&) {
      if (first < 0) {
        first = sim.Now();
      }
      last = sim.Now();
      total++;
    });
    c->Subscribe("bench.fanout").ok();
    subs.push_back(std::move(c));
  }
  auto pub = BrokerClient::Connect(&net, pub_host, broker_host, 7000).take();
  sim.RunFor(50 * kMillisecond);
  Bytes payload(msg_size, 1);
  for (int i = 0; i < n; ++i) {
    pub->Publish("bench.fanout", payload).ok();
  }
  sim.RunFor(600 * kSecond);
  double seconds = static_cast<double>(last - first) / kSecond;
  return seconds > 0 ? static_cast<double>(total) / seconds : 0;
}

void Run() {
  std::printf("=== Ablation A3: broadcast bus vs centralized broker (Zephyr-style) ===\n\n");
  std::printf("%12s %22s %22s %10s\n", "consumers", "bus cumulative msg/s",
              "broker cumulative msg/s", "ratio");
  for (int consumers : {1, 2, 4, 8, 14}) {
    double bus = BusCumulativeMsgsPerSec(consumers, 512, 400);
    double broker = BrokerCumulativeMsgsPerSec(consumers, 512, 400);
    std::printf("%12d %22.1f %22.1f %9.2fx\n", consumers, bus, broker,
                broker > 0 ? bus / broker : 0.0);
  }
  std::printf("\nShape check: the bus's cumulative rate grows ~linearly with consumers"
              " (one broadcast\nframe serves everyone); the broker's flattens (every copy"
              " transits the broker host).\n");
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  ibus::bench::Run();
  return 0;
}
