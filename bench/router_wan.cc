// Ablation A6: information-router overhead (paper §3.1). Two Ethernets joined by a
// router pair over a T1-class WAN link. Measures cross-LAN latency versus local
// latency and shows that only remotely subscribed subjects consume WAN bandwidth.
// A wire tap rides along for the whole measured phase: the per-segment bandwidth
// breakdown (goodput / envelope / frame overhead / retransmit / internal) lands in
// the $BENCH_BANDWIDTH_JSON file, which scripts/bench.sh embeds as the
// "router_wan" section of BENCH_4.json.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/capture/bandwidth.h"
#include "src/capture/capture.h"
#include "src/capture/reassembly.h"
#include "src/router/router.h"

namespace ibus {
namespace bench {
namespace {

void Run() {
  std::printf("=== Ablation A6: WAN bridging via information routers ===\n\n");
  Simulator sim;
  Network net(&sim);
  SegmentConfig seg;
  seg.host_cpu_us_per_frame = kSunOsCpuUsPerFrame;
  SegmentId lan_a = net.AddSegment(seg);
  SegmentId lan_b = net.AddSegment(seg);
  // Seeded medium jitter on both LANs so the percentile spread is real (see
  // kBenchLanJitterUs); the WAN link itself stays quiet.
  FaultPlan lan_jitter;
  lan_jitter.jitter_us = kBenchLanJitterUs;
  net.SetFaultPlan(lan_a, lan_jitter);
  net.SetFaultPlan(lan_b, lan_jitter);
  std::vector<HostId> hosts{net.AddHost("a0", lan_a), net.AddHost("a1", lan_a),
                            net.AddHost("b0", lan_b), net.AddHost("b1", lan_b)};
  BusConfig cfg;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  for (HostId h : hosts) {
    daemons.push_back(BusDaemon::Start(&net, h, cfg).take());
  }
  auto ra_bus = BusClient::Connect(&net, hosts[0], "_router:A", cfg).take();
  auto rb_bus = BusClient::Connect(&net, hosts[2], "_router:B", cfg).take();
  auto ra = InfoRouter::Listen(ra_bus.get(), "_router:A", 8700).take();
  sim.RunFor(100 * kMillisecond);
  auto rb = InfoRouter::Connect(rb_bus.get(), "_router:B", hosts[0], 8700).take();
  sim.RunFor(500 * kMillisecond);

  auto pub = BusClient::Connect(&net, hosts[1], "pub-a", cfg).take();
  auto local_sub = BusClient::Connect(&net, hosts[1], "sub-a", cfg).take();
  auto remote_sub = BusClient::Connect(&net, hosts[3], "sub-b", cfg).take();

  std::vector<double> local_ms;
  std::vector<double> remote_ms;
  local_sub
      ->Subscribe("quotes.gmc",
                  [&](const Message& m) {
                    local_ms.push_back(
                        static_cast<double>(sim.Now() - DecodeTimestamp(m.payload)) / 1000.0);
                  })
      .ok();
  remote_sub
      ->Subscribe("quotes.gmc",
                  [&](const Message& m) {
                    remote_ms.push_back(
                        static_cast<double>(sim.Now() - DecodeTimestamp(m.payload)) / 1000.0);
                  })
      .ok();
  sim.RunFor(500 * kMillisecond);

  // Tap the steady-state phase: everything from the first measured publish to the
  // end of the selectivity check feeds the bandwidth accountant.
  capture::CaptureBuffer tap;
  net.AttachTap(&tap);

  std::vector<BenchResult> results;
  auto to_us = [](const std::vector<double>& ms) {
    std::vector<double> us;
    us.reserve(ms.size());
    for (double v : ms) {
      us.push_back(v * 1000.0);
    }
    return us;
  };
  for (size_t size : {size_t{256}, size_t{1024}, size_t{4096}}) {
    local_ms.clear();
    remote_ms.clear();
    for (int i = 0; i < 30; ++i) {
      pub->Publish("quotes.gmc", TimestampedPayload(sim.Now(), size)).ok();
      sim.RunFor(173 * kMillisecond);
    }
    sim.RunFor(kSecond);
    std::printf("%6zu B: local LAN %8.3f ms | cross-WAN %8.3f ms | router overhead "
                "%8.3f ms\n",
                size, Summarize(local_ms).mean, Summarize(remote_ms).mean,
                Summarize(remote_ms).mean - Summarize(local_ms).mean);
    results.push_back(
        MakeLatencyResult("router_wan_local/" + std::to_string(size), to_us(local_ms)));
    results.push_back(
        MakeLatencyResult("router_wan_cross/" + std::to_string(size), to_us(remote_ms)));
  }

  // Selectivity: unsubscribed traffic never crosses.
  uint64_t forwarded_before = ra->stats().forwarded;
  for (int i = 0; i < 50; ++i) {
    pub->Publish("telemetry.local.t" + std::to_string(i), Bytes(256, 0)).ok();
  }
  sim.RunFor(5 * kSecond);
  std::printf("\n50 messages on locally-only subjects -> %llu crossed the WAN "
              "(router selectivity)\n",
              static_cast<unsigned long long>(ra->stats().forwarded - forwarded_before));

  net.DetachTap(&tap);
  capture::ReassemblyReport reassembly = capture::Reassemble(tap.frames());
  capture::BandwidthReport bw = capture::AccountBandwidth(tap.frames(), reassembly);
  std::printf("\n%s", capture::RenderBandwidthText(bw).c_str());

  EmitBenchJson(results);
  if (const char* path = std::getenv("BENCH_BANDWIDTH_JSON"); path != nullptr) {
    if (std::FILE* f = std::fopen(path, "w"); f != nullptr) {
      std::fprintf(f, "%s\n", capture::BandwidthJson(bw).c_str());
      std::fclose(f);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  ibus::bench::Run();
  return 0;
}
