// Telemetry self-overhead accounting: runs the canonical busstat WAN scenario
// (src/telemetry/busstat_demo.h) at three trace-sampling settings — trace
// everything (period 1), the default 1/64 sample, and tracing off — and reports
// the stats plane's self-measured overhead ratio at each: the fraction of all
// daemon-published bytes injected by the observability plane itself (trace spans,
// busstat time-series records, health beacons). The ratio comes from the fleet's
// own telemetry.self.bytes / bus.publish_bytes counters as merged by the
// StatsAggregator, so the bench measures exactly what operators see in busstat.
//
// The acceptance budget is enforced here, not just diffed: at the default 1/64
// sampling the plane must cost < 5% of published bytes, or the bench fails.
// scripts/bench_diff.py additionally gates overhead_ratio growth between runs.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/telemetry/busstat_demo.h"

namespace ibus {
namespace bench {
namespace {

constexpr double kOverheadBudget = 0.05;  // at the default 1/64 sampling

struct OverheadRow {
  std::string name;
  uint32_t sample_period;
  telemetry::BusStatScenario run;
};

int Run() {
  std::printf("=== Telemetry self-overhead (busstat WAN scenario, seed 42) ===\n");
  std::printf("topology: 2 LANs x 2 hosts + router pair; 300 x 1KB publishes; "
              "6 busstat reporters at 1s cadence; 10%% loss + 300us jitter\n\n");

  std::vector<OverheadRow> rows;
  for (auto [label, period] : {std::pair<const char*, uint32_t>{"sample_1", 1},
                               {"sample_64", 64},
                               {"off", 0}}) {
    telemetry::BusStatScenarioOptions options;
    options.sample_period = period;
    telemetry::BusStatScenario run = telemetry::RunBusstatWanScenario(42, options);
    if (!run.trace.empty() && run.trace.front().rfind("error:", 0) == 0) {
      std::fprintf(stderr, "telemetry_overhead: scenario failed at %s: %s\n", label,
                   run.trace.front().c_str());
      return 1;
    }
    rows.push_back({std::string("telemetry_overhead/") + label, period, std::move(run)});
  }

  std::printf("%26s %10s %14s %12s %10s %8s\n", "series", "delivered", "publish_bytes",
              "self_bytes", "self_msgs", "overhead");
  for (const OverheadRow& r : rows) {
    std::printf("%26s %10llu %14llu %12llu %10llu %7.3f%%\n", r.name.c_str(),
                static_cast<unsigned long long>(r.run.delivered),
                static_cast<unsigned long long>(r.run.publish_bytes),
                static_cast<unsigned long long>(r.run.self_bytes),
                static_cast<unsigned long long>(r.run.self_msgs),
                r.run.overhead_ratio * 100.0);
  }
  std::printf("\n(overhead = fleet telemetry.self.bytes / bus.publish_bytes, merged "
              "by the StatsAggregator;\nthe busstat time-series records count against "
              "their own budget)\n");

  // Hand-emitted rows: carry the overhead_ratio key that EmitBenchJson's fixed
  // schema does not know about. bench_diff.py gates on it when both sides of a
  // comparison have it, and reports it as a new series against older baselines.
  if (const char* path = std::getenv("BENCH_JSON")) {
    if (std::FILE* f = std::fopen(path, "a")) {
      for (const OverheadRow& r : rows) {
        std::fprintf(f,
                     "{\"name\": \"%s\", \"p50_us\": 0.000, \"p90_us\": 0.000, "
                     "\"p99_us\": 0.000, \"msgs_per_sec\": 0.000, "
                     "\"overhead_ratio\": %.6f, \"self_bytes\": %llu, "
                     "\"publish_bytes\": %llu}\n",
                     r.name.c_str(), r.run.overhead_ratio,
                     static_cast<unsigned long long>(r.run.self_bytes),
                     static_cast<unsigned long long>(r.run.publish_bytes));
      }
      std::fclose(f);
    }
  }

  for (const OverheadRow& r : rows) {
    if (r.sample_period == 64 && r.run.overhead_ratio >= kOverheadBudget) {
      std::fprintf(stderr,
                   "telemetry_overhead: FAIL — overhead %.3f%% at 1/64 sampling "
                   "exceeds the %.0f%% budget\n",
                   r.run.overhead_ratio * 100.0, kOverheadBudget * 100.0);
      return 1;
    }
  }
  std::printf("\nbudget: OK — %.3f%% at 1/64 sampling (< %.0f%%)\n",
              rows[1].run.overhead_ratio * 100.0, kOverheadBudget * 100.0);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() { return ibus::bench::Run(); }
