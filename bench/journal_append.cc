// Bench: write-ahead ledger append cost — group commit versus write-through.
// Certified publish pays one journal append before every send (paper §3.1: "the
// message is logged to non-volatile storage before it is sent"), so the flush
// policy sets the floor under guaranteed-delivery latency. A paced producer appends
// fixed-size records; we report the append→durable commit latency percentiles, the
// sustained append rate, and the device-block amplification (blocks per append)
// that group commit buys back.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/journal/journal.h"
#include "src/sim/stable_store.h"

namespace ibus {
namespace bench {
namespace {

struct AppendRun {
  std::vector<double> commit_lat_us;
  double msgs_per_sec = 0;
  uint64_t appends = 0;
  uint64_t flushes = 0;
};

AppendRun Measure(bool group_commit, int n, size_t payload_bytes, SimTime spacing_us) {
  Simulator sim;
  MemoryStableStore store;  // default 500us device write latency
  journal::JournalConfig cfg;
  cfg.sim = &sim;
  if (group_commit) {
    // Product config: batch up to flush_max_bytes, never hold a record past 500us.
    cfg.flush_deadline_us = 500;
  }
  auto journal = journal::Journal::Open(&store, cfg).take();
  AppendRun run;
  SimTime first = -1, last = 0;
  Bytes payload(payload_bytes, 0x5A);
  for (int i = 0; i < n; ++i) {
    SimTime t0 = sim.Now();
    auto lsn = journal->Append(payload);
    if (!lsn.ok()) {
      break;
    }
    journal->WhenDurable(*lsn, [&run, &sim, &first, &last, t0] {
      run.commit_lat_us.push_back(static_cast<double>(sim.Now() - t0));
      if (first < 0) {
        first = sim.Now();
      }
      last = sim.Now();
    });
    sim.RunFor(spacing_us);
  }
  sim.RunFor(50 * kMillisecond);  // drain the final deadline flush + write latency
  run.appends = journal->stats().appends;
  run.flushes = journal->stats().flushes;
  double seconds = static_cast<double>(last - first) / kSecond;
  run.msgs_per_sec =
      seconds > 0 ? static_cast<double>(run.commit_lat_us.size() - 1) / seconds : 0;
  return run;
}

void Run() {
  constexpr int kAppends = 1000;
  constexpr size_t kPayload = 256;
  constexpr SimTime kSpacing = 50;  // a busy certified publisher: 20k appends/sec
  std::printf("=== Journal append: group commit vs write-through ===\n\n");
  std::printf("%14s %10s %10s %10s %12s %14s\n", "mode", "p50 (us)", "p90 (us)",
              "p99 (us)", "appends/sec", "blocks/append");
  std::vector<BenchResult> rows;
  for (bool group_commit : {true, false}) {
    AppendRun r = Measure(group_commit, kAppends, kPayload, kSpacing);
    BenchResult row = MakeLatencyResult(
        group_commit ? "journal_append_throughput" : "journal_append_write_through",
        r.commit_lat_us, r.msgs_per_sec);
    std::printf("%14s %10.1f %10.1f %10.1f %12.0f %14.3f\n",
                group_commit ? "group-commit" : "write-through", row.p50_us, row.p90_us,
                row.p99_us, row.msgs_per_sec,
                r.appends > 0 ? static_cast<double>(r.flushes) / static_cast<double>(r.appends)
                              : 0.0);
    rows.push_back(row);
  }
  std::printf("\nShape check: write-through commits each append in one device write"
              " latency;\ngroup commit trades bounded extra latency (the flush deadline)"
              " for an order of\nmagnitude fewer device blocks.\n");
  EmitBenchJson(rows);
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  ibus::bench::Run();
  return 0;
}
