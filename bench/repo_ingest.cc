// Ablation A7a: Object Repository capture throughput — stories per (simulated)
// second streamed off the bus into relational tables, including the metadata-driven
// decomposition of nested lists; plus direct mapper store/load/query rates measured
// in wall-clock terms.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/adapters/feed_sim.h"
#include "src/adapters/news_adapter.h"
#include "src/repo/repository.h"

namespace ibus {
namespace bench {
namespace {

void RunBusCapture() {
  Testbed tb = MakeTestbed(2, /*batching=*/true, 2);
  TypeRegistry registry;
  Database db;
  Repository repo(&registry, &db);
  NewsAdapter::RegisterStoryTypes(&registry).ok();
  auto capture = CaptureServer::Create(tb.clients[1].get(), &repo, {"news.>"}).take();
  NewsAdapter adapter(tb.publisher(), &registry, NewsVendor::kDowJones);
  tb.sim->RunFor(50 * kMillisecond);

  DowJonesFeed feed(99);
  constexpr int kStories = 500;
  SimTime start = tb.sim->Now();
  for (int i = 0; i < kStories; ++i) {
    adapter.Ingest(feed.NextRaw()).ok();
  }
  // Run until the capture count stops moving; that instant bounds the ingest time.
  uint64_t last_count = 0;
  SimTime done_at = start;
  while (true) {
    tb.sim->RunFor(kSecond);
    if (capture->captured() == last_count) {
      break;
    }
    last_count = capture->captured();
    done_at = tb.sim->Now();
  }
  double seconds = static_cast<double>(done_at - start) / kSecond;
  std::printf("bus capture: %llu stories stored (of %d published) in %.1f sim-seconds "
              "= %.1f stories/sec (wire-limited)\n",
              static_cast<unsigned long long>(capture->captured()), kStories, seconds,
              seconds > 0 ? static_cast<double>(capture->captured()) / seconds : 0.0);
}

void RunDirectMapper() {
  TypeRegistry registry;
  Database db;
  Repository repo(&registry, &db);
  NewsAdapter::RegisterStoryTypes(&registry).ok();
  StoryGenerator gen(7);
  constexpr int kObjects = 20000;
  std::vector<std::string> ids;
  ids.reserve(kObjects);

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kObjects; ++i) {
    FeedStory fs = gen.Next();
    auto story = registry.NewInstance("story").take();
    story->Set("serial", Value(static_cast<int64_t>(fs.serial))).ok();
    story->Set("category", Value(fs.category)).ok();
    story->Set("ticker", Value(fs.ticker)).ok();
    story->Set("headline", Value(fs.headline)).ok();
    Value::List inds;
    for (const std::string& ind : fs.industries) {
      inds.push_back(Value(ind));
    }
    story->Set("industries", Value(std::move(inds))).ok();
    story->Set("body", Value(fs.body)).ok();
    ids.push_back(repo.Store(*story).take());
  }
  auto t1 = std::chrono::steady_clock::now();
  double store_us =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
      static_cast<double>(kObjects);

  for (int i = 0; i < 2000; ++i) {
    repo.Load("story", ids[static_cast<size_t>(i * 7) % ids.size()]).ok();
  }
  auto t2 = std::chrono::steady_clock::now();
  double load_us =
      std::chrono::duration_cast<std::chrono::microseconds>(t2 - t1).count() / 2000.0;

  RepoQuery q;
  q.type_name = "story";
  q.predicate.And("ticker", Predicate::Op::kEq, Value("gmc"));
  size_t hits = 0;
  for (int i = 0; i < 20; ++i) {
    hits = repo.Query(q)->size();
  }
  auto t3 = std::chrono::steady_clock::now();
  double query_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(t3 - t2).count() / 20.0 / 1000.0;

  std::printf("direct mapper (wall clock): store %.1f us/object, load %.1f us/object, "
              "scan-query over %d objects %.2f ms (%zu hits)\n",
              store_us, load_us, kObjects, query_ms, hits);
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  std::printf("=== Ablation A7a: Object Repository ingest ===\n\n");
  ibus::bench::RunBusCapture();
  ibus::bench::RunDirectMapper();
  return 0;
}
