// Ablation A1: the paper's "batch parameter". "The Information Bus has a batch
// parameter that increases throughput by delaying small messages, and gathering them
// together." This bench quantifies the throughput gain for small messages and the
// latency cost the batch delay introduces.
#include <cstdio>

#include "bench/throughput_common.h"

namespace ibus {
namespace bench {
namespace {

double MeasureLatencyMs(bool batching, size_t msg_size) {
  Testbed tb = MakeTestbed(15, batching, 15);
  std::vector<double> latencies;
  for (int i = 1; i < 15; ++i) {
    tb.clients[static_cast<size_t>(i)]
        ->Subscribe("bench.ab",
                    [&, sim = tb.sim.get()](const Message& m) {
                      latencies.push_back(
                          static_cast<double>(sim->Now() - DecodeTimestamp(m.payload)) / 1000.0);
                    })
        .ok();
  }
  tb.sim->RunFor(50 * kMillisecond);
  for (int i = 0; i < 20; ++i) {
    tb.publisher()->Publish("bench.ab", TimestampedPayload(tb.sim->Now(), msg_size)).ok();
    tb.sim->RunFor(173 * kMillisecond);
  }
  tb.sim->RunFor(kSecond);
  return Summarize(latencies).mean;
}

double MeasureMsgsPerSec(bool batching, size_t msg_size, int n) {
  // Reuse the figure harness but force the batching flag via a local testbed.
  Testbed tb = MakeTestbed(15, batching, 15);
  uint64_t received = 0;
  SimTime first = -1;
  SimTime last = 0;
  for (int i = 1; i < 15; ++i) {
    tb.clients[static_cast<size_t>(i)]
        ->Subscribe("bench.ab",
                    [&, sim = tb.sim.get(), idx = i](const Message&) {
                      if (idx != 1) {
                        return;  // measure one representative consumer
                      }
                      if (first < 0) {
                        first = sim->Now();
                      }
                      last = sim->Now();
                      received++;
                    })
        .ok();
  }
  tb.sim->RunFor(50 * kMillisecond);
  Bytes payload(msg_size, 0x11);
  for (int i = 0; i < n; ++i) {
    tb.publisher()->Publish("bench.ab", payload).ok();
  }
  tb.sim->RunFor(600 * kSecond);
  double seconds = static_cast<double>(last - first) / kSecond;
  return seconds > 0 ? static_cast<double>(received - 1) / seconds : 0;
}

void Run() {
  std::printf("=== Ablation A1: the batch parameter ===\n\n");
  std::printf("%10s %18s %18s %10s\n", "msg bytes", "msgs/s (batch)", "msgs/s (no batch)",
              "speedup");
  for (size_t size : {size_t{64}, size_t{256}, size_t{1024}, size_t{4096}}) {
    double with = MeasureMsgsPerSec(true, size, 2000);
    double without = MeasureMsgsPerSec(false, size, 2000);
    std::printf("%10zu %18.1f %18.1f %9.2fx\n", size, with, without,
                without > 0 ? with / without : 0.0);
  }
  std::printf("\n%10s %20s %20s\n", "msg bytes", "latency ms (batch)",
              "latency ms (no batch)");
  for (size_t size : {size_t{64}, size_t{1024}}) {
    std::printf("%10zu %20.3f %20.3f\n", size, MeasureLatencyMs(true, size),
                MeasureLatencyMs(false, size));
  }
  std::printf("\nShape check: batching multiplies small-message throughput (many messages"
              " per frame)\nat the cost of up to the batch delay in latency; large messages"
              " are unaffected.\n");
}

}  // namespace
}  // namespace bench
}  // namespace ibus

int main() {
  ibus::bench::Run();
  return 0;
}
