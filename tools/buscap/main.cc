// buscap: wire-level capture analysis for the simulated bus — the tcpdump/tshark
// companion to busmon's live console. It either replays the canonical certified-WAN
// demo scenario with a tap attached (--demo) or loads a capture file (--in), then
// renders deterministic reports: a text report with per-frame dissections, reliable
// -stream reassembly (retransmits attributed to the drops that caused them), and the
// per-segment bandwidth breakdown; a JSONL stream for machines; a pcap export for
// Wireshark; or just the capture hash for replay comparison.
//
//   buscap --demo --report                 # capture the demo run, full text report
//   buscap --demo --seed 7 --out run.ibcp  # save the raw capture file
//   buscap --in run.ibcp --jsonl           # machine-readable report
//   buscap --demo --filter 'orders.>' --report   # application-traffic view
//   buscap --demo --pcap run.pcap          # LINKTYPE_USER0 pcap with sim metadata
//   buscap --demo --hash                   # one line: records + capture hash
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/capture/capture.h"
#include "src/capture/demo.h"
#include "src/capture/pcap.h"
#include "src/capture/report.h"

using namespace ibus;  // NOLINT: tool brevity

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--demo [--seed N] | --in FILE) [outputs...]\n"
      "source:\n"
      "  --demo            run the certified-WAN demo scenario with a tap attached\n"
      "  --seed N          demo RNG seed (default 42)\n"
      "  --in FILE         load a capture file written with --out\n"
      "  --filter PAT      keep only frames carrying a subject matching PAT\n"
      "outputs (default --report):\n"
      "  --report          text report: frames, reassembly, bandwidth\n"
      "  --trees           include full protocol trees in the text report\n"
      "  --max-frames N    cap per-frame lines in the text report\n"
      "  --jsonl           JSONL report (records + reassembly + bandwidth + hash)\n"
      "  --out FILE        write the capture file\n"
      "  --pcap FILE       export pcap (LINKTYPE_USER0, sim-metadata pseudo-header)\n"
      "  --hash            print 'records=N hash=H' only\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false, report = false, jsonl = false, hash_only = false;
  uint64_t seed = 42;
  std::string in_path, out_path, pcap_path, filter;
  capture::ReportOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--in") == 0 && i + 1 < argc) {
      in_path = argv[++i];
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      filter = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0) {
      report = true;
    } else if (std::strcmp(argv[i], "--trees") == 0) {
      opts.with_trees = true;
    } else if (std::strcmp(argv[i], "--max-frames") == 0 && i + 1 < argc) {
      opts.max_frames = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--jsonl") == 0) {
      jsonl = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--pcap") == 0 && i + 1 < argc) {
      pcap_path = argv[++i];
    } else if (std::strcmp(argv[i], "--hash") == 0) {
      hash_only = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (demo == !in_path.empty()) {
    std::fprintf(stderr, "buscap: pick exactly one source (--demo or --in FILE)\n");
    return Usage(argv[0]);
  }

  capture::CaptureBuffer buffer;
  if (!filter.empty()) {
    Status s = buffer.SetFilter(filter);
    if (!s.ok()) {
      std::fprintf(stderr, "buscap: bad --filter: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  std::vector<CapturedFrame> frames;
  if (demo) {
    std::vector<std::string> trace =
        capture::RunCertifiedWanCaptureScenario(seed, &buffer);
    if (!trace.empty() && trace.front().rfind("error:", 0) == 0) {
      std::fprintf(stderr, "buscap: demo scenario failed: %s\n",
                   trace.front().c_str());
      return 1;
    }
    frames = buffer.frames();
  } else {
    auto loaded = capture::ReadCaptureFile(in_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "buscap: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    if (filter.empty()) {
      frames = loaded.take();
    } else {
      // Re-run the loaded records through the filtering buffer.
      for (const CapturedFrame& f : *loaded) {
        buffer.OnFrame(f);
      }
      frames = buffer.frames();
    }
  }

  if (!out_path.empty()) {
    Status s = capture::WriteCaptureFile(out_path, frames);
    if (!s.ok()) {
      std::fprintf(stderr, "buscap: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "buscap: wrote %zu records to %s\n", frames.size(),
                 out_path.c_str());
  }
  if (!pcap_path.empty()) {
    Status s = capture::WritePcapFile(pcap_path, frames);
    if (!s.ok()) {
      std::fprintf(stderr, "buscap: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "buscap: wrote pcap with %zu packets to %s\n",
                 frames.size(), pcap_path.c_str());
  }
  if (hash_only) {
    std::printf("records=%zu hash=%llu\n", frames.size(),
                static_cast<unsigned long long>(
                    capture::CaptureBuffer::CaptureHash(frames)));
  }
  if (jsonl) {
    std::fputs(capture::JsonlReport(frames).c_str(), stdout);
  }
  const bool did_something =
      !out_path.empty() || !pcap_path.empty() || hash_only || jsonl;
  if (report || !did_something) {
    std::fputs(capture::TextReport(frames, opts).c_str(), stdout);
  }
  return 0;
}
