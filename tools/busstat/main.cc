// busstat: fleet stats console for the scale-ready telemetry plane. Replays the
// canonical busstat WAN scenario (two LANs joined by an information-router pair,
// plain pub/sub workload, trace sampling on, a BusStatReporter beside every daemon
// and router) and renders the StatsAggregator's merged fleet view: summed
// counters, merged log-bucket quantiles, top-k heavy-hitter tables, and the
// telemetry plane's self-measured overhead ratio. Every output is bit-identical
// across replays of one seed — that's the contract the replay gate pins.
//
//   busstat --json                  # merged fleet view (schema BUSSTAT_1)
//   busstat --table                 # operator console rendering
//   busstat --sample 64             # trace sampling period (1=all, 0=off)
//   busstat --hash                  # one line: samples + overhead + hash
//   busstat --trace                 # scenario trace lines (deliveries, samples)
//   busstat --json --out stats.json # write instead of printing
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/telemetry/busstat_demo.h"

using namespace ibus;  // NOLINT: tool brevity

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--sample N] (--json | --table | --hash | --trace) "
               "[--out FILE]\n"
               "  --seed N     demo RNG seed (default 42)\n"
               "  --sample N   trace sampling period: 1=trace all, 64=default 1/64, 0=off\n"
               "outputs (default --json):\n"
               "  --json       deterministic merged fleet view (schema BUSSTAT_1)\n"
               "  --table      operator console: nodes, overhead, top-k tables\n"
               "  --hash       one line: 'samples=N overhead=R hash=H'\n"
               "  --trace      scenario trace lines (deliveries, per-node samples)\n"
               "  --out FILE   write the selected report to FILE\n",
               argv0);
  return 2;
}

int WriteOrPrint(const std::string& out_path, const std::string& text) {
  if (out_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "busstat: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false, table = false, hash_only = false, trace = false;
  uint64_t seed = 42;
  telemetry::BusStatScenarioOptions options;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--sample") == 0 && i + 1 < argc) {
      options.sample_period = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--table") == 0) {
      table = true;
    } else if (std::strcmp(argv[i], "--hash") == 0) {
      hash_only = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (!json && !table && !hash_only && !trace) {
    json = true;
  }
  if (json && table) {
    std::fprintf(stderr, "busstat: pick one of --json / --table\n");
    return Usage(argv[0]);
  }

  telemetry::BusStatScenario run = telemetry::RunBusstatWanScenario(seed, options);
  if (!run.trace.empty() && run.trace.front().rfind("error:", 0) == 0) {
    std::fprintf(stderr, "busstat: demo scenario failed: %s\n", run.trace.front().c_str());
    return 1;
  }
  if (run.samples_consumed == 0) {
    // Six reporters publish from t=750ms on; an aggregator that decoded nothing
    // means the stats plane is broken, not idle.
    std::fprintf(stderr, "busstat: aggregator decoded no time-series samples\n");
    return 1;
  }

  if (trace) {
    std::string lines;
    for (const std::string& line : run.trace) {
      lines += line + "\n";
    }
    return WriteOrPrint(out_path, lines);
  }
  if (hash_only) {
    std::printf("samples=%llu overhead=%.6f hash=%llu\n",
                static_cast<unsigned long long>(run.samples_consumed), run.overhead_ratio,
                static_cast<unsigned long long>(run.hash));
    return 0;
  }
  if (table) {
    return WriteOrPrint(out_path, run.table);
  }
  return WriteOrPrint(out_path, run.json);
}
