#include "tools/buslint/buslint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/subject/subject.h"
#include "src/tdl/parser.h"

namespace ibus::buslint {
namespace {

bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

// Source text with comments and literal *contents* blanked out (newlines kept, so
// offsets and line numbers survive). String literals keep their quotes in `code`;
// the original content is retrievable by the offset of the opening quote.
struct Scrubbed {
  std::string code;
  // Offset of the opening '"' -> raw characters between the quotes.
  std::unordered_map<size_t, std::string> literals;
  // Opening-quote offsets of raw strings: their contents carry no C++ escapes,
  // so they must not be run through UnescapeCpp.
  std::unordered_set<size_t> raw_literals;
  // Line number (1-based) -> rules allowed by a `buslint: allow(...)` comment.
  std::unordered_map<int, std::set<std::string>> allows;
  std::vector<size_t> line_starts;  // offset of the first char of each line

  int LineOf(size_t offset) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<int>(it - line_starts.begin());
  }

  bool Allowed(int line, const char* rule) const {
    auto it = allows.find(line);
    return it != allows.end() &&
           (it->second.count(rule) > 0 || it->second.count("all") > 0);
  }
};

// Records `buslint: allow(a,b)` found in a comment spanning [line_begin, line_end].
void RecordAllowComment(std::string_view comment, int line, Scrubbed* out) {
  size_t at = comment.find("buslint: allow(");
  if (at == std::string_view::npos) {
    return;
  }
  size_t open = comment.find('(', at);
  size_t close = comment.find(')', open);
  if (close == std::string_view::npos) {
    return;
  }
  std::string rules(comment.substr(open + 1, close - open - 1));
  std::stringstream ss(rules);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    rule.erase(std::remove_if(rule.begin(), rule.end(),
                              [](char c) { return std::isspace(static_cast<unsigned char>(c)); }),
               rule.end());
    if (!rule.empty()) {
      out->allows[line].insert(rule);
    }
  }
}

Scrubbed Scrub(std::string_view src) {
  Scrubbed out;
  out.code.assign(src.size(), ' ');
  out.line_starts.push_back(0);
  size_t i = 0;
  auto copy_nl = [&](size_t pos) {
    out.code[pos] = '\n';
    out.line_starts.push_back(pos + 1);
  };
  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      copy_nl(i);
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) {
        end = src.size();
      }
      RecordAllowComment(src.substr(i, end - i),
                        static_cast<int>(out.line_starts.size()), &out);
      i = end;  // newline handled by the main loop
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) {
        end = src.size();
      } else {
        end += 2;
      }
      for (size_t j = i; j < end; ++j) {
        if (src[j] == '\n') {
          copy_nl(j);
        }
      }
      i = end;
      continue;
    }
    if (c == '"' || c == '\'') {
      // Raw strings: R"delim( ... )delim".
      if (c == '"' && i > 0 && src[i - 1] == 'R') {
        size_t paren = src.find('(', i);
        if (paren != std::string_view::npos) {
          std::string delim(src.substr(i + 1, paren - i - 1));
          std::string closer = ")" + delim + "\"";
          size_t end = src.find(closer, paren + 1);
          if (end != std::string_view::npos) {
            out.code[i] = '"';
            out.literals[i] = std::string(src.substr(paren + 1, end - paren - 1));
            out.raw_literals.insert(i);
            size_t close_q = end + closer.size() - 1;
            out.code[close_q] = '"';
            for (size_t j = i; j < close_q; ++j) {
              if (src[j] == '\n') {
                copy_nl(j);
              }
            }
            i = close_q + 1;
            continue;
          }
        }
      }
      char quote = c;
      size_t start = i;
      ++i;
      std::string content;
      while (i < src.size() && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < src.size()) {
          content.push_back(src[i]);
          content.push_back(src[i + 1]);
          i += 2;
          continue;
        }
        if (src[i] == '\n') {  // unterminated literal; bail at line end
          break;
        }
        content.push_back(src[i]);
        ++i;
      }
      out.code[start] = quote;
      if (i < src.size() && src[i] == quote) {
        out.code[i] = quote;
        ++i;
      }
      if (quote == '"') {
        out.literals[start] = std::move(content);
      }
      continue;
    }
    out.code[i] = c;
    ++i;
  }
  return out;
}

size_t SkipSpace(const std::string& s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

// Walks backwards over whitespace; returns the offset of the previous meaningful
// char, or npos at start of file.
size_t PrevMeaningful(const std::string& s, size_t i) {
  while (i > 0) {
    --i;
    if (std::isspace(static_cast<unsigned char>(s[i])) == 0) {
      return i;
    }
  }
  return std::string::npos;
}

// Offset just past the matching ')' for the '(' at `open`, or npos.
size_t MatchParen(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') {
      ++depth;
    } else if (s[i] == ')') {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string::npos;
}

// Yields every identifier token in `code` as (offset, text).
template <typename Fn>
void ForEachIdentifier(const std::string& code, Fn&& fn) {
  size_t i = 0;
  while (i < code.size()) {
    if (IsIdentChar(code[i]) && (i == 0 || !IsIdentChar(code[i - 1])) &&
        std::isdigit(static_cast<unsigned char>(code[i])) == 0) {
      size_t j = i;
      while (j < code.size() && IsIdentChar(code[j])) {
        ++j;
      }
      fn(i, std::string_view(code).substr(i, j - i));
      i = j;
      continue;
    }
    ++i;
  }
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

// ---------------------------------------------------------------------------------
// Rule: nondeterminism
// ---------------------------------------------------------------------------------

bool PathIsDeterministicCore(const std::string& rel_path) {
  return StartsWith(rel_path, "src/sim/") || StartsWith(rel_path, "src/bus/") ||
         StartsWith(rel_path, "src/router/") || StartsWith(rel_path, "src/capture/") ||
         StartsWith(rel_path, "src/journal/") || StartsWith(rel_path, "src/prof/") ||
         StartsWith(rel_path, "src/telemetry/");
}

void CheckNondeterminism(const std::string& rel_path, const Scrubbed& s,
                         std::vector<Violation>* out) {
  if (!PathIsDeterministicCore(rel_path)) {
    return;
  }
  static const std::unordered_set<std::string_view> kBanned = {
      "srand",         "rand_r",       "drand48",
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand",   "default_random_engine",
      "system_clock",  "steady_clock", "high_resolution_clock",
      "getenv",        "gettimeofday", "clock_gettime",
      "localtime",     "gmtime",
  };
  // Common words; only ban when called as a function.
  static const std::unordered_set<std::string_view> kBannedCalls = {"rand", "time", "clock"};

  ForEachIdentifier(s.code, [&](size_t off, std::string_view ident) {
    bool banned = kBanned.count(ident) > 0;
    if (!banned && kBannedCalls.count(ident) > 0) {
      size_t next = SkipSpace(s.code, off + ident.size());
      banned = next < s.code.size() && s.code[next] == '(';
    }
    if (!banned) {
      return;
    }
    int line = s.LineOf(off);
    if (s.Allowed(line, kRuleNondeterminism)) {
      return;
    }
    out->push_back({rel_path, line, kRuleNondeterminism,
                    "'" + std::string(ident) +
                        "' in deterministic core (src/sim, src/bus, src/router, "
                        "src/capture, src/journal, src/prof must use Simulator time "
                        "and seeded ibus::Rng only)"});
  });
}

// ---------------------------------------------------------------------------------
// Rule: subject-literal
// ---------------------------------------------------------------------------------

void CheckSubjectLiterals(const std::string& rel_path, const Scrubbed& s,
                          std::vector<Violation>* out) {
  // API name -> true when the argument is a pattern (wildcards allowed).
  static const std::map<std::string_view, bool> kApis = {
      {"Publish", false},   {"PublishObject", false},
      {"Subscribe", true},  {"SubscribeObjects", true},
  };
  ForEachIdentifier(s.code, [&](size_t off, std::string_view ident) {
    auto api = kApis.find(ident);
    if (api == kApis.end()) {
      return;
    }
    size_t p = SkipSpace(s.code, off + ident.size());
    if (p >= s.code.size() || s.code[p] != '(') {
      return;
    }
    p = SkipSpace(s.code, p + 1);
    if (p >= s.code.size() || s.code[p] != '"') {
      return;  // first argument is not a string literal
    }
    auto lit = s.literals.find(p);
    if (lit == s.literals.end()) {
      return;
    }
    size_t close = s.code.find('"', p + 1);
    if (close == std::string::npos) {
      return;
    }
    size_t after = SkipSpace(s.code, close + 1);
    if (after >= s.code.size() || (s.code[after] != ',' && s.code[after] != ')')) {
      return;  // literal is only part of the argument expression ("a." + x)
    }
    int line = s.LineOf(off);
    if (s.Allowed(line, kRuleSubjectLiteral)) {
      return;
    }
    Status status = api->second ? ValidatePattern(lit->second) : ValidateSubject(lit->second);
    if (!status.ok()) {
      out->push_back({rel_path, line, kRuleSubjectLiteral,
                      std::string(ident) + "(\"" + lit->second +
                          "\"): " + status.ToString()});
    }
  });
}

// ---------------------------------------------------------------------------------
// Rule: decode-pair (headers only)
// ---------------------------------------------------------------------------------

void CheckDecodePairs(const std::string& rel_path, const Scrubbed& s,
                      std::vector<Violation>* out) {
  if (rel_path.size() < 2 || rel_path.substr(rel_path.size() - 2) != ".h") {
    return;
  }
  std::set<std::string> idents;
  struct Encoder {
    size_t off;
    std::string name;
    std::string expected;
  };
  std::vector<Encoder> encoders;
  ForEachIdentifier(s.code, [&](size_t off, std::string_view ident) {
    idents.insert(std::string(ident));
    size_t next = SkipSpace(s.code, off + ident.size());
    if (next >= s.code.size() || s.code[next] != '(') {
      return;  // encoders are functions; ignore plain mentions
    }
    std::string expected;
    if (StartsWith(ident, "Marshal")) {
      expected = "Unmarshal" + std::string(ident.substr(7));
    } else if (StartsWith(ident, "Encode") &&
               (ident.size() == 6 || std::isupper(static_cast<unsigned char>(ident[6])) != 0)) {
      expected = "Decode" + std::string(ident.substr(6));
    } else if (ident == "ToWire") {
      expected = "FromWire";
    } else {
      return;
    }
    encoders.push_back({off, std::string(ident), std::move(expected)});
  });
  std::set<std::string> reported;
  for (const Encoder& e : encoders) {
    if (idents.count(e.expected) > 0 || !reported.insert(e.expected).second) {
      continue;
    }
    int line = s.LineOf(e.off);
    if (s.Allowed(line, kRuleDecodePair)) {
      continue;
    }
    out->push_back({rel_path, line, kRuleDecodePair,
                    "encoder '" + e.name + "' has no matching '" + e.expected +
                        "' in this header"});
  }
}

// ---------------------------------------------------------------------------------
// Rule: decode-checked
// ---------------------------------------------------------------------------------

bool IsDecodeName(std::string_view ident) {
  auto prefixed = [&](std::string_view prefix) {
    return StartsWith(ident, prefix) &&
           (ident.size() == prefix.size() ||
            std::isupper(static_cast<unsigned char>(ident[prefix.size()])) != 0);
  };
  return prefixed("Unmarshal") || prefixed("Decode") || prefixed("Parse") ||
         ident == "FromWire";
}

void CheckDecodeChecked(const std::string& rel_path, const Scrubbed& s,
                        std::vector<Violation>* out) {
  ForEachIdentifier(s.code, [&](size_t off, std::string_view ident) {
    if (!IsDecodeName(ident)) {
      return;
    }
    size_t open = SkipSpace(s.code, off + ident.size());
    if (open >= s.code.size() || s.code[open] != '(') {
      return;
    }
    // Walk back over the receiver chain (Message::Unmarshal, msg.DecodeObject,
    // ptr->DecodeObject) to the start of the expression.
    size_t start = off;
    while (start > 0) {
      char c = s.code[start - 1];
      if (IsIdentChar(c) || c == '.' || c == ':' || c == '>' || c == '-') {
        --start;
      } else {
        break;
      }
    }
    size_t prev = PrevMeaningful(s.code, start);
    bool statement_start =
        prev == std::string::npos ||
        (s.code[prev] == ';' || s.code[prev] == '{' || s.code[prev] == '}');
    if (!statement_start) {
      return;  // assigned, returned, passed, or (void)-discarded
    }
    size_t end = MatchParen(s.code, open);
    if (end == std::string::npos) {
      return;
    }
    size_t after = SkipSpace(s.code, end);
    if (after >= s.code.size() || s.code[after] != ';') {
      return;  // result is used (.ok(), chained call, ...)
    }
    int line = s.LineOf(off);
    if (s.Allowed(line, kRuleDecodeChecked)) {
      return;
    }
    out->push_back({rel_path, line, kRuleDecodeChecked,
                    "result of '" + std::string(ident) +
                        "' is discarded; check it or cast to (void)"});
  });
}

// ---------------------------------------------------------------------------------
// Rule: raw-new-delete
// ---------------------------------------------------------------------------------

void CheckRawNewDelete(const std::string& rel_path, const Scrubbed& s,
                       std::vector<Violation>* out) {
  ForEachIdentifier(s.code, [&](size_t off, std::string_view ident) {
    if (ident != "new" && ident != "delete") {
      return;
    }
    int line = s.LineOf(off);
    if (s.Allowed(line, kRuleRawNewDelete)) {
      return;
    }
    if (ident == "delete") {
      size_t prev = PrevMeaningful(s.code, off);
      if (prev != std::string::npos && s.code[prev] == '=') {
        return;  // deleted special member
      }
      out->push_back({rel_path, line, kRuleRawNewDelete,
                      "raw 'delete'; use owning smart pointers"});
      return;
    }
    // `new` is allowed only inside the private-constructor factory idiom:
    // std::unique_ptr<T>(new T(...)), shared_ptr<T>(new T(...)), or a smart-pointer
    // alias wrapping it directly, e.g. ConnectionPtr(new Connection(...)).
    size_t stmt = off;
    while (stmt > 0 && s.code[stmt - 1] != ';' && s.code[stmt - 1] != '{' &&
           s.code[stmt - 1] != '}') {
      --stmt;
    }
    std::string_view stmt_text = std::string_view(s.code).substr(stmt, off - stmt);
    if (stmt_text.find("unique_ptr<") != std::string_view::npos ||
        stmt_text.find("shared_ptr<") != std::string_view::npos) {
      return;
    }
    size_t prev = PrevMeaningful(s.code, off);
    if (prev != std::string::npos && s.code[prev] == '(') {
      size_t id_end = prev;  // identifier directly wrapping the new-expression
      while (id_end > 0 && IsIdentChar(s.code[id_end - 1])) {
        --id_end;
      }
      std::string_view wrapper = std::string_view(s.code).substr(id_end, prev - id_end);
      if ((wrapper.size() >= 3 && wrapper.substr(wrapper.size() - 3) == "Ptr") ||
          (wrapper.size() >= 4 && wrapper.substr(wrapper.size() - 4) == "_ptr")) {
        return;
      }
    }
    out->push_back({rel_path, line, kRuleRawNewDelete,
                    "raw 'new' outside the unique_ptr/shared_ptr factory idiom"});
  });
}

// ---------------------------------------------------------------------------------
// Rule: reserved-subject
// ---------------------------------------------------------------------------------

void CheckReservedSubjects(const std::string& rel_path, const Scrubbed& s,
                           std::vector<Violation>* out) {
  // The telemetry subsystem and the bus services define/use the reserved namespace;
  // everywhere else must spell it via the kReserved* constants in subject.h so the
  // namespace stays greppable and a rename stays a one-file change.
  if (StartsWith(rel_path, "src/telemetry/") || StartsWith(rel_path, "src/services/")) {
    return;
  }
  for (const auto& [off, content] : s.literals) {
    if (content != "_ibus" && !StartsWith(content, "_ibus.")) {  // buslint: allow(reserved-subject)
      continue;
    }
    int line = s.LineOf(off);
    if (s.Allowed(line, kRuleReservedSubject)) {
      continue;
    }
    out->push_back({rel_path, line, kRuleReservedSubject,
                    "literal \"" + content +
                        "\" names the reserved bus-internal namespace; use the "
                        "kReserved* constants from src/subject/subject.h"});
  }
}

// ---------------------------------------------------------------------------------
// Rule: tdl-string
// ---------------------------------------------------------------------------------

// Interprets the C++ escape sequences the Scrubbed literal map preserves
// verbatim. Raw-string contents carry no C++ escapes, so this is the identity
// for them (a lone backslash only appears there as TDL's own escape, which the
// TDL reader handles the same way).
std::string UnescapeCpp(std::string_view content) {
  std::string out;
  out.reserve(content.size());
  for (size_t i = 0; i < content.size(); ++i) {
    if (content[i] != '\\' || i + 1 >= content.size()) {
      out.push_back(content[i]);
      continue;
    }
    char esc = content[++i];
    switch (esc) {
      case 'n':
        out.push_back('\n');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case '0':
        out.push_back('\0');
        break;
      default:
        out.push_back(esc);  // \\ \" \' and anything exotic
        break;
    }
  }
  return out;
}

void CheckTdlStrings(const std::string& rel_path, const Scrubbed& s,
                     std::vector<Violation>* out) {
  // Entry points that hand a C++ string straight to the TDL reader.
  static const std::unordered_set<std::string_view> kApis = {
      "RunScript", "EvalProgram", "ParseTdl", "ParseTdlOne"};
  ForEachIdentifier(s.code, [&](size_t off, std::string_view ident) {
    if (kApis.count(ident) == 0) {
      return;
    }
    size_t p = SkipSpace(s.code, off + ident.size());
    if (p >= s.code.size() || s.code[p] != '(') {
      return;
    }
    p = SkipSpace(s.code, p + 1);
    if (p + 1 < s.code.size() && s.code[p] == 'R' && s.code[p + 1] == '"') {
      ++p;  // raw string: the literal map is keyed on the quote, not the R
    }
    if (p >= s.code.size() || s.code[p] != '"') {
      return;  // script is not a literal; nothing static to check
    }
    auto lit = s.literals.find(p);
    if (lit == s.literals.end()) {
      return;
    }
    size_t close = s.code.find('"', p + 1);
    if (close == std::string::npos) {
      return;
    }
    size_t after = SkipSpace(s.code, close + 1);
    if (after >= s.code.size() || (s.code[after] != ',' && s.code[after] != ')')) {
      return;  // literal is only part of the argument expression
    }
    int line = s.LineOf(off);
    if (s.Allowed(line, kRuleTdlString)) {
      return;
    }
    TdlParseError err;
    // Raw strings reach the TDL reader verbatim; only ordinary literals get
    // their C++ escapes folded first. Unescaping a raw literal would corrupt
    // scripts whose TDL strings carry their own backslash escapes.
    const std::string script =
        s.raw_literals.count(p) > 0 ? lit->second : UnescapeCpp(lit->second);
    auto parsed = ParseTdl(script, &err);
    if (!parsed.ok()) {
      out->push_back({rel_path, line, kRuleTdlString,
                      "TDL literal passed to '" + std::string(ident) +
                          "' does not parse (script line " + std::to_string(err.line) + ":" +
                          std::to_string(err.col) + ": " + err.what + ")"});
    }
  });
}

}  // namespace

std::string Violation::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

std::vector<Violation> LintSource(const std::string& rel_path, std::string_view content) {
  Scrubbed s = Scrub(content);
  std::vector<Violation> out;
  CheckNondeterminism(rel_path, s, &out);
  CheckSubjectLiterals(rel_path, s, &out);
  CheckDecodePairs(rel_path, s, &out);
  CheckDecodeChecked(rel_path, s, &out);
  CheckRawNewDelete(rel_path, s, &out);
  CheckReservedSubjects(rel_path, s, &out);
  CheckTdlStrings(rel_path, s, &out);
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

}  // namespace ibus::buslint
