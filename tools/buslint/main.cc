// buslint CLI: walks the given paths (relative to --root), lints every C++ source,
// prints violations, and exits nonzero when any are found.
//
//   buslint --root /path/to/repo src bench examples
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/buslint/buslint.h"

namespace fs = std::filesystem;

namespace {

bool IsCppSource(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: buslint [--root DIR] PATH...\n";
      return 0;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) {
    std::cerr << "buslint: no paths given (try: buslint --root REPO src bench examples)\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& t : targets) {
    fs::path p = root / t;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && IsCppSource(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "buslint: no such path: " << p.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  size_t violations = 0;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::cerr << "buslint: cannot read " << f.string() << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string rel = fs::relative(f, root).generic_string();
    for (const auto& v : ibus::buslint::LintSource(rel, buf.str())) {
      std::cout << v.ToString() << "\n";
      ++violations;
    }
  }
  if (violations > 0) {
    std::cout << "buslint: " << violations << " violation(s) in " << files.size()
              << " file(s)\n";
    return 1;
  }
  std::cout << "buslint: clean (" << files.size() << " files)\n";
  return 0;
}
