// buslint: repo-specific static checks for the Information Bus sources.
//
// The rules encode invariants that generic compiler warnings cannot see:
//
//   nondeterminism  — no wall-clock / PRNG / environment primitives under
//                     src/sim, src/bus, src/router (simulated time and seeded
//                     Rng only; this is what keeps Fig 5-8 reproductions and
//                     sim_replay_check trustworthy).
//   subject-literal — subject/pattern string literals passed to Publish*/
//                     Subscribe* must parse under the real subject grammar
//                     (validated by linking src/subject, not by regex).
//   decode-pair     — every wire encoder declared in a header (Marshal*,
//                     Encode*, ToWire) must have the matching decoder
//                     (Unmarshal*, Decode*, FromWire) declared in the same
//                     header.
//   decode-checked  — a decode call (Unmarshal*, Decode*, Parse*, FromWire)
//                     must not be discarded as a bare expression statement;
//                     cast to (void) to discard deliberately.
//   raw-new-delete  — no raw `new`/`delete` outside the private-constructor
//                     factory idiom `std::unique_ptr<T>(new T(...))`.
//   reserved-subject — no "_ibus"/"_ibus.*" string literals outside
//                     src/telemetry and src/services; everything else must
//                     name the reserved bus-internal namespace through the
//                     kReserved* constants in src/subject/subject.h.
//   tdl-string      — string literals handed to the TDL entry points
//                     (RunScript, EvalProgram, ParseTdl, ParseTdlOne) must
//                     parse under the real TDL reader (validated by linking
//                     src/tdl). A typo'd embedded script otherwise survives
//                     until that code path runs.
//
// Any line can opt out of a rule with a trailing comment:
//   // buslint: allow(rule-name)
#ifndef TOOLS_BUSLINT_BUSLINT_H_
#define TOOLS_BUSLINT_BUSLINT_H_

#include <string>
#include <string_view>
#include <vector>

namespace ibus::buslint {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  // "src/sim/foo.cc:12: [nondeterminism] ..." — the format the ctest run prints.
  std::string ToString() const;
};

// Lints one source file. `rel_path` is the path relative to the repo root; the
// nondeterminism rule is scoped by it, so fixture tests can claim synthetic
// paths like "src/sim/evil.cc".
std::vector<Violation> LintSource(const std::string& rel_path, std::string_view content);

// Rule names, exposed for the allowlist mechanism and the tests.
inline constexpr char kRuleNondeterminism[] = "nondeterminism";
inline constexpr char kRuleSubjectLiteral[] = "subject-literal";
inline constexpr char kRuleDecodePair[] = "decode-pair";
inline constexpr char kRuleDecodeChecked[] = "decode-checked";
inline constexpr char kRuleRawNewDelete[] = "raw-new-delete";
inline constexpr char kRuleReservedSubject[] = "reserved-subject";
inline constexpr char kRuleTdlString[] = "tdl-string";

}  // namespace ibus::buslint

#endif  // TOOLS_BUSLINT_BUSLINT_H_
