// tdlcheck CLI: static analysis + schema-evolution compatibility for TDL.
//
//   tdlcheck [--root DIR] PATH...             lint .tdl scripts (dirs recurse)
//   tdlcheck [--root DIR] --embedded PATH...  lint R"tdl(...)tdl" blocks in C++
//   tdlcheck --compat OLD.tdl NEW.tdl         classify schema changes
//
// Exit codes: 0 clean / all changes wire-safe, 1 diagnostics or a wire-breaking
// change, 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/tdl/parser.h"
#include "src/tdlcheck/tdlcheck.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool IsCppSource(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

// One R"tdl(...)tdl" block found in a C++ source.
struct EmbeddedScript {
  std::string content;
  int start_line = 1;  // 1-based line of the block's first content character
};

// Extracts every R"tdl( ... )tdl" raw string. The "tdl" delimiter is the repo
// convention for embedded scripts (examples/tdlsh.cpp); generic raw strings are
// not scanned because arbitrary C++ string content is rarely TDL. The scan
// skips comments and ordinary string literals, so a file *talking about* the
// R"tdl()tdl" convention (this one, say) is not mistaken for shipping a script.
std::vector<EmbeddedScript> ExtractEmbedded(const std::string& source) {
  std::vector<EmbeddedScript> out;
  constexpr std::string_view kOpen = "R\"tdl(";
  constexpr std::string_view kClose = ")tdl\"";
  const size_t n = source.size();
  int line = 1;
  size_t i = 0;
  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') {
          ++line;
        }
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      continue;
    }
    if (c == 'R' && source.compare(i, kOpen.size(), kOpen.data(), kOpen.size()) == 0) {
      size_t body = i + kOpen.size();
      size_t close = source.find(kClose.data(), body, kClose.size());
      if (close == std::string::npos) {
        break;
      }
      EmbeddedScript s;
      s.content = source.substr(body, close - body);
      s.start_line = line;
      out.push_back(std::move(s));
      line += static_cast<int>(std::count(source.begin() + static_cast<long>(body),
                                          source.begin() + static_cast<long>(close), '\n'));
      i = close + kClose.size();
      continue;
    }
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      // Raw string with some other delimiter: skip it whole.
      size_t paren = source.find('(', i + 2);
      if (paren == std::string::npos) {
        break;
      }
      std::string closer = ")" + source.substr(i + 2, paren - i - 2) + "\"";
      size_t end = source.find(closer, paren + 1);
      if (end == std::string::npos) {
        break;
      }
      end += closer.size();
      line += static_cast<int>(std::count(source.begin() + static_cast<long>(i),
                                          source.begin() + static_cast<long>(end), '\n'));
      i = end;
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      while (i < n && source[i] != quote && source[i] != '\n') {
        i += source[i] == '\\' ? 2 : 1;
      }
      if (i < n && source[i] == quote) {
        ++i;
      }
      continue;
    }
    ++i;
  }
  return out;
}

std::vector<fs::path> Collect(const fs::path& root, const std::vector<std::string>& targets,
                              bool embedded, bool* io_error) {
  std::vector<fs::path> files;
  for (const std::string& t : targets) {
    fs::path p = root / t;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (!entry.is_regular_file()) {
          continue;
        }
        if (embedded ? IsCppSource(entry.path()) : entry.path().extension() == ".tdl") {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "tdlcheck: no such path: " << p.string() << "\n";
      *io_error = true;
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int RunCompat(const std::string& old_path, const std::string& new_path) {
  std::string old_src;
  std::string new_src;
  if (!ReadFile(old_path, &old_src) || !ReadFile(new_path, &new_src)) {
    std::cerr << "tdlcheck: cannot read compat inputs\n";
    return 2;
  }
  auto parse = [](const std::string& path, const std::string& src,
                  ibus::tdlcheck::ScriptModel* model) {
    ibus::TdlParseError err;
    auto forms = ibus::ParseTdl(src, &err);
    if (!forms.ok()) {
      std::cerr << path << ":" << err.line << ":" << err.col << ": [parse-error] " << err.what
                << "\n";
      return false;
    }
    *model = ibus::tdlcheck::CollectModel(*forms);
    return true;
  };
  ibus::tdlcheck::ScriptModel old_model;
  ibus::tdlcheck::ScriptModel new_model;
  if (!parse(old_path, old_src, &old_model) || !parse(new_path, new_src, &new_model)) {
    return 2;
  }
  auto changes = ibus::tdlcheck::DiffModels(old_model, new_model);
  size_t breaking = 0;
  for (const auto& c : changes) {
    std::cout << c.ToString() << "\n";
    if (c.breaking) {
      ++breaking;
    }
  }
  if (breaking > 0) {
    std::cout << "tdlcheck: " << breaking << " wire-breaking change(s)\n";
    return 1;
  }
  std::cout << "tdlcheck: compatible (" << changes.size() << " wire-safe change(s))\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool embedded = false;
  bool compat = false;
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--embedded") {
      embedded = true;
    } else if (arg == "--compat") {
      compat = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: tdlcheck [--root DIR] [--embedded] PATH...\n"
                   "       tdlcheck --compat OLD.tdl NEW.tdl\n";
      return 0;
    } else {
      targets.push_back(arg);
    }
  }
  if (compat) {
    if (embedded || targets.size() != 2) {
      std::cerr << "usage: tdlcheck --compat OLD.tdl NEW.tdl\n";
      return 2;
    }
    return RunCompat((root / targets[0]).string(), (root / targets[1]).string());
  }
  if (targets.empty()) {
    std::cerr << "tdlcheck: no paths given (try: tdlcheck --root REPO examples/scripts)\n";
    return 2;
  }

  bool io_error = false;
  std::vector<fs::path> files = Collect(root, targets, embedded, &io_error);
  if (io_error) {
    return 2;
  }
  size_t diagnostics = 0;
  size_t scripts = 0;
  for (const fs::path& f : files) {
    std::string source;
    if (!ReadFile(f, &source)) {
      std::cerr << "tdlcheck: cannot read " << f.string() << "\n";
      return 2;
    }
    const std::string rel = fs::relative(f, root).generic_string();
    if (!embedded) {
      ++scripts;
      for (const auto& d : ibus::tdlcheck::CheckScript(rel, source)) {
        std::cout << d.ToString() << "\n";
        ++diagnostics;
      }
      continue;
    }
    for (const EmbeddedScript& block : ExtractEmbedded(source)) {
      ++scripts;
      for (auto d : ibus::tdlcheck::CheckScript(rel, block.content)) {
        // Map block-relative lines onto the enclosing C++ file.
        d.line += block.start_line - 1;
        std::cout << d.ToString() << "\n";
        ++diagnostics;
      }
    }
  }
  if (diagnostics > 0) {
    std::cout << "tdlcheck: " << diagnostics << " diagnostic(s) in " << scripts
              << " script(s)\n";
    return 1;
  }
  std::cout << "tdlcheck: clean (" << scripts << " scripts, " << files.size() << " files)\n";
  return 0;
}
