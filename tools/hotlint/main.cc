// hotlint CLI: walks the given paths (relative to --root), builds the
// whole-program function model, propagates hotness from `// hotlint: hot`
// roots, and prints every finding. The scanned file set *is* the program — run
// it over all directories the hot path traverses.
//
//   hotlint --root /path/to/repo src/bus src/router src/sim src/wire ...
//
// Flags:
//   --explain   after each finding, dump the full root->site call chain
//   --dot       print the Graphviz call graph (hot nodes filled) and exit
//   --list-hot  print the annotated hot roots and exit
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/hotlint/hotlint.h"

namespace fs = std::filesystem;

namespace {

bool IsCppSource(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> targets;
  bool explain = false;
  bool dot = false;
  bool list_hot = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--list-hot") {
      list_hot = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: hotlint [--root DIR] [--explain|--dot|--list-hot] PATH...\n";
      return 0;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) {
    std::cerr << "hotlint: no paths given (try: hotlint --root REPO src/bus src/wire)\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& t : targets) {
    fs::path p = root / t;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && IsCppSource(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "hotlint: no such path: " << p.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<ibus::hotlint::SourceFile> sources;
  sources.reserve(files.size());
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::cerr << "hotlint: cannot read " << f.string() << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.push_back({fs::relative(f, root).generic_string(), buf.str()});
  }

  ibus::hotlint::Program program = ibus::hotlint::BuildProgram(sources);
  if (dot) {
    std::cout << ibus::hotlint::DotGraph(program);
    return 0;
  }
  if (list_hot) {
    for (const std::string& r : ibus::hotlint::HotRoots(program)) {
      std::cout << r << "\n";
    }
    return 0;
  }

  std::vector<ibus::hotlint::Diagnostic> findings = ibus::hotlint::Analyze(program);
  for (const auto& d : findings) {
    std::cout << d.ToString() << "\n";
    if (d.chain.size() > 1) {
      if (explain) {
        std::cout << "    hot path:\n";
        for (size_t i = 0; i < d.chain.size(); ++i) {
          std::cout << (i == 0 ? "      " : "      -> ") << d.chain[i] << "\n";
        }
      } else {
        std::cout << "    (transitively hot; rerun with --explain for the chain)\n";
      }
    }
  }
  if (!findings.empty()) {
    std::cout << "hotlint: " << findings.size() << " finding(s) in " << files.size()
              << " file(s)\n";
    return 1;
  }
  std::cout << "hotlint: clean (" << files.size() << " files, "
            << program.functions.size() << " functions, "
            << ibus::hotlint::HotRoots(program).size() << " hot roots)\n";
  return 0;
}
