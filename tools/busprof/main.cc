// busprof: critical-path latency profiler for the simulated bus. Replays the
// canonical certified-WAN demo scenario with publish tracing on, a wire tap
// attached, and the simulator event core observed, then decomposes every traced
// delivery's end-to-end latency into the exact stage taxonomy of src/prof
// (publish_marshal / daemon_queue / medium_transit / router_forward /
// router_republish / retransmit_repair / deliver_dispatch / unattributed). The
// stage sums reconcile exactly — integer microseconds — against the measured
// end-to-end latency, and every output is bit-identical across replays of one
// seed.
//
//   busprof --json                  # full JSON report (paths, stages, queues, event core)
//   busprof --collapsed             # flamegraph-collapsed stacks (stackcollapse format)
//   busprof --seed 7 --json         # different replay
//   busprof --hash                  # one line: paths + reconciliation + hash
//   busprof --json --out prof.json  # write instead of printing
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/prof/demo.h"

using namespace ibus;  // NOLINT: tool brevity

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] (--json | --collapsed | --hash) [--out FILE]\n"
               "  --seed N     demo RNG seed (default 42)\n"
               "outputs (default --json):\n"
               "  --json       deterministic JSON report (schema BUSPROF_1)\n"
               "  --collapsed  flamegraph-collapsed stacks: bus;dest;subject;stage us\n"
               "  --hash       one line: 'paths=N reconciled=B hash=H'\n"
               "  --trace      scenario trace lines (deliveries, timelines, stats)\n"
               "  --out FILE   write the selected report to FILE\n",
               argv0);
  return 2;
}

int WriteOrPrint(const std::string& out_path, const std::string& text) {
  if (out_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "busprof: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false, collapsed = false, hash_only = false, trace = false;
  uint64_t seed = 42;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--collapsed") == 0) {
      collapsed = true;
    } else if (std::strcmp(argv[i], "--hash") == 0) {
      hash_only = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (!json && !collapsed && !hash_only && !trace) {
    json = true;
  }
  if (json && collapsed) {
    std::fprintf(stderr, "busprof: pick one of --json / --collapsed\n");
    return Usage(argv[0]);
  }

  prof::ProfiledScenario run = prof::RunProfiledWanScenario(seed);
  if (!run.trace.empty() && run.trace.front().rfind("error:", 0) == 0) {
    std::fprintf(stderr, "busprof: demo scenario failed: %s\n", run.trace.front().c_str());
    return 1;
  }
  if (!run.reconciled) {
    // The decomposition guarantees this by construction; failing loudly here
    // turns any future regression into a red CLI (and a red smoke test).
    std::fprintf(stderr, "busprof: stage sums do not reconcile with end-to-end latency\n");
    return 1;
  }

  if (trace) {
    std::string lines;
    for (const std::string& line : run.trace) {
      lines += line + "\n";
    }
    return WriteOrPrint(out_path, lines);
  }
  if (hash_only) {
    std::printf("paths=%zu reconciled=%d hash=%llu\n", run.paths.size(),
                run.reconciled ? 1 : 0, static_cast<unsigned long long>(run.hash));
    return 0;
  }
  if (collapsed) {
    return WriteOrPrint(out_path, run.collapsed);
  }
  return WriteOrPrint(out_path, run.json + "\n");
}
