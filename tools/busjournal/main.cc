// busjournal: offline inspector for write-ahead ledger devices (src/journal) — the
// fsck/debugfs companion to the in-process journal. It dumps ledger records as
// JSONL, verifies block integrity (magic, CRCs, LSN continuity, segment order)
// without touching the file, compacts retired history in place, or replays the
// daemon-crash demo scenario against a real ledger file.
//
//   busjournal --demo --out run.ledger     # crash/recovery demo onto a real file
//   busjournal --verify run.ledger         # read-only integrity report (exit 1 if dirty)
//   busjournal --dump run.ledger           # JSONL: one line per ledger record
//   busjournal --compact run.ledger        # drop fully-retired closed segments
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/journal/demo.h"
#include "src/journal/format.h"
#include "src/journal/journal.h"
#include "src/sim/stable_store.h"

using namespace ibus;  // NOLINT: tool brevity

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--demo [--seed N] [--out FILE] | --dump FILE | --verify FILE |\n"
      "           --compact FILE [--retire-below LSN])\n"
      "modes:\n"
      "  --demo            run the daemon-crash scenario against a real ledger file,\n"
      "                    print its trace, then self-verify the surviving device\n"
      "  --seed N          demo RNG seed (default 42)\n"
      "  --out FILE        demo ledger path (default busjournal_demo.ledger; replaced)\n"
      "  --dump FILE       JSONL: one line per record, then a summary line (read-only)\n"
      "  --verify FILE     integrity report; exit 0 only when the device is clean\n"
      "  --compact FILE    open, drop retired closed segments, rewrite the file\n"
      "  --retire-below N  compaction horizon (default: everything acked, i.e. next LSN)\n",
      argv0);
  return 2;
}

// A read-only image of a FileStableStore log: whole device records plus whether
// the file ended in a torn or corrupt tail.
struct DeviceImage {
  std::vector<Bytes> blocks;
  bool torn_tail = false;
};

// Reads the store's on-disk framing (u32 len | u32 crc32(payload) | payload,
// little-endian) directly. Deliberately NOT FileStableStore::Open: opening the
// store repairs damage by rewriting the file, and --dump/--verify must never
// modify what they inspect.
bool LoadDeviceImage(const std::string& path, DeviceImage* img) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "busjournal: cannot open %s\n", path.c_str());
    return false;
  }
  uint8_t header[8];
  while (true) {
    size_t got = std::fread(header, 1, sizeof header, f);
    if (got == 0) {
      break;
    }
    if (got < sizeof header) {
      img->torn_tail = true;
      break;
    }
    auto read_u32 = [](const uint8_t* p) {
      return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
             static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
    };
    uint32_t len = read_u32(header);
    uint32_t crc = read_u32(header + 4);
    if (len > 64u * 1024 * 1024) {
      img->torn_tail = true;
      break;
    }
    Bytes payload(len);
    if (len != 0 && std::fread(payload.data(), 1, len, f) < len) {
      img->torn_tail = true;
      break;
    }
    if (Crc32(payload) != crc) {
      img->torn_tail = true;
      break;
    }
    img->blocks.push_back(std::move(payload));
  }
  std::fclose(f);
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

// Printable-ASCII preview of a record payload, capped; everything else becomes '.'
// so the output needs no further JSON escaping.
std::string Preview(const Bytes& payload) {
  std::string out;
  for (size_t i = 0; i < payload.size() && i < 32; ++i) {
    char c = static_cast<char>(payload[i]);
    bool printable = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                     (c >= 'A' && c <= 'Z') || c == ' ' || c == '.' || c == '_' || c == '-';
    out.push_back(printable ? c : '.');
  }
  if (payload.size() > 32) {
    out += "...";
  }
  return out;
}

int Dump(const std::string& path) {
  DeviceImage img;
  if (!LoadDeviceImage(path, &img)) {
    return 1;
  }
  size_t records = 0, valid_blocks = 0, invalid_tail = 0;
  for (size_t i = 0; i < img.blocks.size(); ++i) {
    journal::BlockHeader h;
    std::vector<journal::Record> recs;
    Status s = journal::DecodeBlock(img.blocks[i], &h, &recs);
    if (!s.ok()) {
      // Journal semantics: damage is a hard stop, the rest of the device is tail.
      std::printf("{\"block\": %zu, \"error\": \"%s\"}\n", i,
                  JsonEscape(s.message()).c_str());
      invalid_tail = img.blocks.size() - i;
      break;
    }
    ++valid_blocks;
    for (const journal::Record& r : recs) {
      std::printf("{\"lsn\": %llu, \"segment\": %u, \"len\": %zu, \"crc32\": %u, "
                  "\"preview\": \"%s\"}\n",
                  static_cast<unsigned long long>(r.lsn), r.segment, r.payload.size(),
                  Crc32(r.payload), Preview(r.payload).c_str());
      ++records;
    }
  }
  std::printf("{\"summary\": {\"blocks\": %zu, \"records\": %zu, "
              "\"invalid_tail_blocks\": %zu, \"device_torn_tail\": %s}}\n",
              valid_blocks, records, invalid_tail, img.torn_tail ? "true" : "false");
  return 0;
}

int Verify(const std::string& path) {
  DeviceImage img;
  if (!LoadDeviceImage(path, &img)) {
    return 1;
  }
  // Stage the image in a memory store so the shared verifier runs against the
  // file's exact contents without any chance of repairing it.
  MemoryStableStore staged;
  for (const Bytes& b : img.blocks) {
    (void)staged.Append(b);
  }
  journal::VerifyReport rep = journal::VerifyDevice(staged);
  if (img.torn_tail) {
    rep.problems.push_back("device framing: torn or corrupt record tail");
  }
  std::printf("%s\n", rep.ToString().c_str());
  return rep.clean() ? 0 : 1;
}

int Compact(const std::string& path, bool have_horizon, journal::Lsn horizon) {
  auto store = FileStableStore::Open(path);
  if (!store.ok()) {
    std::fprintf(stderr, "busjournal: %s\n", store.status().ToString().c_str());
    return 1;
  }
  auto j = journal::Journal::Open(store->get());
  if (!j.ok()) {
    std::fprintf(stderr, "busjournal: %s\n", j.status().ToString().c_str());
    return 1;
  }
  const size_t blocks_before = static_cast<size_t>((*store)->NextSeq());
  const journal::Lsn retire_below = have_horizon ? horizon : (*j)->next_lsn();
  Status s = (*j)->Compact(retire_below);
  if (!s.ok()) {
    std::fprintf(stderr, "busjournal: %s\n", s.ToString().c_str());
    return 1;
  }
  auto live = (*store)->ReadFrom(0);
  if (!live.ok()) {
    std::fprintf(stderr, "busjournal: %s\n", live.status().ToString().c_str());
    return 1;
  }
  const journal::Lsn first = (*j)->first_lsn();
  const journal::Lsn next = (*j)->next_lsn();
  j->reset();
  store->reset();  // close the handle before replacing the file

  // FileStableStore only trims logically; make the compaction physical by
  // rewriting the surviving blocks beside the log and swapping it in.
  const std::string tmp = path + ".compact.tmp";
  std::remove(tmp.c_str());
  {
    auto out = FileStableStore::Open(tmp);
    if (!out.ok()) {
      std::fprintf(stderr, "busjournal: %s\n", out.status().ToString().c_str());
      return 1;
    }
    for (const Bytes& b : *live) {
      auto seq = (*out)->Append(b);
      if (!seq.ok()) {
        std::fprintf(stderr, "busjournal: %s\n", seq.status().ToString().c_str());
        return 1;
      }
    }
    Status synced = (*out)->Sync();
    if (!synced.ok()) {
      std::fprintf(stderr, "busjournal: %s\n", synced.ToString().c_str());
      return 1;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "busjournal: cannot replace %s\n", path.c_str());
    return 1;
  }
  std::printf("busjournal: compacted %s below lsn %llu: blocks %zu -> %zu, lsn=[%llu,%llu)\n",
              path.c_str(), static_cast<unsigned long long>(retire_below), blocks_before,
              live->size(), static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(next));
  return 0;
}

int Demo(uint64_t seed, const std::string& out_path) {
  std::remove(out_path.c_str());  // the scenario requires an empty device
  auto store = FileStableStore::Open(out_path);
  if (!store.ok()) {
    std::fprintf(stderr, "busjournal: %s\n", store.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> trace = journal::RunDaemonCrashScenario(seed, store->get());
  for (const std::string& line : trace) {
    std::printf("%s\n", line.c_str());
  }
  if (!trace.empty() && trace.front().rfind("error:", 0) == 0) {
    std::fprintf(stderr, "busjournal: demo scenario failed\n");
    return 1;
  }
  journal::VerifyReport rep = journal::VerifyDevice(**store);
  std::printf("%s\n", rep.ToString().c_str());
  if (!rep.clean()) {
    std::fprintf(stderr, "busjournal: demo left a dirty device\n");
    return 1;
  }
  std::fprintf(stderr, "busjournal: wrote demo ledger to %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false, have_horizon = false;
  uint64_t seed = 42;
  journal::Lsn horizon = 0;
  std::string dump_path, verify_path, compact_path;
  std::string out_path = "busjournal_demo.ledger";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
      dump_path = argv[++i];
    } else if (std::strcmp(argv[i], "--verify") == 0 && i + 1 < argc) {
      verify_path = argv[++i];
    } else if (std::strcmp(argv[i], "--compact") == 0 && i + 1 < argc) {
      compact_path = argv[++i];
    } else if (std::strcmp(argv[i], "--retire-below") == 0 && i + 1 < argc) {
      have_horizon = true;
      horizon = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage(argv[0]);
    }
  }
  const int modes = (demo ? 1 : 0) + (dump_path.empty() ? 0 : 1) +
                    (verify_path.empty() ? 0 : 1) + (compact_path.empty() ? 0 : 1);
  if (modes != 1) {
    std::fprintf(stderr, "busjournal: pick exactly one mode\n");
    return Usage(argv[0]);
  }
  if (demo) {
    return Demo(seed, out_path);
  }
  if (!dump_path.empty()) {
    return Dump(dump_path);
  }
  if (!verify_path.empty()) {
    return Verify(verify_path);
  }
  return Compact(compact_path, have_horizon, horizon);
}
