// busmon: the operator's live console for a bus fleet, demonstrated against a
// self-contained simulated LAN that rides through a lossy episode. Every host runs a
// StatsReporter and (when telemetry is compiled in) a HealthEvaluator; busmon
// subscribes to the reserved stats/health/trace feeds and renders the fleet table,
// top subjects by flow, active alerts, and a flight-recorder excerpt.
//
//   busmon --snapshot            # one deterministic frame at the end of the run
//   busmon --live                # a frame every simulated second
//   busmon --seed 7 --snapshot   # different fault timings, still deterministic
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/services/bus_monitor.h"
#include "src/services/health_monitor.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/telemetry/busmon.h"
#include "src/telemetry/busstat.h"

using namespace ibus;  // NOLINT: tool brevity

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--snapshot | --live] [--seed N]\n"
               "  --snapshot  print one frame after the simulated run (default)\n"
               "  --live      print a frame every simulated second\n"
               "  --seed N    fault/workload RNG seed (default 42)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool live = false;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--live") == 0) {
      live = true;
    } else if (std::strcmp(argv[i], "--snapshot") == 0) {
      live = false;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage(argv[0]);
    }
  }

  Simulator sim;
  Network net(&sim, seed);
  SegmentId seg = net.AddSegment();
  BusConfig config;
  config.reliable.retain_messages = 2;  // a tiny retain buffer makes loss visible

  std::vector<HostId> hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(net.AddHost("host" + std::to_string(i), seg));
    auto d = BusDaemon::Start(&net, hosts.back(), config);
    if (!d.ok()) {
      std::fprintf(stderr, "daemon start failed: %s\n", d.status().ToString().c_str());
      return 1;
    }
    daemons.push_back(d.take());
  }

  // The observability plane on every host.
  HealthConfig hc;
  hc.retransmit_raise = 4;
  hc.clear_hold_intervals = 4;
  std::vector<std::unique_ptr<BusClient>> ops;
  std::vector<std::unique_ptr<StatsReporter>> reporters;
  std::vector<std::unique_ptr<HealthEvaluator>> evaluators;
  for (int i = 0; i < 3; ++i) {
    ops.push_back(BusClient::Connect(&net, hosts[i], "ops" + std::to_string(i)).take());
    reporters.push_back(
        StatsReporter::Create(ops.back().get(), daemons[i].get(), 500 * kMillisecond).take());
    auto ev = HealthEvaluator::Create(ops.back().get(), daemons[i].get(), hc);
    if (ev.ok()) {
      evaluators.push_back(ev.take());
    } else if (i == 0) {
      // Built with IB_TELEMETRY=OFF: stats and flows still flow, alerts don't.
      std::fprintf(stderr, "note: %s\n", ev.status().ToString().c_str());
    }
  }
  // The busstat time-series plane beside the legacy snapshots: sketches, delta
  // streams, and the advertised trace-sampling rate feed the console's new section.
  std::vector<std::unique_ptr<telemetry::BusStatReporter>> ts_reporters;
  for (int i = 0; i < 3; ++i) {
    telemetry::BusStatReporterOptions topts;
    topts.sample_period = config.trace_sample_period;
    auto rep = telemetry::BusStatReporter::Create(
        ops[static_cast<size_t>(i)].get(), "host" + std::to_string(i),
        daemons[static_cast<size_t>(i)]->metrics(),
        &daemons[static_cast<size_t>(i)]->subject_sketch(),
        &daemons[static_cast<size_t>(i)]->peer_sketch(), topts);
    if (!rep.ok()) {
      std::fprintf(stderr, "busstat reporter failed: %s\n", rep.status().ToString().c_str());
      return 1;
    }
    ts_reporters.push_back(rep.take());
  }

  auto mon_bus = BusClient::Connect(&net, hosts[0], "busmon").take();
  auto mon = telemetry::BusMon::Create(mon_bus.get()).take();
  mon->AttachRecorder(daemons[2]->flight_recorder());

  auto consumer = BusClient::Connect(&net, hosts[2], "consumer").take();
  uint64_t received = 0;
  consumer->Subscribe("market.>", [&](const Message&) { received++; }).ok();
  sim.RunFor(1 * kSecond);

  // Workload: clean warm-up, a 30%-loss episode fast enough to age the retain
  // buffer out, then a healed cool-down so alerts retire.
  auto render = [&](const char* tag) {
    std::printf("----- %s -----\n%s\n", tag, mon->RenderSnapshot().c_str());
  };
  auto run_for = [&](SimTime duration) {
    if (!live) {
      sim.RunFor(duration);
      return;
    }
    while (duration > 0) {
      SimTime step = duration < kSecond ? duration : kSecond;
      sim.RunFor(step);
      duration -= step;
      render("live");
    }
  };

  auto pub = BusClient::Connect(&net, hosts[0], "producer").take();
  Rng workload(seed + 3);
  for (int i = 0; i < 10; ++i) {
    pub->Publish("market.equity.gmc", ToBytes("tick" + std::to_string(i))).ok();
    run_for(workload.NextInRange(5000, 15000));
  }
  FaultPlan faults;
  faults.drop_prob = 0.30;
  faults.jitter_us = 300;
  net.SetFaultPlan(seg, faults);
  for (int i = 0; i < 60; ++i) {
    pub->Publish("market.equity.gmc", ToBytes("lossy" + std::to_string(i))).ok();
    run_for(workload.NextInRange(5000, 10000));
  }
  net.SetFaultPlan(seg, FaultPlan());
  for (int i = 0; i < 10; ++i) {
    pub->Publish("market.equity.gmc", ToBytes("calm" + std::to_string(i))).ok();
    run_for(100 * kMillisecond);
  }
  run_for(5 * kSecond);

  render(live ? "final" : "snapshot");
  std::printf("consumer received %llu market messages; frame hash %llu\n",
              static_cast<unsigned long long>(received),
              static_cast<unsigned long long>(mon->SnapshotHash()));
  return 0;
}
