// wirecheck CLI: walks the given paths (relative to --root), builds the
// whole-program codec model from `// wirecheck: codec(...)` annotations,
// proves Encode/Decode symmetry, runs the decode-safety rules, and gates the
// golden schemas under --schemas DIR. The scanned file set *is* the program.
//
//   wirecheck --root /path/to/repo --schemas schemas src/wire src/bus ...
//
// Flags:
//   --schemas DIR   compare each codec against DIR/<codec>.wire; wire-safe
//                   drift asks for a regen, wire-breaking drift additionally
//                   demands a version bump.
//   --update        rewrite the goldens instead of failing on drift (only
//                   when the analysis itself is clean).
//   --list-codecs   print the annotated codec names and exit.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/wirecheck/wirecheck.h"

namespace fs = std::filesystem;

namespace {

bool IsCppSource(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

std::string ReadAll(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *ok = true;
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path schemas_dir;
  bool update = false;
  bool list_codecs = false;
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--schemas" && i + 1 < argc) {
      schemas_dir = argv[++i];
    } else if (arg == "--update") {
      update = true;
    } else if (arg == "--list-codecs") {
      list_codecs = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: wirecheck [--root DIR] [--schemas DIR] [--update] "
                   "[--list-codecs] PATH...\n";
      return 0;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) {
    std::cerr << "wirecheck: no paths given (try: wirecheck --root REPO "
                 "--schemas schemas src/wire src/bus)\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& t : targets) {
    fs::path p = root / t;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && IsCppSource(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "wirecheck: no such path: " << p.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<ibus::wirecheck::SourceFile> sources;
  sources.reserve(files.size());
  for (const fs::path& f : files) {
    bool ok = false;
    std::string content = ReadAll(f, &ok);
    if (!ok) {
      std::cerr << "wirecheck: cannot read " << f.string() << "\n";
      return 2;
    }
    sources.push_back({fs::relative(f, root).generic_string(), std::move(content)});
  }

  ibus::wirecheck::Program program = ibus::wirecheck::BuildProgram(sources);
  if (list_codecs) {
    for (const std::string& name : ibus::wirecheck::CodecNames(program)) {
      std::cout << name << "\n";
    }
    return 0;
  }

  std::vector<ibus::wirecheck::Diagnostic> findings =
      ibus::wirecheck::Analyze(program);
  for (const auto& d : findings) {
    std::cout << d.ToString() << "\n";
  }

  int golden_failures = 0;
  int updated = 0;
  if (!schemas_dir.empty() && findings.empty()) {
    fs::path dir = schemas_dir.is_absolute() ? schemas_dir : root / schemas_dir;
    for (const ibus::wirecheck::Codec& codec : program.codecs) {
      std::string current = ibus::wirecheck::RenderSchema(codec);
      fs::path golden_path = dir / (codec.name + ".wire");
      bool ok = false;
      std::string golden = ReadAll(golden_path, &ok);
      if (!ok) {
        if (update) {
          fs::create_directories(dir);
          std::ofstream out(golden_path, std::ios::binary);
          out << current;
          ++updated;
          std::cout << "wirecheck: wrote " << golden_path.string() << "\n";
          continue;
        }
        std::cout << "wirecheck: [golden] no golden schema for codec '"
                  << codec.name << "' — run wirecheck --update to pin "
                  << golden_path.string() << "\n";
        ++golden_failures;
        continue;
      }
      ibus::wirecheck::SchemaDiff diff =
          ibus::wirecheck::DiffSchema(golden, current);
      if (diff.kind == ibus::wirecheck::SchemaDiff::kSame) {
        continue;
      }
      if (diff.kind == ibus::wirecheck::SchemaDiff::kWireBreaking &&
          diff.new_version <= diff.old_version) {
        std::cout << "wirecheck: [golden] WIRE-BREAKING change to codec '"
                  << codec.name << "' (" << diff.detail
                  << ") without a version bump (golden v" << diff.old_version
                  << ", current v" << diff.new_version
                  << ") — bump the codec version AND regenerate the golden\n";
        ++golden_failures;
        continue;
      }
      if (update) {
        std::ofstream out(golden_path, std::ios::binary);
        out << current;
        ++updated;
        std::cout << "wirecheck: updated " << golden_path.string() << "\n";
        continue;
      }
      std::cout << "wirecheck: [golden] "
                << (diff.kind == ibus::wirecheck::SchemaDiff::kWireBreaking
                        ? "wire-breaking"
                        : "wire-safe")
                << " drift on codec '" << codec.name << "' (" << diff.detail
                << ") — regenerate with wirecheck --update\n";
      ++golden_failures;
    }
  } else if (!schemas_dir.empty() && !findings.empty()) {
    std::cout << "wirecheck: skipping golden check until the findings above "
                 "are fixed\n";
  }

  if (!findings.empty() || golden_failures > 0) {
    std::cout << "wirecheck: " << findings.size() << " finding(s), "
              << golden_failures << " golden failure(s) across "
              << program.codecs.size() << " codec(s)\n";
    return 1;
  }
  std::cout << "wirecheck: clean (" << files.size() << " files, "
            << program.codecs.size() << " codecs";
  if (updated > 0) {
    std::cout << ", " << updated << " golden(s) written";
  }
  std::cout << ")\n";
  return 0;
}
