#!/usr/bin/env python3
"""Diff two BENCH_*.json files and fail on latency or throughput regressions.

Usage: bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]

Both files carry {"schema": "BENCH_N", "results": [{"name", "p50_us", "p90_us",
"p99_us", "msgs_per_sec"}, ...]} — the row shape is stable across schema versions.
Rows are matched by name; for each shared row the per-percentile latency delta and
the throughput delta are printed. Exits non-zero if any latency percentile on any
shared row regresses by more than the threshold (default 10%), or if the delivery
rate (msgs_per_sec) of a throughput bench — any row whose name contains
"throughput" — drops by more than the threshold, or if a row carrying the
"allocs_per_msg" counter (the instrumented-allocator hot_path_allocs bench) grows
it by more than the threshold on both sides, or if the byte throughput
(bytes_per_sec, carried by fig7 from BENCH_8 on) of a throughput bench drops by
more than the threshold, or if the telemetry self-overhead ratio (overhead_ratio,
carried by the telemetry_overhead bench from BENCH_9 on) grows by more than the
threshold on both sides. Rows, sections, and keys present on only one side are
reported as new/dropped series but never fail the run (benchmarks and their
columns come and go across PRs — a newer schema must always diff cleanly against
an older baseline).

When BOTH files carry a top-level "profile" section (busprof's critical-path
report, embedded by scripts/bench.sh from BENCH_8 on), its per-stage p99
latencies and per-node queue high-watermarks are gated the same way: >threshold
growth on a stage p99 or a ".hwm" gauge fails the run. A profile present on only
one side is reported and skipped.

The deterministic simulator makes bench numbers replayable, so a genuine regression
here is a code change, not scheduler noise.
"""

import argparse
import json
import sys

LATENCY_KEYS = ("p50_us", "p90_us", "p99_us")
# Sub-millisecond percentiles jitter by whole simulator ticks; don't flag noise on
# effectively-zero baselines.
MIN_BASELINE_US = 1.0
# Delivery-rate drops only fail rows that are actually throughput benches, and only
# above a sane baseline (latency benches report token rates or zero).
MIN_BASELINE_RATE = 1.0
# The allocation gate needs a non-trivial baseline too: below one alloc per message
# a single new first-touch allocation would read as a huge percentage.
MIN_BASELINE_ALLOCS = 0.5
# Queue high-watermarks are small integers; a 0-or-1 baseline would turn a single
# extra queued packet into a triple-digit percentage.
MIN_BASELINE_HWM = 2.0
# A near-zero overhead baseline (tracing off) would turn any nonzero reading into
# a huge percentage; only gate series that already pay measurable overhead.
MIN_BASELINE_OVERHEAD = 0.001


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("results", []):
        name = row.get("name")
        if name:
            rows[name] = row
    return doc.get("schema", "?"), rows, doc


def diff_profile(base_doc, cur_doc, threshold, regressions):
    """Gates the busprof 'profile' section: stage p99s and queue high-watermarks."""
    bp, cp = base_doc.get("profile"), cur_doc.get("profile")
    if not bp or not cp:
        if bp or cp:
            side = "current" if cp else "baseline"
            print(f"  profile: only the {side} file carries one; skipping")
        return
    bstages, cstages = bp.get("stage_p99_us", {}), cp.get("stage_p99_us", {})
    for stage in sorted(set(bstages) & set(cstages)):
        bv, cv = bstages[stage], cstages[stage]
        if bv < MIN_BASELINE_US:
            print(f"  profile.stage.{stage:26s} p99 {bv:.0f}->{cv:.0f}us")
            continue
        pct = (cv - bv) / bv * 100.0
        print(f"  profile.stage.{stage:26s} p99 {bv:.0f}->{cv:.0f}us ({pct:+.1f}%)")
        if pct > threshold:
            regressions.append(
                f"profile: stage {stage} p99 {bv:.1f}us -> {cv:.1f}us ({pct:+.1f}%)")
    bq, cq = bp.get("queues", {}), cp.get("queues", {})
    for node in sorted(set(bq) & set(cq)):
        for gauge in sorted(set(bq[node]) & set(cq[node])):
            if not gauge.endswith(".hwm"):
                continue
            bv, cv = bq[node][gauge], cq[node][gauge]
            if bv < MIN_BASELINE_HWM:
                continue
            pct = (cv - bv) / bv * 100.0
            print(f"  profile.queue {node}.{gauge} {bv:.0f}->{cv:.0f} ({pct:+.1f}%)")
            if pct > threshold:
                regressions.append(
                    f"profile: queue {node}.{gauge} {bv:.0f} -> {cv:.0f} ({pct:+.1f}%)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="max tolerated latency growth, percent (default 10)")
    args = ap.parse_args()

    base_schema, base, base_doc = load(args.baseline)
    cur_schema, cur, cur_doc = load(args.current)
    shared = sorted(set(base) & set(cur))
    print(f"bench_diff: {args.baseline} ({base_schema}) -> {args.current} ({cur_schema}), "
          f"{len(shared)} shared rows, threshold {args.threshold:.0f}%")

    regressions = []
    for name in shared:
        b, c = base[name], cur[name]
        cells = []
        for key in LATENCY_KEYS:
            bv, cv = b.get(key, 0.0), c.get(key, 0.0)
            if bv < MIN_BASELINE_US:
                cells.append(f"{key} {bv:.0f}->{cv:.0f}us")
                continue
            pct = (cv - bv) / bv * 100.0
            cells.append(f"{key} {bv:.0f}->{cv:.0f}us ({pct:+.1f}%)")
            if pct > args.threshold:
                regressions.append(f"{name}: {key} {bv:.1f}us -> {cv:.1f}us ({pct:+.1f}%)")
        brate, crate = b.get("msgs_per_sec", 0.0), c.get("msgs_per_sec", 0.0)
        if brate > 0:
            rate_pct = (crate - brate) / brate * 100.0
            cells.append(f"rate {brate:.0f}->{crate:.0f}/s ({rate_pct:+.1f}%)")
            if ("throughput" in name and brate >= MIN_BASELINE_RATE
                    and -rate_pct > args.threshold):
                regressions.append(
                    f"{name}: msgs_per_sec {brate:.1f}/s -> {crate:.1f}/s ({rate_pct:+.1f}%)")
        # Byte throughput (fig7 carries it from BENCH_8 on; older baselines lack it).
        bbytes, cbytes = b.get("bytes_per_sec", 0.0), c.get("bytes_per_sec", 0.0)
        if bbytes > 0:
            bytes_pct = (cbytes - bbytes) / bbytes * 100.0
            cells.append(f"bytes {bbytes:.0f}->{cbytes:.0f}/s ({bytes_pct:+.1f}%)")
            if ("throughput" in name and bbytes >= MIN_BASELINE_RATE
                    and -bytes_pct > args.threshold):
                regressions.append(
                    f"{name}: bytes_per_sec {bbytes:.1f}/s -> {cbytes:.1f}/s "
                    f"({bytes_pct:+.1f}%)")
        # Telemetry self-overhead gate (BENCH_9 on): the stats plane must not creep.
        # Like every newer key, rows carrying it on only one side are tolerated —
        # they surface below as new/dropped series, never as a KeyError.
        if "overhead_ratio" in b and "overhead_ratio" in c:
            bo, co = b["overhead_ratio"], c["overhead_ratio"]
            if bo >= MIN_BASELINE_OVERHEAD:
                over_pct = (co - bo) / bo * 100.0
                cells.append(f"overhead {bo:.4f}->{co:.4f} ({over_pct:+.1f}%)")
                if over_pct > args.threshold:
                    regressions.append(
                        f"{name}: overhead_ratio {bo:.4f} -> {co:.4f} ({over_pct:+.1f}%)")
            else:
                cells.append(f"overhead {bo:.4f}->{co:.4f}")
        elif "overhead_ratio" in c:
            cells.append(f"overhead (new series) {c['overhead_ratio']:.4f}")
        # Allocation gate: only rows that carry the counter on BOTH sides compare
        # (the key first appears in BENCH_6; older baselines simply lack it).
        if "allocs_per_msg" in b and "allocs_per_msg" in c:
            ballocs, callocs = b["allocs_per_msg"], c["allocs_per_msg"]
            if ballocs >= MIN_BASELINE_ALLOCS:
                alloc_pct = (callocs - ballocs) / ballocs * 100.0
                cells.append(f"allocs {ballocs:.1f}->{callocs:.1f}/msg ({alloc_pct:+.1f}%)")
                if alloc_pct > args.threshold:
                    regressions.append(
                        f"{name}: allocs_per_msg {ballocs:.2f} -> {callocs:.2f} "
                        f"({alloc_pct:+.1f}%)")
            else:
                cells.append(f"allocs {ballocs:.1f}->{callocs:.1f}/msg")
        print(f"  {name:40s} " + "  ".join(cells))

    for name in sorted(set(base) - set(cur)):
        print(f"  {name:40s} (dropped: baseline-only row)")
    for name in sorted(set(cur) - set(base)):
        print(f"  {name:40s} (new: no baseline)")

    diff_profile(base_doc, cur_doc, args.threshold, regressions)

    if regressions:
        print(f"bench_diff: FAIL — {len(regressions)} regression(s) > "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print("bench_diff: OK — no latency, throughput, allocation, or profile "
          "regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
