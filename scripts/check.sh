#!/usr/bin/env bash
# One-shot correctness gate: configure with sanitizers + -Werror, build everything,
# run the tier1 suite, the repo-wide buslint pass, and the determinism replay check.
# See docs/TOOLING.md.
#
#   scripts/check.sh                 # full gate in build-check/
#   BUILD_DIR=build scripts/check.sh # reuse an existing build dir
#   IB_SANITIZE= scripts/check.sh    # skip sanitizers (e.g. on toolchains without ASan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-check}
JOBS=${JOBS:-$(nproc)}
IB_SANITIZE=${IB_SANITIZE-address,undefined}

echo "== configure (${BUILD_DIR}: IB_SANITIZE='${IB_SANITIZE}' IB_WERROR=ON)"
cmake -B "${BUILD_DIR}" -S . -DIB_SANITIZE="${IB_SANITIZE}" -DIB_WERROR=ON "$@"

echo "== build"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== tier1 tests (unit + integration + examples + sim_replay_check)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L tier1

echo "== telemetry tests (ctest -L telemetry; no-op when built with IB_TELEMETRY=OFF)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L telemetry

echo "== buslint over src/ bench/ examples/ tools/"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L lint

echo "== clang-tidy (skips when not installed)"
cmake --build "${BUILD_DIR}" --target lint-tidy

echo "== all checks passed"
