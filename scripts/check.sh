#!/usr/bin/env bash
# One-shot correctness gate: configure with sanitizers + -Werror, build everything,
# run the tier1 suite, the repo-wide buslint + hotlint passes, and the determinism
# replay check.
# See docs/TOOLING.md.
#
#   scripts/check.sh                 # full gate in build-check/
#   BUILD_DIR=build scripts/check.sh # reuse an existing build dir
#   IB_SANITIZE= scripts/check.sh    # skip sanitizers (e.g. on toolchains without ASan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-check}
JOBS=${JOBS:-$(nproc)}
IB_SANITIZE=${IB_SANITIZE-address,undefined}

echo "== configure (${BUILD_DIR}: IB_SANITIZE='${IB_SANITIZE}' IB_WERROR=ON)"
cmake -B "${BUILD_DIR}" -S . -DIB_SANITIZE="${IB_SANITIZE}" -DIB_WERROR=ON "$@"

echo "== build"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== tier1 tests (unit + integration + examples + sim_replay_check)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L tier1

echo "== telemetry tests (ctest -L telemetry; no-op when built with IB_TELEMETRY=OFF)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L telemetry

echo "== health plane tests (ctest -L health: flows, alerts, flight recorder, busmon)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L health

echo "== wire capture tests (ctest -L capture: tap fates, dissection, buscap goldens)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L capture

echo "== journal tests (ctest -L journal: ledger format, recovery, busjournal verify)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L journal

echo "== busprof tests (ctest -L prof: stage decomposition, reconciliation, replay gate)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L prof

echo "== busstat tests (ctest -L stats: sketches, sampling, time-series codec, replay gate)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L stats

echo "== buslint over src/ bench/ examples/ tools/  (-L lint also runs tdlcheck)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L lint

echo "== tdlcheck over repo TDL scripts + embedded R\"tdl()\" blocks"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L tdlcheck

echo "== hotlint over the message hot path (-L hotlint: repo scan + analyzer tests)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L hotlint

echo "== wirecheck over every codec (-L wirecheck: schema goldens, symmetry, decode safety)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L wirecheck

# Optional fuzz smoke: IB_FUZZ=ON scripts/check.sh spends ~30 s fuzzing the three
# frontline decoders (libFuzzer under clang; deterministic corpus replay on GCC).
if [[ "${IB_FUZZ:-OFF}" == "ON" ]]; then
  echo "== fuzz smoke (IB_FUZZ=ON: 3 x 10 s over frame/message/statseries decoders)"
  cmake -B "${BUILD_DIR}" -S . -DIB_FUZZ=ON
  cmake --build "${BUILD_DIR}" -j "${JOBS}" \
    --target fuzz_parse_frame fuzz_message_unmarshal fuzz_statseries_decode
  for t in parse_frame message_unmarshal statseries_decode; do
    "./${BUILD_DIR}/fuzz/fuzz_${t}" -max_total_time=10 "fuzz/corpus/${t}"
  done
fi

echo "== clang-tidy (skips when not installed)"
cmake --build "${BUILD_DIR}" --target lint-tidy

# The telemetry-compiled-out configuration must stay a first-class citizen: the
# always-on surfaces (stats, flows, flight recorder, busmon) still carry tier1.
OFF_BUILD_DIR="${BUILD_DIR}-notelemetry"
echo "== tier1 with -DIB_TELEMETRY=OFF (${OFF_BUILD_DIR})"
cmake -B "${OFF_BUILD_DIR}" -S . -DIB_TELEMETRY=OFF -DIB_WERROR=ON "$@"
cmake --build "${OFF_BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${OFF_BUILD_DIR}" --output-on-failure -j "${JOBS}" -L tier1

echo "== all checks passed"
