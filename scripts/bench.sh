#!/usr/bin/env bash
# Runs the JSON-emitting benchmarks and assembles their per-binary JSON lines into
# BENCH_2.json (schema BENCH_2: one row per measurement with name, latency-or-rate
# percentiles, and msgs/sec). See docs/TELEMETRY.md.
#
#   scripts/bench.sh                     # build in build-bench/, write BENCH_2.json
#   BUILD_DIR=build scripts/bench.sh     # reuse an existing build dir
#   OUT=/tmp/b.json scripts/bench.sh     # write somewhere else
#   BENCHES="rmi_latency" scripts/bench.sh  # run a subset
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
JOBS=${JOBS:-$(nproc)}
OUT=${OUT:-BENCH_2.json}
BENCHES=${BENCHES:-"rmi_latency fig5_latency fig6_throughput_msgs fig7_throughput_bytes fig8_subjects"}

echo "== configure + build (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S . > /dev/null
# shellcheck disable=SC2086
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target ${BENCHES}

tmpdir=$(mktemp -d)
trap 'rm -rf "${tmpdir}"' EXIT

for b in ${BENCHES}; do
  echo "== ${b}"
  BENCH_JSON="${tmpdir}/${b}.jsonl" "${BUILD_DIR}/bench/${b}" > "${tmpdir}/${b}.log"
  tail -3 "${tmpdir}/${b}.log" | sed 's/^/   /'
done

{
  printf '{"schema": "BENCH_2", "results": [\n'
  first=1
  for b in ${BENCHES}; do
    while IFS= read -r line; do
      [ -n "${line}" ] || continue
      if [ "${first}" -eq 1 ]; then first=0; else printf ',\n'; fi
      printf '  %s' "${line}"
    done < "${tmpdir}/${b}.jsonl"
  done
  printf '\n]}\n'
} > "${OUT}"

if command -v python3 > /dev/null; then
  python3 -m json.tool "${OUT}" > /dev/null && echo "== ${OUT}: valid JSON"
fi
echo "== wrote ${OUT} ($(grep -c '"name"' "${OUT}") results)"
