#!/usr/bin/env bash
# Runs the JSON-emitting benchmarks and assembles their per-binary JSON lines into
# BENCH_9.json (schema BENCH_9: one row per measurement with name, latency-or-rate
# percentiles, msgs/sec, and bytes/sec — same row shape as BENCH_2..8 — plus a
# "router_wan" section carrying the per-segment bandwidth breakdown from the
# capture accountant, see src/capture/bandwidth.h, a "hot_path_allocs/steady" row
# carrying the allocs_per_msg counter from the instrumented-allocator bench, the
# journal_append rows measuring write-ahead ledger commit cost, a "profile"
# section: busprof's per-stage critical-path p99s and queue high-watermarks for
# the profiled WAN scenario, see tools/busprof, and from BENCH_9 on the
# telemetry_overhead rows carrying the stats plane's self-measured overhead_ratio
# at trace-sampling periods {1, 64, off} — the bench binary itself fails if the
# ratio reaches 5% at the default 1/64 sampling). Afterwards, diffs the fresh
# numbers against the newest previous BENCH_*.json via scripts/bench_diff.py and
# fails on a >10% latency regression, a >10% throughput-bench delivery-rate drop,
# a >10% hot-path allocation growth, a >10% regression in a profile stage p99 /
# queue high-watermark, or a >10% overhead_ratio growth.
# See docs/TELEMETRY.md.
#
#   scripts/bench.sh                     # build in build-bench/, write BENCH_9.json
#   BUILD_DIR=build scripts/bench.sh     # reuse an existing build dir
#   OUT=/tmp/b.json scripts/bench.sh     # write somewhere else
#   BENCHES="rmi_latency" scripts/bench.sh  # run a subset
#   DIFF_THRESHOLD=25 scripts/bench.sh   # loosen the regression gate (one-off,
#                                        # e.g. after a measurement-methodology change)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
JOBS=${JOBS:-$(nproc)}
OUT=${OUT:-BENCH_9.json}
DIFF_THRESHOLD=${DIFF_THRESHOLD:-10}
BENCHES=${BENCHES:-"rmi_latency fig5_latency fig6_throughput_msgs fig7_throughput_bytes fig8_subjects router_wan hot_path_allocs journal_append telemetry_overhead"}

echo "== configure + build (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S . > /dev/null
# shellcheck disable=SC2086
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target ${BENCHES} busprof

tmpdir=$(mktemp -d)
trap 'rm -rf "${tmpdir}"' EXIT

for b in ${BENCHES}; do
  echo "== ${b}"
  : > "${tmpdir}/${b}.jsonl"
  # router_wan additionally exports its bandwidth breakdown for the BENCH section.
  BENCH_JSON="${tmpdir}/${b}.jsonl" \
    BENCH_BANDWIDTH_JSON="${tmpdir}/${b}.bandwidth.json" \
    "${BUILD_DIR}/bench/${b}" > "${tmpdir}/${b}.log"
  tail -3 "${tmpdir}/${b}.log" | sed 's/^/   /'
done

# The profile section: busprof's deterministic critical-path + queue-occupancy
# report for the profiled WAN scenario (empty under -DIB_TELEMETRY=OFF builds,
# where the binary still runs but traces no paths).
echo "== busprof"
"${BUILD_DIR}/tools/busprof/busprof" --json --seed 42 > "${tmpdir}/profile.json"

{
  printf '{"schema": "BENCH_9",\n'
  if [ -s "${tmpdir}/router_wan.bandwidth.json" ]; then
    printf '"router_wan": %s,\n' "$(cat "${tmpdir}/router_wan.bandwidth.json")"
  fi
  if [ -s "${tmpdir}/profile.json" ]; then
    printf '"profile": %s,\n' "$(cat "${tmpdir}/profile.json")"
  fi
  printf '"results": [\n'
  first=1
  for b in ${BENCHES}; do
    while IFS= read -r line; do
      [ -n "${line}" ] || continue
      if [ "${first}" -eq 1 ]; then first=0; else printf ',\n'; fi
      printf '  %s' "${line}"
    done < "${tmpdir}/${b}.jsonl"
  done
  printf '\n]}\n'
} > "${OUT}"

if command -v python3 > /dev/null; then
  python3 -m json.tool "${OUT}" > /dev/null && echo "== ${OUT}: valid JSON"
fi
echo "== wrote ${OUT} ($(grep -c '"name"' "${OUT}") results)"

# Compare against the newest committed baseline that isn't the file just written;
# a >10% regression on any latency percentile fails the run.
if command -v python3 > /dev/null; then
  baseline=""
  for f in $(ls -1 BENCH_*.json 2> /dev/null | sort -rV); do
    [ "${f}" != "$(basename "${OUT}")" ] && { baseline="${f}"; break; }
  done
  if [ -n "${baseline}" ]; then
    echo "== bench_diff vs ${baseline}"
    python3 scripts/bench_diff.py "${baseline}" "${OUT}" --threshold "${DIFF_THRESHOLD}"
  else
    echo "== bench_diff: no previous BENCH_*.json baseline; skipping"
  fi
fi
